//! Minimal binary codec for session snapshots.
//!
//! Deliberately serde-free: a snapshot is a short-lived operational
//! artifact (suspend an in-flight evaluation, ship it to another
//! worker, resume), not an interchange format, so the encoding is a
//! hand-rolled little-endian byte stream with an explicit version tag.
//! Floats are encoded via `f64::to_bits`, preserving every bit of the
//! running posteriors and Welford accumulators — a resumed session must
//! continue the exact float trajectory of the suspended one.

/// The shared container magic of every snapshot record — plain session
/// records (design tags 0–3) and the stratified coordinator record
/// (tag 4) carry the same header, so the constants live in one place.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"KGAESNAP";
/// The shared container version; bumping it re-gates every record type
/// at once.
pub(crate) const SNAPSHOT_VERSION: u16 = 1;

/// Append-only snapshot writer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    pub(crate) fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }
}

/// Cursor-based snapshot reader; every accessor fails loudly on
/// truncated input instead of panicking.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

pub(crate) type ReadResult<T> = Result<T, &'static str>;

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, cursor: 0 }
    }

    fn take(&mut self, n: usize) -> ReadResult<&'a [u8]> {
        let end = self
            .cursor
            .checked_add(n)
            .ok_or("snapshot cursor overflow")?;
        let chunk = self
            .bytes
            .get(self.cursor..end)
            .ok_or("snapshot truncated")?;
        self.cursor = end;
        Ok(chunk)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> ReadResult<&'a [u8]> {
        self.take(n)
    }

    pub(crate) fn u8(&mut self) -> ReadResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> ReadResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2b")))
    }

    pub(crate) fn u32(&mut self) -> ReadResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4b")))
    }

    pub(crate) fn u64(&mut self) -> ReadResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8b")))
    }

    pub(crate) fn f64(&mut self) -> ReadResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self) -> ReadResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("invalid bool byte"),
        }
    }

    pub(crate) fn opt_u64(&mut self) -> ReadResult<Option<u64>> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    pub(crate) fn opt_f64(&mut self) -> ReadResult<Option<f64>> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    /// A `u64` length prefix validated against a sanity cap before any
    /// allocation sized by it.
    pub(crate) fn len_capped(&mut self, cap: u64) -> ReadResult<usize> {
        let len = self.u64()?;
        if len > cap {
            return Err("snapshot length field exceeds sanity cap");
        }
        usize::try_from(len).map_err(|_| "snapshot length exceeds usize")
    }

    pub(crate) fn finish(self) -> ReadResult<()> {
        if self.cursor == self.bytes.len() {
            Ok(())
        } else {
            Err("trailing bytes after snapshot payload")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = Writer::new();
        w.bytes(b"HDR");
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(u64::MAX - 3);
        w.f64(-0.123_456_789);
        w.bool(true);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        w.opt_f64(Some(f64::NAN));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.bytes(3).unwrap(), b"HDR");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), -0.123_456_789);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert!(r.opt_f64().unwrap().unwrap().is_nan());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(r.u64().is_err());
        let mut r2 = Reader::new(&bytes);
        let _ = r2.u32().unwrap();
        assert!(r2.finish().is_err(), "4 bytes left unread");
    }

    #[test]
    fn length_caps_guard_allocations() {
        let mut w = Writer::new();
        w.u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len_capped(1 << 20).is_err());
    }
}
