//! The poll-based evaluation engine: paper Figure 1 inverted into a
//! state machine.
//!
//! The legacy [`crate::framework::evaluate`] loop is *closed*: it owns
//! the control flow, calls a synchronous in-process [`crate::Annotator`]
//! and only returns once the stopping rule fires. Real annotation —
//! crowdsourcing batches, expert review queues — is asynchronous and
//! external. [`EvaluationSession`] turns the loop inside out:
//!
//! ```
//! use kgae_core::{EvalConfig, EvaluationSession, IntervalMethod, SamplingDesign};
//! use kgae_graph::GroundTruth;
//! use rand::SeedableRng;
//!
//! let kg = kgae_graph::datasets::yago();
//! let mut session = EvaluationSession::new(
//!     &kg,
//!     SamplingDesign::Srs,
//!     &IntervalMethod::Wilson,
//!     &EvalConfig::default(),
//!     rand::rngs::SmallRng::seed_from_u64(7),
//! );
//! while let Some(request) = session.next_request(16).unwrap() {
//!     // Annotate externally, at any pace — here, the oracle labels.
//!     let labels: Vec<bool> = request
//!         .triples
//!         .iter()
//!         .map(|st| kg.is_correct(st.triple))
//!         .collect();
//!     session.submit(&labels).unwrap(); // advance + stop-check
//! }
//! assert!(session.result().unwrap().converged);
//! ```
//!
//! The session is generic over any [`KnowledgeGraph`] backend (held as
//! `&dyn KnowledgeGraph`) and any sampling design through the
//! [`DesignDriver`] trait, which unifies the previously duplicated
//! SRS/cluster control paths. Stopping decisions are **bit-identical**
//! to the legacy loop: units are processed one at a time in submission
//! order with the same state updates, the same certified-lookahead
//! schedule and the same interval constructions — the legacy API is
//! itself rebuilt as a thin driver over a session (batch size 1).
//!
//! Sessions also suspend and resume: [`EvaluationSession::snapshot`]
//! serializes the full dynamic state (posteriors, Welford accumulators,
//! RNG, sampler stream, label cache, cost sets) into a compact manual
//! binary encoding — no serde — and
//! [`EvaluationSession::resume`] reconstructs a session that continues
//! the exact float-for-float trajectory of the suspended one.

use crate::cost::CostTracker;
use crate::framework::{EvalConfig, EvalResult, PreparedDesign, SamplingDesign, StoppingPolicy};
use crate::method::{IntervalMethod, MethodState};
use crate::snapshot::{Reader, Writer, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use crate::state::{DesignKind, SampleState};
use kgae_graph::{KnowledgeGraph, LabelCache};
use kgae_intervals::{Interval, IntervalError, KernelCache};
use kgae_sampling::driver::{build_driver, DesignDriver, UnitEstimator};
use kgae_sampling::SampledTriple;
use kgae_stats::descriptive::OnlineMoments;
use kgae_stats::dist::Beta;
use rand::rngs::SmallRng;
use rand::RngCore;
use std::collections::HashSet;
use std::sync::Arc;

/// Why a session stopped handing out annotation requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The stopping rule fired: `MoE ≤ ε`.
    MoeSatisfied,
    /// Every triple of the KG was annotated (SRS without replacement):
    /// the estimate is the exact population accuracy.
    PopulationExhausted,
    /// The design's unit stream ended before convergence (e.g. a
    /// bounded SCS stream) — the final estimate did not meet the MoE.
    StreamExhausted,
    /// The observation or cost budget was exceeded before convergence.
    BudgetExhausted,
}

/// Protocol and state errors of the poll-based engine.
#[derive(Debug)]
pub enum SessionError {
    /// `next_request` was called while a request is outstanding.
    RequestPending,
    /// `submit` was called with no request outstanding.
    NoRequestPending,
    /// `submit` received the wrong number of labels.
    LabelCountMismatch {
        /// Labels the outstanding request asked for.
        expected: usize,
        /// Labels actually submitted.
        got: usize,
    },
    /// The unit stream ended before a single unit was annotated, so no
    /// estimate exists (e.g. a zero-capacity custom driver).
    StreamEndedBeforeData,
    /// A snapshot cannot be taken in the current state.
    SnapshotUnavailable(&'static str),
    /// The snapshot bytes are malformed.
    CorruptSnapshot(&'static str),
    /// The snapshot is valid but belongs to a different configuration
    /// (design, KG shape, config or method disagree).
    SnapshotMismatch(&'static str),
    /// Interval construction failed (propagated from the solver).
    Interval(IntervalError),
    /// A delta batch was handed to an engine kind with no delta
    /// semantics (only [`crate::monitor::MonitorSession`] accepts
    /// deltas).
    DeltasUnsupported,
    /// A delta batch failed validation against the current KG view;
    /// nothing was applied.
    DeltaRejected(kgae_graph::DeltaError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::RequestPending => {
                write!(f, "a request is already outstanding; submit labels first")
            }
            SessionError::NoRequestPending => {
                write!(f, "no request outstanding; call next_request first")
            }
            SessionError::LabelCountMismatch { expected, got } => {
                write!(f, "expected {expected} labels, got {got}")
            }
            SessionError::StreamEndedBeforeData => {
                write!(f, "unit stream ended before any unit was annotated")
            }
            SessionError::SnapshotUnavailable(why) => write!(f, "snapshot unavailable: {why}"),
            SessionError::CorruptSnapshot(why) => write!(f, "corrupt snapshot: {why}"),
            SessionError::SnapshotMismatch(why) => write!(f, "snapshot mismatch: {why}"),
            SessionError::Interval(e) => write!(f, "interval construction failed: {e}"),
            SessionError::DeltasUnsupported => {
                write!(f, "this engine kind does not accept KG deltas")
            }
            SessionError::DeltaRejected(e) => write!(f, "delta batch rejected: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<IntervalError> for SessionError {
    fn from(e: IntervalError) -> Self {
        SessionError::Interval(e)
    }
}

/// A batch of triples the session needs labels for, in submission
/// order. Reusable: `next_request_into` clears and refills it, keeping
/// the allocation.
#[derive(Debug, Clone, Default)]
pub struct AnnotationRequest {
    /// Triples to annotate (each with its owning cluster, which
    /// annotation UIs need for entity context). Labels must be
    /// submitted in exactly this order.
    pub triples: Vec<SampledTriple>,
    /// Stage-1 units covered by this request. A unit whose triples are
    /// all already labeled (a cluster re-draw) contributes no triples
    /// but still counts here.
    pub units: u64,
}

/// A point-in-time view of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatus {
    /// Current point estimate `μ̂` (`None` before the first annotation).
    pub estimate: Option<f64>,
    /// Current `1-α` interval (`None` before the first annotation or if
    /// construction fails).
    pub interval: Option<Interval>,
    /// Total annotated observations (with re-draw multiplicity).
    pub observations: u64,
    /// Distinct triples annotated.
    pub annotated_triples: u64,
    /// Stage-1 draws processed (0 under SRS).
    pub stage1_draws: u64,
    /// Annotation cost so far in seconds (Eq. 12).
    pub cost_seconds: f64,
    /// Why the session stopped, or `None` while it still wants labels.
    pub stopped: Option<StopReason>,
}

/// An RNG whose full state can be captured and restored, enabling
/// bit-identical suspend/resume of in-flight sessions.
pub trait SnapshotRng: RngCore {
    /// Captures the generator's complete state.
    fn save_state(&self) -> [u64; 4];
    /// Overwrites the generator with a previously captured state.
    fn load_state(&mut self, state: [u64; 4]);
}

impl SnapshotRng for SmallRng {
    fn save_state(&self) -> [u64; 4] {
        self.state()
    }

    fn load_state(&mut self, state: [u64; 4]) {
        *self = SmallRng::from_state(state);
    }
}

impl<R: SnapshotRng> SnapshotRng for &mut R {
    fn save_state(&self) -> [u64; 4] {
        (**self).save_state()
    }

    fn load_state(&mut self, state: [u64; 4]) {
        (**self).load_state(state);
    }
}

/// One stage-1 unit inside the pending batch: a range into the batch
/// triple buffer.
#[derive(Debug, Clone, Copy)]
struct UnitMeta {
    start: usize,
    end: usize,
}

#[derive(Debug, Clone)]
struct SessionOutcome {
    reason: StopReason,
    result: EvalResult,
}

/// Pre-draw sampler state captured by the cancellable poll path:
/// restoring it makes the outstanding batch as if never drawn, so a
/// later re-poll regenerates the bit-identical batch.
#[derive(Debug, Clone)]
struct BatchOrigin {
    rng: [u64; 4],
    driver: Vec<u8>,
}

/// Poll-based evaluation engine over any KG backend, sampling design
/// and interval method. See the module docs for the protocol.
pub struct EvaluationSession<'a, R: RngCore> {
    kg: &'a dyn KnowledgeGraph,
    driver: Box<dyn DesignDriver + Send + 'a>,
    design: SamplingDesign,
    method: IntervalMethod,
    cfg: EvalConfig,
    rng: R,
    kind: DesignKind,
    estimator: UnitEstimator,
    hansen_hurwitz: bool,
    max_draw_size: u64,
    state: SampleState,
    solver: MethodState,
    cost: CostTracker,
    cache: Option<LabelCache>,
    /// Annotation units left before the next stopping check (certified
    /// unreachable in between).
    skip_left: u64,
    first_check: bool,
    // Pending-batch bookkeeping. Buffers are reused across requests.
    pending: bool,
    batch_units: Vec<UnitMeta>,
    batch_triples: Vec<SampledTriple>,
    batch_fresh: Vec<bool>,
    batch_expected: usize,
    batch_requested: HashSet<u64>,
    unit_buf: Vec<SampledTriple>,
    outcome: Option<SessionOutcome>,
    batch_origin: Option<BatchOrigin>,
}

impl<'a, R: RngCore> EvaluationSession<'a, R> {
    /// Creates a session, preparing the design against the KG (builds
    /// the PPS table for PPS designs — O(#clusters); for repeated
    /// sessions over one KG prefer [`EvaluationSession::from_prepared`]).
    pub fn new(
        kg: &'a dyn KnowledgeGraph,
        design: SamplingDesign,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        rng: R,
    ) -> Self {
        Self::from_prepared(kg, &PreparedDesign::new(kg, design), method, cfg, rng)
    }

    /// Creates a session around prebuilt design resources; the PPS
    /// alias table is shared via `Arc`, never copied.
    pub fn from_prepared(
        kg: &'a dyn KnowledgeGraph,
        prepared: &PreparedDesign,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        rng: R,
    ) -> Self {
        let driver = build_driver(
            kg,
            prepared.design().spec(),
            prepared.pps(),
            Some(prepared.max_draw_size()),
        );
        Self::with_driver(kg, driver, prepared.design(), method, cfg, rng)
    }

    /// Creates a session over a caller-supplied driver (custom designs,
    /// bounded streams). `design` labels the session for snapshots and
    /// reporting; the driver's [`DesignDriver::estimator`] decides the
    /// estimation path.
    pub fn with_driver(
        kg: &'a dyn KnowledgeGraph,
        driver: Box<dyn DesignDriver + Send + 'a>,
        design: SamplingDesign,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        rng: R,
    ) -> Self {
        let estimator = driver.estimator();
        let kind = match estimator {
            UnitEstimator::Triple => DesignKind::Srs,
            UnitEstimator::SampleMean | UnitEstimator::HansenHurwitz { .. } => DesignKind::Cluster,
        };
        let state = match kind {
            DesignKind::Srs => SampleState::new_srs(),
            DesignKind::Cluster => SampleState::new_cluster(),
        };
        let cache = match kind {
            DesignKind::Srs => None,
            // Flat two-bit seen/label cache over the whole KG; the
            // backing zeroed pages only materialize where sampled.
            DesignKind::Cluster => Some(LabelCache::new(kg.num_triples())),
        };
        let max_draw_size = driver.max_unit_size();
        Self {
            kg,
            design,
            method: method.clone(),
            cfg: cfg.clone(),
            rng,
            kind,
            estimator,
            hansen_hurwitz: matches!(estimator, UnitEstimator::HansenHurwitz { .. }),
            max_draw_size,
            state,
            solver: method.new_state(),
            cost: CostTracker::new(cfg.cost_model),
            cache,
            skip_left: 0,
            first_check: true,
            pending: false,
            batch_units: Vec::new(),
            batch_triples: Vec::new(),
            batch_fresh: Vec::new(),
            batch_expected: 0,
            batch_requested: HashSet::new(),
            unit_buf: Vec::new(),
            driver,
            outcome: None,
            batch_origin: None,
        }
    }

    /// Attaches a shared posterior-kernel cache: subsequent SRS interval
    /// constructions and lookahead certificates memoize through it.
    /// Purely a cost lever — outputs are bit-identical with or without
    /// one attached, and the cache is never serialized into snapshots.
    pub fn set_kernel_cache(&mut self, kernel: Arc<KernelCache>) {
        self.solver.attach_kernel(kernel);
    }

    /// The session's sampling design.
    #[must_use]
    pub fn design(&self) -> SamplingDesign {
        self.design
    }

    /// The knowledge graph under evaluation.
    #[must_use]
    pub fn kg(&self) -> &'a dyn KnowledgeGraph {
        self.kg
    }

    /// The session's interval method.
    #[must_use]
    pub fn method(&self) -> &IntervalMethod {
        &self.method
    }

    /// The session's evaluation configuration.
    #[must_use]
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    /// Whether an annotation request is outstanding (labels owed). A
    /// pending session cannot be snapshotted; session hosts check this
    /// before suspending instead of round-tripping through the error.
    #[must_use]
    pub fn has_pending_request(&self) -> bool {
        self.pending
    }

    /// The accumulated annotation tallies — the sufficient statistics
    /// behind the estimate (n, τ, per-draw moments). Read-only; hosts
    /// that pool several sessions (the stratified coordinator) read
    /// per-session variances from here instead of re-deriving them from
    /// rounded status fields.
    #[must_use]
    pub fn sample_state(&self) -> &SampleState {
        &self.state
    }

    /// Distinct triples annotated so far — the
    /// [`SessionStatus::annotated_triples`] field without paying a full
    /// [`EvaluationSession::status`] (which constructs an interval).
    #[must_use]
    pub fn annotated_triples(&self) -> u64 {
        match &self.outcome {
            Some(o) => o.result.annotated_triples,
            None => self.cost.triples(),
        }
    }

    /// Annotation cost so far in seconds (Eq. 12) — the
    /// [`SessionStatus::cost_seconds`] field without paying a full
    /// [`EvaluationSession::status`].
    #[must_use]
    pub fn cost_seconds(&self) -> f64 {
        match &self.outcome {
            Some(o) => o.result.cost_seconds,
            None => self.cost.seconds(),
        }
    }

    /// Mutable access to the session's RNG, for callers that interleave
    /// their own randomized work (e.g. simulated annotators) with the
    /// session's sampling on one deterministic stream — exactly what
    /// the legacy `evaluate` driver does to preserve its historical
    /// seed-for-seed behavior.
    pub fn rng_mut(&mut self) -> &mut R {
        &mut self.rng
    }

    /// Polls the session for the next annotation request, sampling up
    /// to `max_units` stage-1 units (at least one). Returns `Ok(None)`
    /// once the session has stopped — check [`EvaluationSession::status`]
    /// for the reason.
    ///
    /// Units beyond the eventual stopping unit are discarded at
    /// `submit` time, so the final result is independent of the batch
    /// size (the equivalence test pins this bit-for-bit).
    ///
    /// # Errors
    ///
    /// [`SessionError::RequestPending`] if labels for the previous
    /// request were never submitted; [`SessionError::Interval`] /
    /// [`SessionError::StreamEndedBeforeData`] if the unit stream ends
    /// and the exhaustion report cannot be built.
    pub fn next_request(
        &mut self,
        max_units: u64,
    ) -> Result<Option<AnnotationRequest>, SessionError> {
        let mut out = AnnotationRequest::default();
        Ok(self.next_request_into(max_units, &mut out)?.then_some(out))
    }

    /// Allocation-reusing variant of [`EvaluationSession::next_request`]:
    /// refills `out` and returns whether a request was produced
    /// (`false` = session stopped).
    ///
    /// # Errors
    ///
    /// As [`EvaluationSession::next_request`].
    pub fn next_request_into(
        &mut self,
        max_units: u64,
        out: &mut AnnotationRequest,
    ) -> Result<bool, SessionError> {
        out.triples.clear();
        out.units = 0;
        if self.outcome.is_some() {
            return Ok(false);
        }
        if self.pending {
            return Err(SessionError::RequestPending);
        }
        // Any rollback point belongs to a previous batch; the
        // cancellable wrapper re-records one for this batch.
        self.batch_origin = None;
        let max_units = max_units.max(1);
        self.batch_requested.clear();
        // Within a multi-unit batch, a triple re-drawn by a later unit
        // before its label arrives must not be requested twice; the
        // second occurrence reads the cache at processing time. A
        // single-unit batch has distinct triples, so the set is skipped
        // on the legacy hot path.
        let track_dupes = max_units > 1 && self.cache.is_some();
        while out.units < max_units {
            let Some(_cluster) = self.driver.next_unit(&mut self.rng, &mut self.unit_buf) else {
                break;
            };
            let start = self.batch_triples.len();
            for i in 0..self.unit_buf.len() {
                let st = self.unit_buf[i];
                let fresh = match &self.cache {
                    Some(cache) => {
                        cache.get(st.triple.index()).is_none()
                            && (!track_dupes || self.batch_requested.insert(st.triple.index()))
                    }
                    None => true,
                };
                self.batch_triples.push(st);
                self.batch_fresh.push(fresh);
                if fresh {
                    out.triples.push(st);
                }
            }
            self.batch_units.push(UnitMeta {
                start,
                end: self.batch_triples.len(),
            });
            out.units += 1;
        }
        if out.units == 0 {
            self.finish_exhausted()?;
            return Ok(false);
        }
        self.batch_expected = out.triples.len();
        self.pending = true;
        Ok(true)
    }

    /// Submits labels for the outstanding request, in request order.
    /// Units are processed one at a time with a stopping check after
    /// each; labels beyond the stopping unit are discarded.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`],
    /// [`SessionError::LabelCountMismatch`], or
    /// [`SessionError::Interval`] if an interval construction fails.
    pub fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        if !self.pending {
            return Err(SessionError::NoRequestPending);
        }
        if labels.len() != self.batch_expected {
            return Err(SessionError::LabelCountMismatch {
                expected: self.batch_expected,
                got: labels.len(),
            });
        }
        self.pending = false;
        self.batch_origin = None;
        let mut next_label = 0usize;
        let result = (|| {
            for i in 0..self.batch_units.len() {
                if self.outcome.is_some() {
                    break;
                }
                let unit = self.batch_units[i];
                self.process_unit(unit, labels, &mut next_label)?;
            }
            Ok(())
        })();
        self.batch_units.clear();
        self.batch_triples.clear();
        self.batch_fresh.clear();
        self.batch_expected = 0;
        result
    }

    /// Point-in-time view: estimate, interval, cost and stop state.
    ///
    /// On a running session the interval is constructed from a scratch
    /// copy of the solver state, so observing a session never perturbs
    /// its (warm-started) stopping trajectory.
    #[must_use]
    pub fn status(&self) -> SessionStatus {
        if let Some(o) = &self.outcome {
            return SessionStatus {
                estimate: Some(o.result.mu_hat),
                interval: Some(o.result.interval),
                observations: o.result.observations,
                annotated_triples: o.result.annotated_triples,
                stage1_draws: o.result.stage1_draws,
                cost_seconds: o.result.cost_seconds,
                stopped: Some(o.reason),
            };
        }
        let has_data = self.state.n() > 0;
        let estimate = has_data.then(|| self.point_estimate());
        let interval = if has_data {
            let mut scratch = self.solver.clone();
            self.method
                .interval_stateful(&self.state, self.cfg.alpha, &mut scratch)
                .ok()
        } else {
            None
        };
        SessionStatus {
            estimate,
            interval,
            observations: self.state.n(),
            annotated_triples: self.cost.triples(),
            stage1_draws: self.stage1_draws(),
            cost_seconds: self.cost.seconds(),
            stopped: None,
        }
    }

    /// Why the session stopped, or `None` while it is still running.
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.outcome.as_ref().map(|o| o.reason)
    }

    /// The final result once the session has stopped.
    #[must_use]
    pub fn result(&self) -> Option<&EvalResult> {
        self.outcome.as_ref().map(|o| &o.result)
    }

    /// Consumes the session, yielding the final result if it stopped.
    #[must_use]
    pub fn into_result(self) -> Option<EvalResult> {
        self.outcome.map(|o| o.result)
    }

    fn stage1_draws(&self) -> u64 {
        match self.kind {
            DesignKind::Srs => 0,
            DesignKind::Cluster => self.state.draws() as u64,
        }
    }

    fn point_estimate(&self) -> f64 {
        match self.kind {
            DesignKind::Srs => self.state.mu_hat(),
            DesignKind::Cluster => self.state.effective().mu,
        }
    }

    fn finish(
        &mut self,
        mu: f64,
        interval: Interval,
        reason: StopReason,
        converged: bool,
        halted_at_floor: bool,
    ) {
        self.outcome = Some(SessionOutcome {
            reason,
            result: EvalResult {
                mu_hat: mu,
                interval,
                annotated_triples: self.cost.triples(),
                annotated_entities: self.cost.entities(),
                observations: self.state.n(),
                stage1_draws: self.stage1_draws(),
                cost_seconds: self.cost.seconds(),
                converged,
                halted_at_floor,
            },
        });
    }

    fn finish_exhausted(&mut self) -> Result<(), SessionError> {
        if self.state.n() == 0 {
            return Err(SessionError::StreamEndedBeforeData);
        }
        // "Population exhausted ⇒ exact estimate" only holds when every
        // triple really was annotated; a custom bounded triple-stream
        // driver that ends early must not be mistaken for a census.
        let full_census =
            self.kind == DesignKind::Srs && self.cost.triples() == self.kg.num_triples();
        if full_census {
            // Whole KG annotated: the estimate is the population value
            // and the interval degenerates to a point.
            let mu = self.state.mu_hat();
            self.finish(
                mu,
                Interval::new(mu, mu),
                StopReason::PopulationExhausted,
                true,
                false,
            );
        } else {
            let interval =
                self.method
                    .interval_stateful(&self.state, self.cfg.alpha, &mut self.solver)?;
            let mu = self.point_estimate();
            self.finish(mu, interval, StopReason::StreamExhausted, false, false);
        }
        Ok(())
    }

    /// Advances the engine by one labeled unit — the exact state-update
    /// and stopping sequence of the legacy loop, shared by every
    /// design.
    fn process_unit(
        &mut self,
        unit: UnitMeta,
        labels: &[bool],
        next_label: &mut usize,
    ) -> Result<(), SessionError> {
        match self.kind {
            DesignKind::Srs => {
                for i in unit.start..unit.end {
                    let st = self.batch_triples[i];
                    let label = labels[*next_label];
                    *next_label += 1;
                    self.state.record_triple(label);
                    // O(1) incremental posterior advance per annotation.
                    self.method.record_observation(&mut self.solver, label);
                    self.cost.record(st.triple, st.cluster);
                }
            }
            DesignKind::Cluster => {
                let mut correct = 0u64;
                let size = (unit.end - unit.start) as u64;
                for i in unit.start..unit.end {
                    let st = self.batch_triples[i];
                    let t = st.triple.index();
                    let label = if self.batch_fresh[i] {
                        let l = labels[*next_label];
                        *next_label += 1;
                        self.cache
                            .as_mut()
                            .expect("cluster session has a cache")
                            .insert(t, l);
                        l
                    } else {
                        self.cache
                            .as_ref()
                            .expect("cluster session has a cache")
                            .get(t)
                            .expect("non-fresh triple is cached")
                    };
                    if label {
                        correct += 1;
                    }
                    self.cost.record(st.triple, st.cluster);
                }
                let per_draw = match self.estimator {
                    UnitEstimator::SampleMean => correct as f64 / size as f64,
                    UnitEstimator::HansenHurwitz { scale } => correct as f64 * scale,
                    UnitEstimator::Triple => unreachable!("cluster kind with triple estimator"),
                };
                self.state.record_cluster_draw(per_draw, correct, size);
            }
        }

        // Stopping rule: consulted after every unit once the minimum
        // sample is reached (and ≥ min_draws stage-1 draws under
        // cluster designs, so the variance estimator exists).
        let ready = self.state.n() >= self.cfg.min_triples
            && (self.kind == DesignKind::Srs || self.state.draws() >= self.cfg.min_draws);
        if ready {
            let at_floor = self.first_check;
            self.first_check = false;
            if self.skip_left > 0 {
                self.skip_left -= 1;
            } else {
                let lookahead = self.cfg.stopping == StoppingPolicy::CertifiedLookahead;
                // Exact one-step gate: construct only when the current
                // posterior could actually stop (always, in the
                // reference path).
                let construct = !lookahead
                    || self.method.stop_possible_now(
                        &self.state,
                        self.cfg.alpha,
                        self.cfg.epsilon,
                        &self.solver,
                    );
                if construct {
                    let interval = self.method.interval_stateful(
                        &self.state,
                        self.cfg.alpha,
                        &mut self.solver,
                    )?;
                    if interval.moe() <= self.cfg.epsilon {
                        let mu = self.point_estimate();
                        self.finish(mu, interval, StopReason::MoeSatisfied, true, at_floor);
                        return Ok(());
                    }
                }
                if lookahead {
                    self.skip_left = match self.kind {
                        DesignKind::Srs => self.method.certified_skip_srs(
                            &self.state,
                            self.cfg.alpha,
                            self.cfg.epsilon,
                            &self.solver,
                        ),
                        DesignKind::Cluster => self.method.certified_skip_cluster(
                            &self.state,
                            self.cfg.alpha,
                            self.cfg.epsilon,
                            self.max_draw_size,
                            self.hansen_hurwitz,
                        ),
                    };
                }
            }
        }
        let budget_spent = self
            .cfg
            .max_observations
            .is_some_and(|cap| self.state.n() >= cap)
            || self
                .cfg
                .max_cost_seconds
                .is_some_and(|cap| self.cost.seconds() >= cap);
        if budget_spent {
            let interval =
                self.method
                    .interval_stateful(&self.state, self.cfg.alpha, &mut self.solver)?;
            let mu = self.point_estimate();
            self.finish(mu, interval, StopReason::BudgetExhausted, false, false);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Snapshot encode/decode (manual binary, serde-free).
// ---------------------------------------------------------------------

pub(crate) fn design_tag(design: SamplingDesign) -> (u8, u64) {
    match design {
        SamplingDesign::Srs => (0, 0),
        SamplingDesign::Twcs { m } => (1, m),
        SamplingDesign::Wcs => (2, 0),
        SamplingDesign::Scs => (3, 0),
    }
}

/// Inverse of [`design_tag`]: `None` for an unknown tag byte or an
/// invalid TWCS `m`.
pub(crate) fn design_from_tag(tag: u8, m: u64) -> Option<SamplingDesign> {
    match (tag, m) {
        (0, _) => Some(SamplingDesign::Srs),
        (1, m) if m > 0 => Some(SamplingDesign::Twcs { m }),
        (2, _) => Some(SamplingDesign::Wcs),
        (3, _) => Some(SamplingDesign::Scs),
        _ => None,
    }
}

/// Snapshot record-tag value marking a *stratified coordinator*
/// snapshot (`crate::stratified`), distinguishing it from the four
/// single-session design tags 0–3 in the shared `KGAESNAP` header.
pub(crate) const STRATIFIED_SNAPSHOT_TAG: u8 = 4;

/// Snapshot record-tag value marking a *comparative multi-method*
/// snapshot (`crate::comparative`).
pub(crate) const COMPARATIVE_SNAPSHOT_TAG: u8 = 5;

/// Snapshot record-tag value marking a *continuous monitor* snapshot
/// (`crate::monitor`).
pub(crate) const MONITOR_SNAPSHOT_TAG: u8 = 6;

pub(crate) fn method_tag(method: &IntervalMethod) -> u8 {
    match method {
        IntervalMethod::Wald => 0,
        IntervalMethod::Wilson => 1,
        IntervalMethod::Et(_) => 2,
        IntervalMethod::Hpd(_) => 3,
        IntervalMethod::AHpd(_) => 4,
    }
}

pub(crate) fn stopping_tag(policy: StoppingPolicy) -> u8 {
    match policy {
        StoppingPolicy::EveryUnit => 0,
        StoppingPolicy::CertifiedLookahead => 1,
    }
}

/// Consumes the shared `KGAESNAP` container prefix (magic + version)
/// and returns the record tag, leaving the reader positioned after it
/// — the single prefix parser behind every record type's peek/resume
/// and the engine registry.
pub(crate) fn read_record_prefix(r: &mut Reader<'_>) -> Result<u8, SessionError> {
    let corrupt = SessionError::CorruptSnapshot;
    if r.bytes(8).map_err(corrupt)? != SNAPSHOT_MAGIC {
        return Err(SessionError::CorruptSnapshot("bad magic"));
    }
    if r.u16().map_err(corrupt)? != SNAPSHOT_VERSION {
        return Err(SessionError::SnapshotMismatch("unsupported version"));
    }
    r.u8().map_err(corrupt)
}

/// Encodes an interval method's fingerprint (tag byte + prior
/// parameters) — the shape shared by every snapshot record type.
pub(crate) fn write_method_fingerprint(w: &mut Writer, method: &IntervalMethod) {
    w.u8(method_tag(method));
    let priors = method.priors().unwrap_or(&[]);
    w.u32(priors.len() as u32);
    for p in priors {
        w.f64(p.a);
        w.f64(p.b);
    }
}

/// Consumes a method fingerprint from the reader and reports whether it
/// matches `method` bit for bit.
pub(crate) fn method_fingerprint_matches(
    r: &mut Reader<'_>,
    method: &IntervalMethod,
) -> Result<bool, &'static str> {
    let priors = method.priors().unwrap_or(&[]);
    let mut matches = r.u8()? == method_tag(method) && r.u32()? as usize == priors.len();
    if matches {
        for p in priors {
            matches &= r.f64()?.to_bits() == p.a.to_bits() && r.f64()?.to_bits() == p.b.to_bits();
        }
    }
    Ok(matches)
}

/// Encodes a solver's dynamic state (tracked counts, warm starts,
/// posteriors) in the canonical session-snapshot layout.
pub(crate) fn write_solver(w: &mut Writer, solver: &MethodState) {
    w.u64(solver.tracked.0);
    w.u64(solver.tracked.1);
    w.u32(solver.warm.len() as u32);
    for warm in &solver.warm {
        match warm {
            Some((lo, hi)) => {
                w.bool(true);
                w.f64(*lo);
                w.f64(*hi);
            }
            None => w.bool(false),
        }
    }
    w.u32(solver.posteriors.len() as u32);
    for post in &solver.posteriors {
        w.f64(post.alpha());
        w.f64(post.beta());
        w.f64(post.ln_norm());
    }
}

/// Decodes a solver state written by [`write_solver`], validating the
/// vector lengths against the method's prior count.
pub(crate) fn read_solver(r: &mut Reader<'_>, priors: usize) -> Result<MethodState, &'static str> {
    let tracked = (r.u64()?, r.u64()?);
    let warm_len = r.u32()? as usize;
    if warm_len != priors {
        return Err("warm-start count mismatch");
    }
    let mut warm = Vec::with_capacity(warm_len);
    for _ in 0..warm_len {
        warm.push(if r.bool()? {
            Some((r.f64()?, r.f64()?))
        } else {
            None
        });
    }
    let post_len = r.u32()? as usize;
    if post_len != priors {
        return Err("posterior count mismatch");
    }
    let mut posteriors = Vec::with_capacity(post_len);
    for _ in 0..post_len {
        let (a, b, ln_norm) = (r.f64()?, r.f64()?, r.f64()?);
        posteriors
            .push(Beta::from_raw_parts(a, b, ln_norm).map_err(|_| "invalid posterior parameters")?);
    }
    Ok(MethodState {
        warm,
        posteriors,
        tracked,
        kernel: None,
    })
}

/// The identity prefix of a session snapshot: which design produced it
/// and the shape of the KG it belongs to. Enough for a snapshot store
/// to index and sanity-check dormant sessions without paying a full
/// [`EvaluationSession::resume`] (which still re-validates everything,
/// including config and method, on rehydration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// The sampling design the suspended session was running.
    pub design: SamplingDesign,
    /// `num_triples` of the KG the session was evaluating.
    pub num_triples: u64,
    /// `num_clusters` of the KG the session was evaluating.
    pub num_clusters: u32,
}

/// Header parser behind the plain (tags 0–3) rows of the snapshot tag
/// registry.
pub(crate) fn peek_plain_header(bytes: &[u8]) -> Result<SnapshotHeader, SessionError> {
    let corrupt = SessionError::CorruptSnapshot;
    let mut r = Reader::new(bytes);
    let tag = read_record_prefix(&mut r)?;
    if tag == STRATIFIED_SNAPSHOT_TAG
        || tag == COMPARATIVE_SNAPSHOT_TAG
        || tag == MONITOR_SNAPSHOT_TAG
    {
        return Err(SessionError::SnapshotMismatch(
            "not a single-session snapshot; identify it with engine::peek_any_header",
        ));
    }
    let m = r.u64().map_err(corrupt)?;
    let design =
        design_from_tag(tag, m).ok_or(SessionError::CorruptSnapshot("unknown design tag"))?;
    Ok(SnapshotHeader {
        design,
        num_triples: r.u64().map_err(corrupt)?,
        num_clusters: r.u32().map_err(corrupt)?,
    })
}

impl<'a, R: SnapshotRng> EvaluationSession<'a, R> {
    /// Like [`EvaluationSession::next_request`], but first records a
    /// rollback point (RNG state + design-driver state), so the
    /// outstanding request can be withdrawn with
    /// [`EvaluationSession::cancel_request`]. The rollback point makes
    /// cancellation *exact*: a re-poll after cancel regenerates the
    /// bit-identical batch, which is what lets a server drain mid-batch
    /// sessions to disk without perturbing their trajectories.
    ///
    /// The capture costs one driver-state serialization per batch —
    /// negligible against network polling, which is why the network
    /// engines use this path while the in-process benchmark loops keep
    /// the plain one.
    ///
    /// # Errors
    ///
    /// As [`EvaluationSession::next_request`].
    pub fn next_request_cancellable(
        &mut self,
        max_units: u64,
    ) -> Result<Option<AnnotationRequest>, SessionError> {
        if self.outcome.is_some() {
            return Ok(None);
        }
        if self.pending {
            return Err(SessionError::RequestPending);
        }
        let rng = self.rng.save_state();
        let mut driver = Vec::new();
        self.driver.save_state(&mut driver);
        let request = self.next_request(max_units)?;
        if request.is_some() {
            self.batch_origin = Some(BatchOrigin { rng, driver });
        }
        Ok(request)
    }

    /// Withdraws the outstanding request by rewinding the RNG and
    /// design driver to their pre-draw states and discarding the batch
    /// buffers — afterwards the session snapshots cleanly, and the next
    /// poll regenerates the bit-identical batch.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`] without an outstanding
    /// request; [`SessionError::SnapshotUnavailable`] when the request
    /// was polled through the plain (non-cancellable) path and no
    /// rollback point exists.
    pub fn cancel_request(&mut self) -> Result<(), SessionError> {
        if !self.pending {
            return Err(SessionError::NoRequestPending);
        }
        let Some(origin) = self.batch_origin.take() else {
            return Err(SessionError::SnapshotUnavailable(
                "request was not polled through the cancellable path",
            ));
        };
        self.rng.load_state(origin.rng);
        self.driver
            .restore_state(&origin.driver)
            .map_err(|_| SessionError::CorruptSnapshot("cancel rollback driver state"))?;
        self.pending = false;
        self.batch_units.clear();
        self.batch_triples.clear();
        self.batch_fresh.clear();
        self.batch_expected = 0;
        Ok(())
    }

    /// Serializes the session's complete dynamic state into a compact
    /// binary snapshot. The encoding is canonical: identical logical
    /// state yields identical bytes.
    ///
    /// The snapshot embeds fingerprints of the design, KG shape,
    /// configuration and method; [`EvaluationSession::resume`]
    /// validates them, so a snapshot cannot silently resume against the
    /// wrong setup. See the README for the byte layout.
    ///
    /// # Errors
    ///
    /// [`SessionError::SnapshotUnavailable`] while a request is
    /// outstanding (submit its labels first) or after the session has
    /// stopped (read [`EvaluationSession::result`] instead).
    pub fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        if self.pending {
            return Err(SessionError::SnapshotUnavailable(
                "a request is outstanding; submit its labels first",
            ));
        }
        if self.outcome.is_some() {
            return Err(SessionError::SnapshotUnavailable(
                "session already stopped; read its result instead",
            ));
        }
        let mut w = Writer::new();
        w.bytes(SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        // Design + KG fingerprint.
        let (tag, m) = design_tag(self.design);
        w.u8(tag);
        w.u64(m);
        w.u64(self.kg.num_triples());
        w.u32(self.kg.num_clusters());
        // Config fingerprint.
        w.f64(self.cfg.alpha);
        w.f64(self.cfg.epsilon);
        w.u64(self.cfg.min_triples);
        w.u64(self.cfg.min_draws as u64);
        w.opt_u64(self.cfg.max_observations);
        w.opt_f64(self.cfg.max_cost_seconds);
        w.f64(self.cfg.cost_model.entity_seconds);
        w.f64(self.cfg.cost_model.triple_seconds);
        w.u64(self.cfg.cost_model.judgments_per_label);
        w.u8(stopping_tag(self.cfg.stopping));
        // Method fingerprint.
        write_method_fingerprint(&mut w, &self.method);
        // RNG.
        for word in self.rng.save_state() {
            w.u64(word);
        }
        // Loop scheduling state.
        w.u64(self.skip_left);
        w.bool(self.first_check);
        // Sample state.
        w.u64(self.state.n());
        w.u64(self.state.tau());
        let (mn, mmean, mm2) = self.state.moments().raw_parts();
        w.u64(mn);
        w.f64(mmean);
        w.f64(mm2);
        // Solver state.
        write_solver(&mut w, &self.solver);
        // Cost sets (sorted ⇒ canonical bytes).
        let entities = self.cost.entity_ids_sorted();
        w.u32(entities.len() as u32);
        for e in entities {
            w.u32(e);
        }
        let triples = self.cost.triple_ids_sorted();
        w.u64(triples.len() as u64);
        // Labels ride along with the triple ids (cluster designs only;
        // SRS aggregates labels into (τ, n) and never re-reads them).
        w.bool(self.cache.is_some());
        for t in &triples {
            w.u64(*t);
            if let Some(cache) = &self.cache {
                w.bool(cache.get(*t).expect("annotated triple has a cached label"));
            }
        }
        // Driver stream state (length-prefixed, driver-defined).
        let mut driver_state = Vec::new();
        self.driver.save_state(&mut driver_state);
        w.u64(driver_state.len() as u64);
        w.bytes(&driver_state);
        Ok(w.into_bytes())
    }

    /// Reconstructs a suspended session from a snapshot, validating it
    /// against the supplied KG, prepared design, method and config. The
    /// passed `rng`'s state is overwritten from the snapshot; the
    /// resumed session continues the exact stream — and hence the exact
    /// evaluation trajectory — of the suspended one.
    ///
    /// Standard drivers are rebuilt from `prepared`. Custom driver
    /// configuration (e.g. [`kgae_sampling::driver::ScsDriver::limit_draws`])
    /// is not part of
    /// the snapshot — resume such sessions through
    /// [`EvaluationSession::resume_with_driver`] with an identically
    /// configured driver.
    ///
    /// # Errors
    ///
    /// [`SessionError::CorruptSnapshot`] on malformed bytes;
    /// [`SessionError::SnapshotMismatch`] when the snapshot belongs to
    /// a different design, KG shape, config or method.
    pub fn resume(
        kg: &'a dyn KnowledgeGraph,
        prepared: &PreparedDesign,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        rng: R,
        bytes: &[u8],
    ) -> Result<Self, SessionError> {
        Self::from_prepared(kg, prepared, method, cfg, rng).apply_snapshot(bytes)
    }

    /// [`EvaluationSession::resume`] for sessions created through
    /// [`EvaluationSession::with_driver`]: the caller rebuilds the
    /// driver with its full configuration (e.g. a draw limit) and the
    /// snapshot restores the driver's dynamic state on top. The
    /// `design` label must match the one the session was created with —
    /// it is fingerprint-checked against the snapshot.
    ///
    /// # Errors
    ///
    /// As [`EvaluationSession::resume`].
    pub fn resume_with_driver(
        kg: &'a dyn KnowledgeGraph,
        driver: Box<dyn DesignDriver + Send + 'a>,
        design: SamplingDesign,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        rng: R,
        bytes: &[u8],
    ) -> Result<Self, SessionError> {
        Self::with_driver(kg, driver, design, method, cfg, rng).apply_snapshot(bytes)
    }

    /// Parses and validates `bytes` against this freshly constructed
    /// session's own design/KG/config/method, then overwrites the
    /// session's dynamic state with the snapshot's.
    fn apply_snapshot(mut self, bytes: &[u8]) -> Result<Self, SessionError> {
        let (kg, cfg, method) = (self.kg, &self.cfg, &self.method);
        let corrupt = SessionError::CorruptSnapshot;
        let mut r = Reader::new(bytes);
        let tag = read_record_prefix(&mut r)?;
        let (want_tag, want_m) = design_tag(self.design);
        if tag != want_tag || r.u64().map_err(corrupt)? != want_m {
            return Err(SessionError::SnapshotMismatch("sampling design differs"));
        }
        if r.u64().map_err(corrupt)? != kg.num_triples()
            || r.u32().map_err(corrupt)? != kg.num_clusters()
        {
            return Err(SessionError::SnapshotMismatch("KG shape differs"));
        }
        let cfg_matches = r.f64().map_err(corrupt)?.to_bits() == cfg.alpha.to_bits()
            && r.f64().map_err(corrupt)?.to_bits() == cfg.epsilon.to_bits()
            && r.u64().map_err(corrupt)? == cfg.min_triples
            && r.u64().map_err(corrupt)? == cfg.min_draws as u64
            && r.opt_u64().map_err(corrupt)? == cfg.max_observations
            && r.opt_f64().map_err(corrupt)?.map(f64::to_bits)
                == cfg.max_cost_seconds.map(f64::to_bits)
            && r.f64().map_err(corrupt)?.to_bits() == cfg.cost_model.entity_seconds.to_bits()
            && r.f64().map_err(corrupt)?.to_bits() == cfg.cost_model.triple_seconds.to_bits()
            && r.u64().map_err(corrupt)? == cfg.cost_model.judgments_per_label
            && r.u8().map_err(corrupt)? == stopping_tag(cfg.stopping);
        if !cfg_matches {
            return Err(SessionError::SnapshotMismatch("evaluation config differs"));
        }
        if !method_fingerprint_matches(&mut r, method).map_err(corrupt)? {
            return Err(SessionError::SnapshotMismatch("interval method differs"));
        }

        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.u64().map_err(corrupt)?;
        }
        let skip_left = r.u64().map_err(corrupt)?;
        let first_check = r.bool().map_err(corrupt)?;
        let n = r.u64().map_err(corrupt)?;
        let tau = r.u64().map_err(corrupt)?;
        if tau > n {
            return Err(SessionError::CorruptSnapshot("tau exceeds n"));
        }
        let mn = r.u64().map_err(corrupt)?;
        let mmean = r.f64().map_err(corrupt)?;
        let mm2 = r.f64().map_err(corrupt)?;
        let priors = method.priors().unwrap_or(&[]);
        let solver = read_solver(&mut r, priors.len()).map_err(corrupt)?;
        let ent_len = r.u32().map_err(corrupt)? as usize;
        if ent_len as u64 > u64::from(kg.num_clusters()) {
            return Err(SessionError::CorruptSnapshot("too many entities"));
        }
        let mut entities = Vec::with_capacity(ent_len);
        for _ in 0..ent_len {
            let e = r.u32().map_err(corrupt)?;
            if e >= kg.num_clusters() {
                return Err(SessionError::CorruptSnapshot("entity id out of range"));
            }
            entities.push(e);
        }
        let tri_len = r.len_capped(kg.num_triples()).map_err(corrupt)?;
        let has_labels = r.bool().map_err(corrupt)?;
        let mut triples = Vec::with_capacity(tri_len);
        let mut labels = Vec::with_capacity(if has_labels { tri_len } else { 0 });
        for _ in 0..tri_len {
            let t = r.u64().map_err(corrupt)?;
            if t >= kg.num_triples() {
                return Err(SessionError::CorruptSnapshot("triple id out of range"));
            }
            triples.push(t);
            if has_labels {
                labels.push(r.bool().map_err(corrupt)?);
            }
        }
        let driver_len = r.len_capped(bytes.len() as u64).map_err(corrupt)?;
        let driver_state = r.bytes(driver_len).map_err(corrupt)?.to_vec();
        r.finish().map_err(corrupt)?;

        if has_labels != self.cache.is_some() {
            return Err(SessionError::CorruptSnapshot(
                "label presence disagrees with the design",
            ));
        }
        self.rng.load_state(rng_state);
        self.skip_left = skip_left;
        self.first_check = first_check;
        self.state = SampleState::from_parts(
            self.kind,
            n,
            tau,
            OnlineMoments::from_raw_parts(mn, mmean, mm2),
        );
        self.solver = solver;
        self.cost = CostTracker::from_saved(self.cfg.cost_model, &entities, &triples);
        if let Some(cache) = &mut self.cache {
            for (t, label) in triples.iter().zip(&labels) {
                cache.insert(*t, *label);
            }
        }
        self.driver
            .restore_state(&driver_state)
            .map_err(|e| SessionError::CorruptSnapshot(e.0))?;
        Ok(self)
    }
}

// Sessions are sent across threads by multi-tenant session hosts (one
// thread creates, another submits); the driver box carries `Send` so
// the whole engine is `Send` whenever its RNG is.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<EvaluationSession<'_, SmallRng>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::{Annotator, OracleAnnotator};
    use kgae_graph::GroundTruth;
    use kgae_sampling::driver::ScsDriver;
    use rand::SeedableRng;

    fn drive_to_completion(
        kg: &(impl KnowledgeGraph + GroundTruth),
        session: &mut EvaluationSession<'_, SmallRng>,
        batch: u64,
    ) -> EvalResult {
        let mut req = AnnotationRequest::default();
        let mut labels = Vec::new();
        while session.next_request_into(batch, &mut req).unwrap() {
            labels.clear();
            labels.extend(req.triples.iter().map(|st| kg.is_correct(st.triple)));
            session.submit(&labels).unwrap();
        }
        session.result().unwrap().clone()
    }

    #[test]
    fn session_protocol_errors() {
        let kg = kgae_graph::datasets::nell();
        let mut s = EvaluationSession::new(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::Wilson,
            &EvalConfig::default(),
            SmallRng::seed_from_u64(1),
        );
        assert!(matches!(
            s.submit(&[true]),
            Err(SessionError::NoRequestPending)
        ));
        let req = s.next_request(4).unwrap().unwrap();
        assert_eq!(req.units, 4);
        assert_eq!(req.triples.len(), 4);
        assert!(matches!(
            s.next_request(1),
            Err(SessionError::RequestPending)
        ));
        assert!(matches!(
            s.snapshot(),
            Err(SessionError::SnapshotUnavailable(_))
        ));
        assert!(matches!(
            s.submit(&[true]),
            Err(SessionError::LabelCountMismatch {
                expected: 4,
                got: 1
            })
        ));
        s.submit(&[true, true, false, true]).unwrap();
        let st = s.status();
        assert_eq!(st.observations, 4);
        assert!(st.stopped.is_none());
        assert!((st.estimate.unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn session_runs_to_moe_convergence() {
        let kg = kgae_graph::datasets::nell();
        let mut s = EvaluationSession::new(
            &kg,
            SamplingDesign::Twcs { m: 3 },
            &IntervalMethod::ahpd_default(),
            &EvalConfig::default(),
            SmallRng::seed_from_u64(7),
        );
        let r = drive_to_completion(&kg, &mut s, 16);
        assert!(r.converged);
        assert!(r.interval.moe() <= 0.05 + 1e-12);
        assert_eq!(s.stop_reason(), Some(StopReason::MoeSatisfied));
        // Stopped sessions politely decline further requests.
        assert!(s.next_request(1).unwrap().is_none());
        let st = s.status();
        assert_eq!(st.stopped, Some(StopReason::MoeSatisfied));
        assert_eq!(st.observations, r.observations);
    }

    #[test]
    fn bounded_scs_stream_reports_exhaustion_not_panic() {
        // The stopping rule can never fire at ε = 0.0005 on FACTBENCH;
        // a 40-draw SCS stream must end in StreamExhausted.
        let kg = kgae_graph::datasets::factbench();
        let cfg = EvalConfig {
            epsilon: 0.000_5,
            ..EvalConfig::default()
        };
        let method = IntervalMethod::Wilson;
        let driver = Box::new(ScsDriver::new(&kg).limit_draws(40));
        let mut s = EvaluationSession::with_driver(
            &kg,
            driver,
            SamplingDesign::Scs,
            &method,
            &cfg,
            SmallRng::seed_from_u64(3),
        );
        let r = drive_to_completion(&kg, &mut s, 8);
        assert!(!r.converged);
        assert_eq!(s.stop_reason(), Some(StopReason::StreamExhausted));
        assert_eq!(r.stage1_draws, 40);
        assert!(r.interval.moe() > 0.000_5);
        // Sticky: polling again still reports the stop.
        assert!(s.next_request(4).unwrap().is_none());
    }

    #[test]
    fn fully_cached_cluster_units_need_no_labels() {
        // A 1-cluster KG: after the first WCS draw annotates the whole
        // cluster, every further draw is fully cached and the request
        // carries units but no triples.
        let kg = kgae_graph::compact::CompactKg::new(
            &[12],
            kgae_graph::compact::LabelStore::Hashed { seed: 2, rate: 0.8 },
        );
        let cfg = EvalConfig {
            max_observations: Some(60),
            ..EvalConfig::default()
        };
        let mut s = EvaluationSession::new(
            &kg,
            SamplingDesign::Wcs,
            &IntervalMethod::Wilson,
            &cfg,
            SmallRng::seed_from_u64(5),
        );
        let req = s.next_request(1).unwrap().unwrap();
        assert_eq!(req.triples.len(), 12);
        let labels: Vec<bool> = req
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        s.submit(&labels).unwrap();
        let req2 = s.next_request(1).unwrap().unwrap();
        assert_eq!(req2.units, 1);
        assert!(req2.triples.is_empty(), "re-draw is fully cached");
        s.submit(&[]).unwrap();
        assert_eq!(s.status().observations, 24);
    }

    #[test]
    fn duplicate_triples_across_batched_units_are_requested_once() {
        // Tiny KG, huge batch: the same cluster is re-drawn many times
        // within one request; each triple must be asked for once.
        let kg = kgae_graph::compact::CompactKg::new(
            &[3, 2],
            kgae_graph::compact::LabelStore::Hashed { seed: 4, rate: 0.6 },
        );
        let cfg = EvalConfig {
            max_observations: Some(500),
            ..EvalConfig::default()
        };
        let mut s = EvaluationSession::new(
            &kg,
            SamplingDesign::Scs,
            &IntervalMethod::Wilson,
            &cfg,
            SmallRng::seed_from_u64(9),
        );
        let req = s.next_request(64).unwrap().unwrap();
        assert_eq!(req.units, 64);
        let mut seen = std::collections::HashSet::new();
        for st in &req.triples {
            assert!(seen.insert(st.triple), "triple requested twice");
        }
        assert!(req.triples.len() <= 5);
        let labels: Vec<bool> = req
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        s.submit(&labels).unwrap();
    }

    #[test]
    fn rng_mut_supports_simulated_annotators() {
        let kg = kgae_graph::datasets::yago();
        let annotator = crate::annotator::NoisyAnnotator::new(0.1);
        let mut s = EvaluationSession::new(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::Wilson,
            &EvalConfig::default(),
            SmallRng::seed_from_u64(11),
        );
        let mut labels = Vec::new();
        let mut req = AnnotationRequest::default();
        while s.next_request_into(1, &mut req).unwrap() {
            labels.clear();
            for st in &req.triples {
                let truth = kg.is_correct(st.triple);
                labels.push(annotator.annotate(truth, s.rng_mut()));
            }
            s.submit(&labels).unwrap();
        }
        assert!(s.result().unwrap().converged);
    }

    #[test]
    fn snapshot_rejects_wrong_setup_on_resume() {
        let kg = kgae_graph::datasets::nell();
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let prepared = PreparedDesign::new(&kg, SamplingDesign::Twcs { m: 3 });
        let mut s = EvaluationSession::from_prepared(
            &kg,
            &prepared,
            &method,
            &cfg,
            SmallRng::seed_from_u64(13),
        );
        let req = s.next_request(4).unwrap().unwrap();
        let labels: Vec<bool> = req
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        s.submit(&labels).unwrap();
        let snap = s.snapshot().unwrap();

        // Wrong design.
        let wrong_design = PreparedDesign::new(&kg, SamplingDesign::Wcs);
        assert!(matches!(
            EvaluationSession::resume(
                &kg,
                &wrong_design,
                &method,
                &cfg,
                SmallRng::seed_from_u64(0),
                &snap
            ),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong config.
        let wrong_cfg = cfg.clone().with_alpha(0.10);
        assert!(matches!(
            EvaluationSession::resume(
                &kg,
                &prepared,
                &method,
                &wrong_cfg,
                SmallRng::seed_from_u64(0),
                &snap
            ),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong method.
        assert!(matches!(
            EvaluationSession::resume(
                &kg,
                &prepared,
                &IntervalMethod::Wilson,
                &cfg,
                SmallRng::seed_from_u64(0),
                &snap
            ),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong KG shape.
        let other = kgae_graph::datasets::yago();
        let other_prepared = PreparedDesign::new(&other, SamplingDesign::Twcs { m: 3 });
        assert!(matches!(
            EvaluationSession::resume(
                &other,
                &other_prepared,
                &method,
                &cfg,
                SmallRng::seed_from_u64(0),
                &snap
            ),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Truncated bytes.
        assert!(matches!(
            EvaluationSession::resume(
                &kg,
                &prepared,
                &method,
                &cfg,
                SmallRng::seed_from_u64(0),
                &snap[..snap.len() - 3]
            ),
            Err(SessionError::CorruptSnapshot(_))
        ));
        // The original session is unperturbed and still resumable.
        let resumed = EvaluationSession::resume(
            &kg,
            &prepared,
            &method,
            &cfg,
            SmallRng::seed_from_u64(0),
            &snap,
        )
        .unwrap();
        assert_eq!(resumed.status().observations, s.status().observations);
    }

    #[test]
    fn custom_driver_sessions_resume_with_their_configuration_intact() {
        // A bounded SCS stream suspended mid-run and resumed through
        // resume_with_driver keeps its draw limit: the resumed session
        // must exhaust at the same draw count as an uninterrupted one.
        let kg = kgae_graph::datasets::factbench();
        let cfg = EvalConfig {
            epsilon: 0.000_5,
            ..EvalConfig::default()
        };
        let method = IntervalMethod::Wilson;
        let limit = 25u64;

        let run = |interrupt: bool| {
            let mut s = EvaluationSession::with_driver(
                &kg,
                Box::new(ScsDriver::new(&kg).limit_draws(limit)),
                SamplingDesign::Scs,
                &method,
                &cfg,
                SmallRng::seed_from_u64(31),
            );
            let mut req = AnnotationRequest::default();
            let mut labels = Vec::new();
            let mut batches = 0;
            while s.next_request_into(4, &mut req).unwrap() {
                labels.clear();
                labels.extend(req.triples.iter().map(|st| kg.is_correct(st.triple)));
                s.submit(&labels).unwrap();
                batches += 1;
                if interrupt && batches == 3 {
                    let bytes = s.snapshot().unwrap();
                    s = EvaluationSession::resume_with_driver(
                        &kg,
                        Box::new(ScsDriver::new(&kg).limit_draws(limit)),
                        SamplingDesign::Scs,
                        &method,
                        &cfg,
                        SmallRng::seed_from_u64(0),
                        &bytes,
                    )
                    .unwrap();
                }
            }
            (s.stop_reason().unwrap(), s.into_result().unwrap())
        };

        let (straight_reason, straight) = run(false);
        let (resumed_reason, resumed) = run(true);
        assert_eq!(straight_reason, StopReason::StreamExhausted);
        assert_eq!(resumed_reason, StopReason::StreamExhausted);
        assert_eq!(straight.stage1_draws, limit);
        assert_eq!(straight, resumed, "suspend/resume changed the bounded run");
    }

    #[test]
    fn snapshot_header_peek_reports_identity_without_resume() {
        let kg = kgae_graph::datasets::nell();
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let design = SamplingDesign::Twcs { m: 3 };
        let mut s = EvaluationSession::new(&kg, design, &method, &cfg, SmallRng::seed_from_u64(2));
        let req = s.next_request(3).unwrap().unwrap();
        let labels: Vec<bool> = req
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        s.submit(&labels).unwrap();
        let snap = s.snapshot().unwrap();
        let header = match crate::engine::peek_any_header(&snap).unwrap() {
            crate::engine::AnyHeader::Plain(h) => h,
            other => panic!("plain snapshot identified as {:?}", other.kind()),
        };
        assert_eq!(header.design, design);
        assert_eq!(header.num_triples, kg.num_triples());
        assert_eq!(header.num_clusters, kg.num_clusters());
        // Corrupt / truncated prefixes fail loudly.
        assert!(matches!(
            crate::engine::peek_any_header(&snap[..9]),
            Err(SessionError::CorruptSnapshot(_))
        ));
        let mut bad_magic = snap.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            crate::engine::peek_any_header(&bad_magic),
            Err(SessionError::CorruptSnapshot(_))
        ));
        let mut bad_tag = snap;
        bad_tag[10] = 200; // design tag byte
        assert!(matches!(
            crate::engine::peek_any_header(&bad_tag),
            Err(SessionError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn legacy_driver_loop_matches_framework_evaluate() {
        // The rebuilt evaluate() is a session in disguise; driving a
        // session by hand with batch 1 and the oracle must agree with
        // it bit for bit.
        let kg = kgae_graph::datasets::dbpedia();
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        for seed in [0u64, 3, 17] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let legacy = crate::framework::evaluate(
                &kg,
                &OracleAnnotator,
                SamplingDesign::Twcs { m: 3 },
                &method,
                &cfg,
                &mut rng,
            )
            .unwrap();
            let mut s = EvaluationSession::new(
                &kg,
                SamplingDesign::Twcs { m: 3 },
                &method,
                &cfg,
                SmallRng::seed_from_u64(seed),
            );
            let manual = drive_to_completion(&kg, &mut s, 1);
            assert_eq!(legacy, manual, "seed {seed}");
        }
    }
}
