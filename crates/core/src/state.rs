//! Accumulated annotation state — the sufficient statistics every
//! interval method reads (phase 3 of Figure 1).

use kgae_sampling::{
    cluster_estimate_from_moments, design_effect, effective_sample_size, srs_estimate, Estimate,
};
use kgae_stats::descriptive::OnlineMoments;

/// Which estimator family the sample feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignKind {
    /// Triple-level SRS: the sample proportion estimator (Eq. 2).
    Srs,
    /// Cluster designs (TWCS/WCS/SCS): mean of per-draw estimates (Eq. 3)
    /// with Kish design-effect adjustment for the interval methods.
    Cluster,
}

/// Running annotation tallies.
///
/// Cluster draws feed a Welford accumulator rather than a growing vector
/// of per-draw estimates, so the estimator (and hence the per-draw
/// stopping check) is O(1) per draw instead of O(draws) — the quadratic
/// re-summation was measurable on low-accuracy datasets that run for
/// hundreds of draws.
#[derive(Debug, Clone)]
pub struct SampleState {
    kind: DesignKind,
    /// Total annotated observations (with multiplicity under
    /// with-replacement cluster draws).
    n: u64,
    /// Observations annotated correct.
    tau: u64,
    /// Online moments of the per-stage-1-draw estimates (cluster designs
    /// only). For TWCS/WCS the draws push cluster sample means
    /// `μ̂_i ∈ [0, 1]`; for SCS the Hansen–Hurwitz per-draw estimates
    /// (possibly > 1).
    draw_moments: OnlineMoments,
}

/// Design-effect-adjusted view of the sample, the inputs to Wilson and
/// the credible-interval posterior updates (Algorithm 1, lines 10–14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveSample {
    /// Point estimate `μ̂` (clamped to `[0, 1]` for posterior use).
    pub mu: f64,
    /// Effective sample size `n_eff = n / deff`.
    pub n_eff: f64,
    /// The Kish design effect itself.
    pub deff: f64,
}

impl SampleState {
    /// Fresh SRS state.
    #[must_use]
    pub fn new_srs() -> Self {
        Self {
            kind: DesignKind::Srs,
            n: 0,
            tau: 0,
            draw_moments: OnlineMoments::new(),
        }
    }

    /// Fresh cluster-design state.
    #[must_use]
    pub fn new_cluster() -> Self {
        Self {
            kind: DesignKind::Cluster,
            n: 0,
            tau: 0,
            draw_moments: OnlineMoments::new(),
        }
    }

    /// Records one SRS-annotated triple.
    ///
    /// # Panics
    ///
    /// Panics when called on a cluster-design state.
    pub fn record_triple(&mut self, correct: bool) {
        assert_eq!(self.kind, DesignKind::Srs, "record_triple on cluster state");
        self.n += 1;
        if correct {
            self.tau += 1;
        }
    }

    /// Records one stage-1 cluster draw with its per-draw estimate and
    /// annotation counts.
    ///
    /// # Panics
    ///
    /// Panics when called on an SRS state or with `size == 0`.
    pub fn record_cluster_draw(&mut self, estimate: f64, correct: u64, size: u64) {
        assert_eq!(
            self.kind,
            DesignKind::Cluster,
            "record_cluster_draw on SRS state"
        );
        assert!(size > 0, "empty cluster draw");
        self.n += size;
        self.tau += correct;
        self.draw_moments.push(estimate);
    }

    /// Design kind.
    #[must_use]
    pub fn kind(&self) -> DesignKind {
        self.kind
    }

    /// The raw per-draw Welford accumulator (session snapshots).
    pub(crate) fn moments(&self) -> &OnlineMoments {
        &self.draw_moments
    }

    /// Rebuilds a state from snapshot parts, preserving every bit of
    /// the running tallies.
    pub(crate) fn from_parts(
        kind: DesignKind,
        n: u64,
        tau: u64,
        draw_moments: OnlineMoments,
    ) -> Self {
        Self {
            kind,
            n,
            tau,
            draw_moments,
        }
    }

    /// Total annotated observations.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Observations annotated correct.
    #[must_use]
    pub fn tau(&self) -> u64 {
        self.tau
    }

    /// Number of stage-1 draws (0 for SRS).
    #[must_use]
    pub fn draws(&self) -> usize {
        self.draw_moments.count() as usize
    }

    /// Sum of squared deviations of the per-draw estimates from their
    /// mean (`Σ(μ̂_i − μ̂)²`; 0 for SRS or fewer than two draws).
    ///
    /// Monotone non-decreasing draw over draw — the invariant behind the
    /// certified cluster lookahead's effective-sample-size upper bound.
    #[must_use]
    pub fn draw_sum_sq_dev(&self) -> f64 {
        if self.draw_moments.count() < 2 {
            0.0
        } else {
            self.draw_moments.sum_sq_dev()
        }
    }

    /// Mean of the per-draw estimates (cluster designs; `NaN` before the
    /// first draw).
    #[must_use]
    pub fn draw_mean(&self) -> f64 {
        self.draw_moments.mean()
    }

    /// Point estimate with variance under the design's estimator.
    ///
    /// # Panics
    ///
    /// Panics on an empty state.
    #[must_use]
    pub fn estimate(&self) -> Estimate {
        match self.kind {
            DesignKind::Srs => srs_estimate(self.tau, self.n),
            DesignKind::Cluster => cluster_estimate_from_moments(
                self.draw_moments.mean(),
                self.draw_moments.sum_sq_dev(),
                self.draw_moments.count(),
            ),
        }
    }

    /// Point estimate `μ̂` alone.
    #[must_use]
    pub fn mu_hat(&self) -> f64 {
        self.estimate().mu
    }

    /// The design-effect-adjusted sample (Algorithm 1, line 12). For SRS
    /// the adjustment is the identity (`deff = 1`, `n_eff = n`).
    #[must_use]
    pub fn effective(&self) -> EffectiveSample {
        match self.kind {
            DesignKind::Srs => EffectiveSample {
                mu: self.tau as f64 / self.n as f64,
                n_eff: self.n as f64,
                deff: 1.0,
            },
            DesignKind::Cluster => {
                let est = self.estimate();
                let deff = design_effect(&est, self.n);
                // An effective sample below one observation is not
                // meaningful (it can only arise from pathological
                // per-draw variance under whole-cluster designs); floor
                // it so downstream posteriors stay proper.
                EffectiveSample {
                    mu: est.mu.clamp(0.0, 1.0),
                    n_eff: effective_sample_size(self.n, deff).max(1.0),
                    deff,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srs_tallies_and_estimate() {
        let mut s = SampleState::new_srs();
        for i in 0..30 {
            s.record_triple(i % 10 != 0); // 27/30 correct
        }
        assert_eq!(s.n(), 30);
        assert_eq!(s.tau(), 27);
        let e = s.estimate();
        assert!((e.mu - 0.9).abs() < 1e-12);
        let eff = s.effective();
        assert_eq!(eff.deff, 1.0);
        assert_eq!(eff.n_eff, 30.0);
    }

    #[test]
    fn cluster_tallies_and_estimate() {
        let mut s = SampleState::new_cluster();
        s.record_cluster_draw(1.0, 3, 3);
        s.record_cluster_draw(0.5, 1, 2);
        s.record_cluster_draw(0.75, 3, 4);
        assert_eq!(s.n(), 9);
        assert_eq!(s.tau(), 7);
        assert_eq!(s.draws(), 3);
        let e = s.estimate();
        assert!((e.mu - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cluster_design_effect_flows_into_n_eff() {
        let mut uniform = SampleState::new_cluster();
        let mut varied = SampleState::new_cluster();
        for i in 0..20 {
            uniform.record_cluster_draw(0.8, 4, 5);
            // Same overall μ̂ but means alternate 1.0 / 0.6.
            let m = if i % 2 == 0 { 1.0 } else { 0.6 };
            varied.record_cluster_draw(m, (m * 5.0) as u64, 5);
        }
        let eu = uniform.effective();
        let ev = varied.effective();
        // Identical cluster means → tiny variance → deff « 1 → n_eff » n.
        assert!(eu.deff < 0.01, "uniform deff = {}", eu.deff);
        assert!(eu.n_eff > 100.0 * 20.0 * 5.0 / 1000.0);
        // Varied means → positive deff.
        assert!(ev.deff > eu.deff);
        assert!((ev.mu - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "record_triple on cluster state")]
    fn wrong_recorder_panics() {
        let mut s = SampleState::new_cluster();
        s.record_triple(true);
    }

    #[test]
    fn welford_getters_track_draws() {
        let mut s = SampleState::new_cluster();
        assert_eq!(s.draw_sum_sq_dev(), 0.0);
        s.record_cluster_draw(1.0, 3, 3);
        assert_eq!(s.draw_sum_sq_dev(), 0.0, "single draw has no spread");
        s.record_cluster_draw(0.5, 1, 2);
        s.record_cluster_draw(0.75, 3, 4);
        // Σ(μ_i - 0.75)² = 0.0625 + 0.0625 + 0 = 0.125.
        assert!((s.draw_sum_sq_dev() - 0.125).abs() < 1e-12);
        assert!((s.draw_mean() - 0.75).abs() < 1e-12);
        // Monotone growth draw over draw.
        let before = s.draw_sum_sq_dev();
        s.record_cluster_draw(0.9, 2, 2);
        assert!(s.draw_sum_sq_dev() >= before);
    }

    #[test]
    fn scs_style_estimates_above_one_are_clamped_for_posteriors() {
        let mut s = SampleState::new_cluster();
        s.record_cluster_draw(1.4, 2, 2); // Hansen–Hurwitz per-draw > 1
        s.record_cluster_draw(0.7, 1, 2);
        let eff = s.effective();
        assert!(eff.mu <= 1.0);
    }
}
