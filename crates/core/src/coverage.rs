//! Exact coverage probabilities at fixed sample size.
//!
//! §3.3 argues that assessing CI reliability requires coverage
//! probabilities, which demand "repeated iterations of the entire
//! evaluation procedure". At a fixed sample size, however, coverage under
//! SRS has a closed form: the annotation outcome is `τ ~ Bin(n, μ)`, so
//!
//! `coverage(n, μ) = Σ_τ  P(τ | n, μ) · 1[ interval(τ, n) ∋ μ ]`
//!
//! This module computes that sum exactly (no Monte Carlo error), which
//! powers the coverage ablation bench comparing Wald / Wilson / ET / HPD
//! reliability across the accuracy space.

use crate::method::IntervalMethod;
use crate::state::SampleState;
use kgae_intervals::IntervalError;
use kgae_stats::dist::Binomial;

/// Exact SRS coverage probability of `method`'s `1-α` interval at sample
/// size `n` and true accuracy `mu`.
pub fn exact_srs_coverage(
    method: &IntervalMethod,
    n: u64,
    mu: f64,
    alpha: f64,
) -> Result<f64, IntervalError> {
    let bin = Binomial::new(n, mu).map_err(IntervalError::Stats)?;
    let mut coverage = 0.0;
    for tau in 0..=n {
        let p = bin.pmf(tau);
        if p < 1e-16 {
            continue;
        }
        let mut state = SampleState::new_srs();
        for i in 0..n {
            state.record_triple(i < tau);
        }
        if method.interval(&state, alpha)?.contains(mu) {
            coverage += p;
        }
    }
    Ok(coverage)
}

/// Mean interval width at fixed `n` — the companion efficiency metric.
pub fn exact_srs_expected_width(
    method: &IntervalMethod,
    n: u64,
    mu: f64,
    alpha: f64,
) -> Result<f64, IntervalError> {
    let bin = Binomial::new(n, mu).map_err(IntervalError::Stats)?;
    let mut acc = 0.0;
    for tau in 0..=n {
        let p = bin.pmf(tau);
        if p < 1e-16 {
            continue;
        }
        let mut state = SampleState::new_srs();
        for i in 0..n {
            state.record_triple(i < tau);
        }
        acc += p * method.interval(&state, alpha)?.width();
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgae_intervals::BetaPrior;

    #[test]
    fn wald_coverage_collapses_near_the_boundary() {
        // The §3.1 pathology quantified: at μ = 0.99 and n = 30, the
        // all-correct outcome (probability 0.74) gives a zero-width
        // interval at 1.0 that misses μ, so coverage is far below 95%.
        let c = exact_srs_coverage(&IntervalMethod::Wald, 30, 0.99, 0.05).unwrap();
        assert!(c < 0.60, "Wald coverage at 0.99 = {c}");
    }

    #[test]
    fn wilson_is_more_reliable_than_wald_at_the_boundary() {
        let wald = exact_srs_coverage(&IntervalMethod::Wald, 30, 0.97, 0.05).unwrap();
        let wilson = exact_srs_coverage(&IntervalMethod::Wilson, 30, 0.97, 0.05).unwrap();
        assert!(wilson > wald, "wilson = {wilson} should beat wald = {wald}");
        assert!(wilson > 0.90);
    }

    #[test]
    fn hpd_coverage_is_near_nominal_across_the_space() {
        let m = IntervalMethod::Hpd(BetaPrior::KERMAN);
        for &mu in &[0.1, 0.5, 0.85, 0.95] {
            let c = exact_srs_coverage(&m, 50, mu, 0.05).unwrap();
            assert!(c > 0.90, "HPD coverage at μ = {mu} is {c}");
        }
    }

    #[test]
    fn coverage_probability_is_a_probability() {
        for m in [
            IntervalMethod::Wald,
            IntervalMethod::Wilson,
            IntervalMethod::ahpd_default(),
        ] {
            let c = exact_srs_coverage(&m, 40, 0.8, 0.05).unwrap();
            assert!((0.0..=1.0).contains(&c), "{}: {c}", m.name());
        }
    }

    #[test]
    fn expected_width_decreases_with_n() {
        let m = IntervalMethod::ahpd_default();
        let w30 = exact_srs_expected_width(&m, 30, 0.85, 0.05).unwrap();
        let w120 = exact_srs_expected_width(&m, 120, 0.85, 0.05).unwrap();
        assert!(w120 < w30);
        // Quadrupling n roughly halves the width.
        assert!((w30 / w120 - 2.0).abs() < 0.4, "ratio = {}", w30 / w120);
    }

    #[test]
    fn ahpd_width_never_exceeds_single_prior_width() {
        let ahpd = IntervalMethod::ahpd_default();
        for prior in BetaPrior::UNINFORMATIVE {
            let single = IntervalMethod::Hpd(prior);
            for &mu in &[0.3, 0.9] {
                let wa = exact_srs_expected_width(&ahpd, 30, mu, 0.05).unwrap();
                let ws = exact_srs_expected_width(&single, 30, mu, 0.05).unwrap();
                assert!(wa <= ws + 1e-9, "μ={mu}, prior={}", prior.name);
            }
        }
    }
}
