//! Stratified evaluation campaigns: one poll-based engine per stratum,
//! a shared annotation budget, and a pooled KG-wide answer.
//!
//! The paper's estimators report a single KG-wide accuracy; real audits
//! ask *which predicates are rotten*. A [`StratifiedSession`] takes a
//! [`Stratification`] (by predicate, or any triple → stratum map) and
//! coordinates one SRS-within-stratum [`EvaluationSession`] per stratum
//! behind the same poll protocol as a single session:
//!
//! ```
//! use kgae_core::stratified::{StratifiedConfig, StratifiedSession};
//! use kgae_core::IntervalMethod;
//! use kgae_graph::GroundTruth;
//!
//! let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
//! let mut session = StratifiedSession::new(
//!     &kg,
//!     &strat,
//!     &IntervalMethod::ahpd_default(),
//!     &StratifiedConfig::default(),
//!     42,
//! );
//! while let Some(req) = session.next_request(8).unwrap() {
//!     // req.stratum / req.name say which predicate this batch audits.
//!     let labels: Vec<bool> = req
//!         .request
//!         .triples
//!         .iter()
//!         .map(|st| kg.is_correct(st.triple))
//!         .collect();
//!     session.submit(&labels).unwrap();
//! }
//! let result = session.into_result().unwrap();
//! assert!(result.pooled.converged);
//! assert_eq!(result.strata.len(), 8); // one row per predicate
//! ```
//!
//! **Allocation.** Each polled batch goes entirely to one stratum,
//! chosen by the configured [`AllocationPolicy`]:
//!
//! * *width-greedy* (Neyman-style, the default): maximize the pooled
//!   interval's width reduction per annotation, score
//!   `(W_h · width_h)² / n_h`. Equalizing raw per-stratum widths is
//!   provably no better than proportional under equal weights (both
//!   yield pooled variance `Σσ_h²/(Hn)`); the marginal-reduction form
//!   converges to the Neyman optimum `n_h ∝ W_h σ_h` instead.
//! * *proportional*: keep `n_h / W_h` balanced — the textbook
//!   `n_h ∝ M_h` baseline (and the benchmark's comparison arm).
//! * *equal*: keep raw per-stratum counts balanced.
//!
//! Strata below the per-stratum floor are served first (lowest index
//! first) under every policy, so tiny strata cannot be starved and the
//! policies share an identical warm-up phase.
//!
//! **Stopping.** The campaign stops when the *pooled* interval's MoE
//! reaches `ε` (`MoeSatisfied`), when every stratum is fully annotated
//! (`PopulationExhausted` — the pooled estimate is then exact), or when
//! the shared observation budget runs out (`BudgetExhausted`).
//!
//! **Pooling.** The pooled point estimate is the classical stratified
//! estimator `μ̂ = Σ_h W_h μ̂_h`, computed with
//! [`kgae_intervals::pooled_point`]'s left fold — **bit-identical** to
//! combining the per-stratum estimators by hand in stratum order (a
//! property test pins this). Fully annotated strata contribute zero
//! variance. The pooled interval is Wald-on-pooled-variance; the
//! per-stratum rows keep their own credible intervals.
//!
//! **Suspend/resume.** [`StratifiedSession::snapshot`] reuses the PR-2
//! `KGAESNAP` container with a new record type (design tag 4): the
//! coordinator's config and stratification fingerprints followed by one
//! embedded PR-2 session snapshot (or census record) per stratum.
//! Resume validates every fingerprint and restores the exact
//! allocation + sampling trajectory, bit for bit.

use crate::framework::{EvalConfig, EvalResult, SamplingDesign, StoppingPolicy};
use crate::method::IntervalMethod;
use crate::session::{
    method_fingerprint_matches, read_record_prefix, write_method_fingerprint, AnnotationRequest,
    EvaluationSession, SessionError, SessionStatus, StopReason, STRATIFIED_SNAPSHOT_TAG,
};
use crate::snapshot::{Reader, Writer, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use kgae_graph::stratify::Stratification;
use kgae_graph::KnowledgeGraph;
use kgae_intervals::{pooled_interval, pooled_point, Interval, StratumSummary};
use kgae_sampling::driver::StratumSrsDriver;
use kgae_sampling::AllocationPolicy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Campaign-level configuration of a stratified evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedConfig {
    /// Significance level α of every interval (per-stratum and pooled).
    pub alpha: f64,
    /// MoE target ε for the **pooled** interval — the campaign's
    /// stopping rule.
    pub epsilon: f64,
    /// How annotation batches are allocated across strata.
    pub allocation: AllocationPolicy,
    /// Shared cap on total annotation observations across all strata;
    /// exceeded ⇒ the campaign reports `BudgetExhausted`.
    pub max_observations: Option<u64>,
    /// Minimum annotations per stratum (clamped to the stratum size)
    /// before the pooled stopping rule is consulted; under-floor strata
    /// are served first by every allocation policy.
    pub min_per_stratum: u64,
}

impl Default for StratifiedConfig {
    /// α = ε = 0.05, width-greedy allocation, floor 10, no budget.
    fn default() -> Self {
        Self {
            alpha: 0.05,
            epsilon: 0.05,
            allocation: AllocationPolicy::WidthGreedy,
            max_observations: None,
            min_per_stratum: 10,
        }
    }
}

impl StratifiedConfig {
    /// The per-stratum engine configuration this campaign config
    /// denotes. Stratum sessions never stop on their own (`min_triples`
    /// is unreachable, ε = 0): stopping is the coordinator's job, so
    /// the per-stratum engines are pure estimators. Snapshots embed
    /// this derived config's fingerprint, so it must be a pure function
    /// of the campaign config.
    #[must_use]
    pub fn per_stratum_config(&self) -> EvalConfig {
        EvalConfig {
            alpha: self.alpha,
            epsilon: 0.0,
            min_triples: u64::MAX,
            stopping: StoppingPolicy::CertifiedLookahead,
            ..EvalConfig::default()
        }
    }
}

/// A poll outcome: the next batch, addressed to one stratum.
#[derive(Debug, Clone)]
pub struct StratifiedRequest {
    /// Index of the stratum the batch belongs to.
    pub stratum: u32,
    /// Its name (predicate, bucket label, ...).
    pub name: String,
    /// The batch itself; labels are owed in this order.
    pub request: AnnotationRequest,
}

/// One stratum's row in a status report.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReport {
    /// Stratum name.
    pub name: String,
    /// Population weight `W_h = M_h / M`.
    pub weight: f64,
    /// Stratum size `M_h` in triples.
    pub size: u64,
    /// Whether every triple of the stratum has been annotated (the
    /// stratum estimate is then exact and contributes zero pooled
    /// variance).
    pub census: bool,
    /// The stratum engine's status (its own credible interval, counts,
    /// cost). `stopped` is `PopulationExhausted` for a census stratum,
    /// `None` otherwise — stratum engines never stop for any other
    /// reason.
    pub status: SessionStatus,
}

/// A point-in-time view of the whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedStatus {
    /// Pooled KG-wide view: stratified point estimate, pooled Wald
    /// interval, summed counts and cost.
    pub pooled: SessionStatus,
    /// Per-stratum rows, in stratum order.
    pub strata: Vec<StratumReport>,
}

/// Final outcome of a stratified campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedResult {
    /// Pooled result in the shape of a single-session [`EvalResult`]
    /// (`stage1_draws` is 0: strata sample triples, not clusters).
    pub pooled: EvalResult,
    /// Per-stratum rows at the stop.
    pub strata: Vec<StratumReport>,
}

enum StratumSlot<'a> {
    /// Still sampling.
    Live(Box<EvaluationSession<'a, SmallRng>>),
    /// Fully annotated (census): exact estimate, zero variance.
    Census(Box<EvalResult>),
}

/// Coordinator for a stratified campaign. See the module docs for the
/// protocol and the allocation/stopping semantics.
pub struct StratifiedSession<'a> {
    kg: &'a dyn KnowledgeGraph,
    cfg: StratifiedConfig,
    method: IntervalMethod,
    strat_fingerprint: u64,
    names: Vec<String>,
    sizes: Vec<u64>,
    weights: Vec<f64>,
    slots: Vec<StratumSlot<'a>>,
    pending: Option<u32>,
    outcome: Option<(StopReason, StratifiedResult)>,
}

impl<'a> StratifiedSession<'a> {
    /// Creates a campaign over `kg` partitioned by `strat`. Each
    /// stratum gets its own deterministic RNG stream derived from
    /// `seed`, so the whole campaign is reproducible from
    /// `(kg, strat, method, cfg, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `strat` does not cover exactly `kg`'s triples.
    #[must_use]
    pub fn new(
        kg: &'a dyn KnowledgeGraph,
        strat: &Stratification,
        method: &IntervalMethod,
        cfg: &StratifiedConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            strat.num_triples(),
            kg.num_triples(),
            "stratification covers a different KG"
        );
        let per_stratum = cfg.per_stratum_config();
        let slots = (0..strat.num_strata())
            .map(|h| {
                let driver = Box::new(StratumSrsDriver::new(kg, strat.members(h)));
                StratumSlot::Live(Box::new(EvaluationSession::with_driver(
                    kg,
                    driver,
                    SamplingDesign::Srs,
                    method,
                    &per_stratum,
                    SmallRng::seed_from_u64(kgae_graph::hash::mix2(seed, u64::from(h))),
                )))
            })
            .collect();
        Self {
            kg,
            cfg: cfg.clone(),
            method: method.clone(),
            strat_fingerprint: strat.fingerprint(),
            names: (0..strat.num_strata())
                .map(|h| strat.name(h).to_string())
                .collect(),
            sizes: (0..strat.num_strata()).map(|h| strat.size(h)).collect(),
            weights: (0..strat.num_strata()).map(|h| strat.weight(h)).collect(),
            slots,
            pending: None,
            outcome: None,
        }
    }

    /// Attaches a shared posterior-kernel cache to every live stratum
    /// session (strata are SRS by construction, the cache's sweet spot).
    /// Purely a cost lever: outputs stay bit-identical. Per-stratum
    /// sessions are only created in [`Self::new`] and [`Self::resume`],
    /// so attaching once after construction covers the whole campaign.
    pub fn set_kernel_cache(&mut self, kernel: &std::sync::Arc<kgae_intervals::KernelCache>) {
        for slot in &mut self.slots {
            if let StratumSlot::Live(session) = slot {
                session.set_kernel_cache(std::sync::Arc::clone(kernel));
            }
        }
    }

    /// Number of strata.
    #[must_use]
    pub fn num_strata(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &StratifiedConfig {
        &self.cfg
    }

    /// Whether labels are owed on an outstanding request.
    #[must_use]
    pub fn has_pending_request(&self) -> bool {
        self.pending.is_some()
    }

    /// Why the campaign stopped, or `None` while it runs.
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.outcome.as_ref().map(|(reason, _)| *reason)
    }

    /// The final result once the campaign has stopped.
    #[must_use]
    pub fn result(&self) -> Option<&StratifiedResult> {
        self.outcome.as_ref().map(|(_, result)| result)
    }

    /// Consumes the campaign, yielding the final result if it stopped.
    #[must_use]
    pub fn into_result(self) -> Option<StratifiedResult> {
        self.outcome.map(|(_, result)| result)
    }

    fn observations(&self, h: usize) -> u64 {
        match &self.slots[h] {
            StratumSlot::Live(session) => session.sample_state().n(),
            StratumSlot::Census(result) => result.observations,
        }
    }

    fn total_observations(&self) -> u64 {
        (0..self.slots.len()).map(|h| self.observations(h)).sum()
    }

    /// The stratum's pooled-estimator contribution, `None` before its
    /// first annotation.
    fn summary(&self, h: usize) -> Option<StratumSummary> {
        let weight = self.weights[h];
        match &self.slots[h] {
            StratumSlot::Live(session) => {
                let state = session.sample_state();
                if state.n() == 0 {
                    return None;
                }
                let est = state.estimate();
                // A fully annotated stratum that merely hasn't reported
                // exhaustion yet is already a census: no sampling error.
                let variance = if state.n() == self.sizes[h] {
                    0.0
                } else {
                    est.variance
                };
                Some(StratumSummary {
                    weight,
                    mu: est.mu,
                    variance,
                })
            }
            StratumSlot::Census(result) => Some(StratumSummary {
                weight,
                mu: result.mu_hat,
                variance: 0.0,
            }),
        }
    }

    fn report(&self, h: usize) -> StratumReport {
        let (mut status, census) = match &self.slots[h] {
            StratumSlot::Live(session) => {
                let status = session.status();
                let census = status.observations == self.sizes[h];
                (status, census)
            }
            StratumSlot::Census(result) => (
                SessionStatus {
                    estimate: Some(result.mu_hat),
                    interval: Some(result.interval),
                    observations: result.observations,
                    annotated_triples: result.annotated_triples,
                    stage1_draws: 0,
                    cost_seconds: result.cost_seconds,
                    stopped: Some(StopReason::PopulationExhausted),
                },
                true,
            ),
        };
        if census {
            // A fully annotated stratum is a census whether or not its
            // engine already reported exhaustion on a poll.
            status.stopped = Some(StopReason::PopulationExhausted);
        }
        StratumReport {
            name: self.names[h].clone(),
            weight: self.weights[h],
            size: self.sizes[h],
            census,
            status,
        }
    }

    /// The pooled headline alone — stratified point estimate, pooled
    /// interval, summed counts and cost — **without** materializing
    /// per-stratum rows (each row's status constructs that stratum's
    /// own interval). Field-for-field identical to the `pooled` half of
    /// [`StratifiedSession::status`]; session hosts use it on poll and
    /// submit hot paths.
    #[must_use]
    pub fn headline_status(&self) -> SessionStatus {
        if let Some((_, result)) = &self.outcome {
            return SessionStatus {
                estimate: Some(result.pooled.mu_hat),
                interval: Some(result.pooled.interval),
                observations: result.pooled.observations,
                annotated_triples: result.pooled.annotated_triples,
                stage1_draws: 0,
                cost_seconds: result.pooled.cost_seconds,
                stopped: self.stop_reason(),
            };
        }
        let summaries: Option<Vec<StratumSummary>> =
            (0..self.slots.len()).map(|h| self.summary(h)).collect();
        let (estimate, interval) = match summaries {
            Some(summaries) => {
                let mu = pooled_point(&summaries);
                let interval = pooled_interval(&summaries, self.cfg.alpha).ok();
                (Some(mu), interval)
            }
            None => (None, None),
        };
        let (mut observations, mut annotated_triples, mut cost_seconds) = (0, 0, 0.0);
        for slot in &self.slots {
            match slot {
                StratumSlot::Live(session) => {
                    observations += session.sample_state().n();
                    annotated_triples += session.annotated_triples();
                    cost_seconds += session.cost_seconds();
                }
                StratumSlot::Census(result) => {
                    observations += result.observations;
                    annotated_triples += result.annotated_triples;
                    cost_seconds += result.cost_seconds;
                }
            }
        }
        SessionStatus {
            estimate,
            interval,
            observations,
            annotated_triples,
            stage1_draws: 0,
            cost_seconds,
            stopped: self.stop_reason(),
        }
    }

    /// Point-in-time view: per-stratum rows plus the pooled estimate
    /// and interval. The pooled point estimate is
    /// [`pooled_point`] over the per-stratum estimators in stratum
    /// order — bit-identical to folding them by hand.
    #[must_use]
    pub fn status(&self) -> StratifiedStatus {
        if let Some((_, result)) = &self.outcome {
            return StratifiedStatus {
                pooled: self.headline_status(),
                strata: result.strata.clone(),
            };
        }
        let strata: Vec<StratumReport> = (0..self.slots.len()).map(|h| self.report(h)).collect();
        StratifiedStatus {
            pooled: self.headline_status(),
            strata,
        }
    }

    /// Effective floor of stratum `h`: the configured floor, clamped to
    /// the stratum size (a 4-triple stratum cannot owe 10).
    fn floor(&self, h: usize) -> u64 {
        self.cfg.min_per_stratum.min(self.sizes[h])
    }

    /// Picks the stratum the next batch goes to, among live strata.
    /// `None` when every stratum is a census.
    fn allocate(&self) -> Option<usize> {
        let live: Vec<usize> = (0..self.slots.len())
            .filter(|&h| matches!(self.slots[h], StratumSlot::Live(_)))
            .collect();
        if live.is_empty() {
            return None;
        }
        // Warm-up phase, shared by every policy: under-floor strata
        // first, lowest index first.
        if let Some(&h) = live.iter().find(|&&h| self.observations(h) < self.floor(h)) {
            return Some(h);
        }
        match self.cfg.allocation {
            AllocationPolicy::WidthGreedy => {
                // Scoring a stratum constructs its interval (one solver
                // run), so compute each score exactly once per batch.
                let scored: Vec<(f64, usize)> = live
                    .into_iter()
                    .map(|h| {
                        let width = match &self.slots[h] {
                            StratumSlot::Live(session) => session
                                .status()
                                .interval
                                .map_or(1.0, |interval: Interval| interval.width()),
                            StratumSlot::Census(_) => 0.0,
                        };
                        let weighted = self.weights[h] * width;
                        let score = weighted * weighted / self.observations(h).max(1) as f64;
                        (score, h)
                    })
                    .collect();
                scored
                    .into_iter()
                    .max_by(|(sa, a), (sb, b)| {
                        // Ties deterministically go to the lower index
                        // (max_by keeps the last maximum, so reverse
                        // the index order).
                        sa.partial_cmp(sb)
                            .expect("scores are finite")
                            .then(b.cmp(a))
                    })
                    .map(|(_, h)| h)
            }
            AllocationPolicy::Proportional => live.into_iter().min_by(|&a, &b| {
                let score = |h: usize| self.observations(h) as f64 / self.weights[h];
                score(a)
                    .partial_cmp(&score(b))
                    .expect("scores are finite")
                    .then(a.cmp(&b))
            }),
            AllocationPolicy::Equal => live.into_iter().min_by_key(|&h| (self.observations(h), h)),
        }
    }

    fn finish(&mut self, reason: StopReason) -> Result<(), SessionError> {
        let strata: Vec<StratumReport> = (0..self.slots.len()).map(|h| self.report(h)).collect();
        // A budget can run out before every stratum saw data; the
        // pooled answer then renormalizes over the annotated strata (a
        // best-effort partial estimate — `converged` stays false on
        // that path). With all strata present the weights already sum
        // to 1 and the division is an exact no-op, preserving the
        // bit-identity of the pooled point estimate.
        let mut summaries: Vec<StratumSummary> = (0..self.slots.len())
            .filter_map(|h| self.summary(h))
            .collect();
        if summaries.is_empty() {
            return Err(SessionError::StreamEndedBeforeData);
        }
        let covered: f64 = summaries.iter().map(|s| s.weight).sum();
        if summaries.len() < self.slots.len() {
            for s in &mut summaries {
                s.weight /= covered;
            }
        }
        let mu = pooled_point(&summaries);
        let interval =
            pooled_interval(&summaries, self.cfg.alpha).map_err(SessionError::Interval)?;
        let pooled = EvalResult {
            mu_hat: mu,
            interval,
            annotated_triples: strata.iter().map(|r| r.status.annotated_triples).sum(),
            annotated_entities: 0, // strata overlap entities; see cost note below
            observations: strata.iter().map(|r| r.status.observations).sum(),
            stage1_draws: 0,
            cost_seconds: strata.iter().map(|r| r.status.cost_seconds).sum(),
            converged: reason == StopReason::MoeSatisfied
                || reason == StopReason::PopulationExhausted,
            halted_at_floor: false,
        };
        self.outcome = Some((reason, StratifiedResult { pooled, strata }));
        Ok(())
    }

    /// Runs the campaign-level stopping rule; returns whether the
    /// campaign stopped.
    fn check_stop(&mut self) -> Result<bool, SessionError> {
        if self.outcome.is_some() {
            return Ok(true);
        }
        // Census by counts, not by slot state: the last stratum's
        // final labels land in a submit, before any poll could convert
        // its slot — and a complete census must report
        // PopulationExhausted, not a vacuous zero-width MoE pass.
        if (0..self.slots.len()).all(|h| self.observations(h) == self.sizes[h]) {
            self.finish(StopReason::PopulationExhausted)?;
            return Ok(true);
        }
        // Pooled MoE, consulted only once every stratum met its floor.
        let floors_met = (0..self.slots.len()).all(|h| self.observations(h) >= self.floor(h));
        if floors_met {
            let summaries: Option<Vec<StratumSummary>> =
                (0..self.slots.len()).map(|h| self.summary(h)).collect();
            if let Some(summaries) = summaries {
                let interval =
                    pooled_interval(&summaries, self.cfg.alpha).map_err(SessionError::Interval)?;
                if interval.moe() <= self.cfg.epsilon {
                    self.finish(StopReason::MoeSatisfied)?;
                    return Ok(true);
                }
            }
        }
        if self
            .cfg
            .max_observations
            .is_some_and(|cap| self.total_observations() >= cap)
        {
            self.finish(StopReason::BudgetExhausted)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Polls the campaign for the next annotation batch (up to
    /// `max_units` triples, all from one stratum). `Ok(None)` once the
    /// campaign stopped — [`StratifiedSession::status`] carries the
    /// reason.
    ///
    /// # Errors
    ///
    /// [`SessionError::RequestPending`] while labels are owed;
    /// [`SessionError::Interval`] if a pooled-interval construction
    /// fails.
    pub fn next_request(
        &mut self,
        max_units: u64,
    ) -> Result<Option<StratifiedRequest>, SessionError> {
        if self.outcome.is_some() {
            return Ok(None);
        }
        if self.pending.is_some() {
            return Err(SessionError::RequestPending);
        }
        loop {
            let Some(h) = self.allocate() else {
                // Every stratum is a census.
                self.check_stop()?;
                return Ok(None);
            };
            let StratumSlot::Live(session) = &mut self.slots[h] else {
                unreachable!("allocate returns live strata")
            };
            match session.next_request_cancellable(max_units)? {
                Some(request) => {
                    self.pending = Some(h as u32);
                    return Ok(Some(StratifiedRequest {
                        stratum: h as u32,
                        name: self.names[h].clone(),
                        request,
                    }));
                }
                None => {
                    // The stratum ran dry: with a without-replacement
                    // stratum stream that means a census.
                    let result = session
                        .result()
                        .cloned()
                        .expect("a stopped session has a result");
                    self.slots[h] = StratumSlot::Census(Box::new(result));
                    if self.check_stop()? {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Submits labels for the outstanding batch, in request order, then
    /// runs the campaign stopping rule (pooled MoE, census, budget).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`],
    /// [`SessionError::LabelCountMismatch`], or a pooled-interval
    /// construction failure.
    pub fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        let Some(h) = self.pending else {
            return Err(SessionError::NoRequestPending);
        };
        let StratumSlot::Live(session) = &mut self.slots[h as usize] else {
            unreachable!("pending stratum is live")
        };
        session.submit(labels)?;
        self.pending = None;
        self.check_stop()?;
        Ok(())
    }

    /// Withdraws the outstanding batch by rewinding the pending
    /// stratum's engine to its pre-draw state
    /// ([`EvaluationSession::cancel_request`]). Census conversions made
    /// while searching for a live stratum stand — they are exact and
    /// snapshot cleanly — so a re-poll after cancel re-runs the same
    /// allocation and regenerates the bit-identical batch.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`] without an outstanding
    /// request.
    pub fn cancel_request(&mut self) -> Result<(), SessionError> {
        let Some(h) = self.pending else {
            return Err(SessionError::NoRequestPending);
        };
        let StratumSlot::Live(session) = &mut self.slots[h as usize] else {
            unreachable!("pending stratum is live")
        };
        session.cancel_request()?;
        self.pending = None;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Suspend / resume
    // -----------------------------------------------------------------

    /// Serializes the coordinator into a canonical binary snapshot: the
    /// PR-2 `KGAESNAP` container with the stratified record type
    /// (design-tag byte 4), campaign fingerprints, and one embedded
    /// per-stratum record (a full session snapshot for live strata, an
    /// exact census record otherwise).
    ///
    /// # Errors
    ///
    /// [`SessionError::SnapshotUnavailable`] while labels are owed or
    /// after the campaign stopped.
    pub fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        if self.pending.is_some() {
            return Err(SessionError::SnapshotUnavailable(
                "a request is outstanding; submit its labels first",
            ));
        }
        if self.outcome.is_some() {
            return Err(SessionError::SnapshotUnavailable(
                "campaign already stopped; read its result instead",
            ));
        }
        let mut w = Writer::new();
        w.bytes(SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u8(STRATIFIED_SNAPSHOT_TAG);
        w.u64(self.slots.len() as u64);
        w.u64(self.kg.num_triples());
        w.u32(self.kg.num_clusters());
        w.u64(self.strat_fingerprint);
        // Campaign config fingerprint.
        w.f64(self.cfg.alpha);
        w.f64(self.cfg.epsilon);
        w.u8(allocation_tag(self.cfg.allocation));
        w.opt_u64(self.cfg.max_observations);
        w.u64(self.cfg.min_per_stratum);
        // Method fingerprint (same shape as the session snapshot's).
        write_method_fingerprint(&mut w, &self.method);
        // Per-stratum records.
        for slot in &self.slots {
            match slot {
                StratumSlot::Live(session) => {
                    w.u8(0);
                    let child = session.snapshot()?;
                    w.u64(child.len() as u64);
                    w.bytes(&child);
                }
                StratumSlot::Census(result) => {
                    w.u8(1);
                    write_result(&mut w, result);
                }
            }
        }
        Ok(w.into_bytes())
    }

    /// Reconstructs a suspended campaign from a snapshot, validating
    /// the KG shape, stratification fingerprint, campaign config and
    /// method before any stratum resumes. The resumed campaign
    /// continues the exact allocation and sampling trajectory of the
    /// suspended one — and re-snapshotting it yields the identical
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`SessionError::CorruptSnapshot`] on malformed bytes;
    /// [`SessionError::SnapshotMismatch`] when the snapshot belongs to
    /// a different KG, partition, config or method.
    pub fn resume(
        kg: &'a dyn KnowledgeGraph,
        strat: &Stratification,
        method: &IntervalMethod,
        cfg: &StratifiedConfig,
        bytes: &[u8],
    ) -> Result<Self, SessionError> {
        let corrupt = SessionError::CorruptSnapshot;
        let mut r = Reader::new(bytes);
        if read_record_prefix(&mut r)? != STRATIFIED_SNAPSHOT_TAG {
            return Err(SessionError::SnapshotMismatch(
                "not a stratified coordinator snapshot",
            ));
        }
        if r.u64().map_err(corrupt)? != u64::from(strat.num_strata()) {
            return Err(SessionError::SnapshotMismatch("stratum count differs"));
        }
        if r.u64().map_err(corrupt)? != kg.num_triples()
            || r.u32().map_err(corrupt)? != kg.num_clusters()
        {
            return Err(SessionError::SnapshotMismatch("KG shape differs"));
        }
        if r.u64().map_err(corrupt)? != strat.fingerprint() {
            return Err(SessionError::SnapshotMismatch(
                "stratification partition differs",
            ));
        }
        let cfg_matches = r.f64().map_err(corrupt)?.to_bits() == cfg.alpha.to_bits()
            && r.f64().map_err(corrupt)?.to_bits() == cfg.epsilon.to_bits()
            && r.u8().map_err(corrupt)? == allocation_tag(cfg.allocation)
            && r.opt_u64().map_err(corrupt)? == cfg.max_observations
            && r.u64().map_err(corrupt)? == cfg.min_per_stratum;
        if !cfg_matches {
            return Err(SessionError::SnapshotMismatch("campaign config differs"));
        }
        if !method_fingerprint_matches(&mut r, method).map_err(corrupt)? {
            return Err(SessionError::SnapshotMismatch("interval method differs"));
        }
        let per_stratum = cfg.per_stratum_config();
        let mut slots = Vec::with_capacity(strat.num_strata() as usize);
        for h in 0..strat.num_strata() {
            match r.u8().map_err(corrupt)? {
                0 => {
                    let len = r.len_capped(bytes.len() as u64).map_err(corrupt)?;
                    let child = r.bytes(len).map_err(corrupt)?;
                    let driver = Box::new(StratumSrsDriver::new(kg, strat.members(h)));
                    let session = EvaluationSession::resume_with_driver(
                        kg,
                        driver,
                        SamplingDesign::Srs,
                        method,
                        &per_stratum,
                        SmallRng::seed_from_u64(0),
                        child,
                    )?;
                    slots.push(StratumSlot::Live(Box::new(session)));
                }
                1 => {
                    let result = read_result(&mut r).map_err(corrupt)?;
                    if result.observations != strat.size(h) {
                        return Err(SessionError::CorruptSnapshot(
                            "census record disagrees with the stratum size",
                        ));
                    }
                    slots.push(StratumSlot::Census(Box::new(result)));
                }
                _ => return Err(SessionError::CorruptSnapshot("unknown stratum record tag")),
            }
        }
        r.finish().map_err(corrupt)?;
        Ok(Self {
            kg,
            cfg: cfg.clone(),
            method: method.clone(),
            strat_fingerprint: strat.fingerprint(),
            names: (0..strat.num_strata())
                .map(|h| strat.name(h).to_string())
                .collect(),
            sizes: (0..strat.num_strata()).map(|h| strat.size(h)).collect(),
            weights: (0..strat.num_strata()).map(|h| strat.weight(h)).collect(),
            slots,
            pending: None,
            outcome: None,
        })
    }
}

/// Identity prefix of a stratified coordinator snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedSnapshotHeader {
    /// Number of strata.
    pub num_strata: u64,
    /// `num_triples` of the parent KG.
    pub num_triples: u64,
    /// `num_clusters` of the parent KG.
    pub num_clusters: u32,
    /// The stratification's [`Stratification::fingerprint`].
    pub stratification_fingerprint: u64,
}

/// Header parser behind the stratified (tag 4) row of the snapshot tag
/// registry.
pub(crate) fn peek_stratified_header_impl(
    bytes: &[u8],
) -> Result<StratifiedSnapshotHeader, SessionError> {
    let corrupt = SessionError::CorruptSnapshot;
    let mut r = Reader::new(bytes);
    if read_record_prefix(&mut r)? != STRATIFIED_SNAPSHOT_TAG {
        return Err(SessionError::SnapshotMismatch(
            "not a stratified coordinator snapshot",
        ));
    }
    Ok(StratifiedSnapshotHeader {
        num_strata: r.u64().map_err(corrupt)?,
        num_triples: r.u64().map_err(corrupt)?,
        num_clusters: r.u32().map_err(corrupt)?,
        stratification_fingerprint: r.u64().map_err(corrupt)?,
    })
}

fn allocation_tag(policy: AllocationPolicy) -> u8 {
    match policy {
        AllocationPolicy::WidthGreedy => 0,
        AllocationPolicy::Proportional => 1,
        AllocationPolicy::Equal => 2,
    }
}

fn stop_reason_tag(reason: StopReason) -> u8 {
    match reason {
        StopReason::MoeSatisfied => 0,
        StopReason::PopulationExhausted => 1,
        StopReason::StreamExhausted => 2,
        StopReason::BudgetExhausted => 3,
    }
}

fn write_result(w: &mut Writer, result: &EvalResult) {
    w.f64(result.mu_hat);
    w.f64(result.interval.lower());
    w.f64(result.interval.upper());
    w.u64(result.annotated_triples);
    w.u64(result.annotated_entities);
    w.u64(result.observations);
    w.u64(result.stage1_draws);
    w.f64(result.cost_seconds);
    w.bool(result.converged);
    w.bool(result.halted_at_floor);
    w.u8(stop_reason_tag(StopReason::StreamExhausted));
}

fn read_result(r: &mut Reader<'_>) -> Result<EvalResult, &'static str> {
    let mu_hat = r.f64()?;
    let lo = r.f64()?;
    let hi = r.f64()?;
    if lo.is_nan() || hi.is_nan() || lo > hi {
        return Err("interval bounds out of order");
    }
    let result = EvalResult {
        mu_hat,
        interval: Interval::new(lo, hi),
        annotated_triples: r.u64()?,
        annotated_entities: r.u64()?,
        observations: r.u64()?,
        stage1_draws: r.u64()?,
        cost_seconds: r.f64()?,
        converged: r.bool()?,
        halted_at_floor: r.bool()?,
    };
    let _reason = r.u8()?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgae_graph::GroundTruth;

    fn oracle_labels(kg: &(impl GroundTruth + ?Sized), request: &AnnotationRequest) -> Vec<bool> {
        request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect()
    }

    fn drive(
        kg: &(impl KnowledgeGraph + GroundTruth),
        session: &mut StratifiedSession<'_>,
        batch: u64,
    ) -> StratifiedResult {
        while let Some(req) = session.next_request(batch).unwrap() {
            let labels = oracle_labels(kg, &req.request);
            session.submit(&labels).unwrap();
        }
        session.result().unwrap().clone()
    }

    #[test]
    fn stratified_campaign_converges_on_the_pooled_target() {
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let mut session = StratifiedSession::new(
            &kg,
            &strat,
            &IntervalMethod::ahpd_default(),
            &StratifiedConfig::default(),
            42,
        );
        let result = drive(&kg, &mut session, 8);
        assert_eq!(session.stop_reason(), Some(StopReason::MoeSatisfied));
        assert!(result.pooled.converged);
        assert!(result.pooled.interval.moe() <= 0.05 + 1e-12);
        assert_eq!(result.strata.len(), 8);
        // The pooled estimate lands near the dataset's true accuracy.
        assert!(
            (result.pooled.mu_hat - kg.true_accuracy()).abs() < 0.08,
            "pooled {} vs true {}",
            result.pooled.mu_hat,
            kg.true_accuracy()
        );
        // Every stratum met its floor.
        for report in &result.strata {
            assert!(
                report.status.observations >= 10.min(report.size),
                "{} under floor",
                report.name
            );
        }
        // Stopped campaigns politely decline further requests.
        assert!(session.next_request(4).unwrap().is_none());
    }

    #[test]
    fn pooled_point_is_bit_identical_to_the_weighted_fold() {
        // The acceptance property: at every step of a campaign, the
        // pooled point estimate equals Σ W_h (τ_h / n_h) computed by
        // hand from labels the *test* tallied — the unstratified
        // weighted estimator over the per-stratum SRS estimates.
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        for seed in [1u64, 7, 23] {
            let mut session = StratifiedSession::new(
                &kg,
                &strat,
                &IntervalMethod::ahpd_default(),
                &StratifiedConfig::default(),
                seed,
            );
            let k = strat.num_strata() as usize;
            let mut tau = vec![0u64; k];
            let mut n = vec![0u64; k];
            let mut steps = 0;
            while let Some(req) = session.next_request(8).unwrap() {
                let labels = oracle_labels(&kg, &req.request);
                let h = req.stratum as usize;
                n[h] += labels.len() as u64;
                tau[h] += labels.iter().filter(|&&l| l).count() as u64;
                session.submit(&labels).unwrap();
                steps += 1;
                let status = session.status();
                if n.iter().all(|&count| count > 0) {
                    let manual = (0..k).fold(0.0_f64, |acc, h| {
                        acc + strat.weight(h as u32) * (tau[h] as f64 / n[h] as f64)
                    });
                    let pooled = status.pooled.estimate.expect("all strata have data");
                    assert_eq!(
                        pooled.to_bits(),
                        manual.to_bits(),
                        "seed {seed}, step {steps}: pooled {pooled} vs manual {manual}"
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical_and_trajectory_preserving() {
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let method = IntervalMethod::ahpd_default();
        let cfg = StratifiedConfig::default();

        let run = |interrupt_every: Option<u64>| {
            let mut session = StratifiedSession::new(&kg, &strat, &method, &cfg, 99);
            let mut batches = 0u64;
            while let Some(req) = session.next_request(8).unwrap() {
                let labels = oracle_labels(&kg, &req.request);
                session.submit(&labels).unwrap();
                batches += 1;
                if session.stop_reason().is_none() {
                    if let Some(every) = interrupt_every {
                        if batches.is_multiple_of(every) {
                            let bytes = session.snapshot().unwrap();
                            // Byte-identity: resume then re-snapshot.
                            let resumed =
                                StratifiedSession::resume(&kg, &strat, &method, &cfg, &bytes)
                                    .unwrap();
                            let bytes2 = resumed.snapshot().unwrap();
                            assert_eq!(bytes, bytes2, "re-snapshot diverged at batch {batches}");
                            session = resumed;
                        }
                    }
                }
            }
            session.into_result().unwrap()
        };

        let straight = run(None);
        let interrupted = run(Some(3));
        assert_eq!(
            straight, interrupted,
            "suspend/resume changed the campaign trajectory"
        );
    }

    #[test]
    fn resume_rejects_wrong_setup() {
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let method = IntervalMethod::ahpd_default();
        let cfg = StratifiedConfig::default();
        let mut session = StratifiedSession::new(&kg, &strat, &method, &cfg, 5);
        for _ in 0..4 {
            let req = session.next_request(4).unwrap().unwrap();
            let labels = oracle_labels(&kg, &req.request);
            session.submit(&labels).unwrap();
        }
        let bytes = session.snapshot().unwrap();

        // Header peek works and reports identity.
        let header = match crate::engine::peek_any_header(&bytes).unwrap() {
            crate::engine::AnyHeader::Stratified(h) => h,
            other => panic!("stratified snapshot identified as {:?}", other.kind()),
        };
        assert_eq!(header.num_strata, 8);
        assert_eq!(header.num_triples, kg.num_triples());
        assert_eq!(header.stratification_fingerprint, strat.fingerprint());
        // A plain session peek refuses it with a mismatch, not garbage.
        assert!(matches!(
            crate::session::peek_plain_header(&bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));

        // Wrong partition.
        let other = kgae_graph::stratify::Stratification::by_hash(&kg, 8, 1);
        assert!(matches!(
            StratifiedSession::resume(&kg, &other, &method, &cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong config.
        let wrong_cfg = StratifiedConfig {
            epsilon: 0.01,
            ..cfg.clone()
        };
        assert!(matches!(
            StratifiedSession::resume(&kg, &strat, &method, &wrong_cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong method.
        assert!(matches!(
            StratifiedSession::resume(&kg, &strat, &IntervalMethod::Wilson, &cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong KG.
        let yago = kgae_graph::datasets::yago();
        assert!(matches!(
            StratifiedSession::resume(&yago, &strat, &method, &cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Truncation.
        assert!(matches!(
            StratifiedSession::resume(&kg, &strat, &method, &cfg, &bytes[..bytes.len() - 2]),
            Err(SessionError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn budget_exhaustion_reports_partial_pooled_answer() {
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let cfg = StratifiedConfig {
            max_observations: Some(90), // floors alone need 80
            ..StratifiedConfig::default()
        };
        let mut session =
            StratifiedSession::new(&kg, &strat, &IntervalMethod::ahpd_default(), &cfg, 3);
        let result = drive(&kg, &mut session, 8);
        assert_eq!(session.stop_reason(), Some(StopReason::BudgetExhausted));
        assert!(!result.pooled.converged);
        assert!(result.pooled.observations >= 90);
        // The tail strata never saw data — the pooled answer is the
        // renormalized partial estimate over the covered strata.
        assert!(result.strata.iter().any(|r| r.status.observations == 0));
        assert!(result.pooled.mu_hat > 0.0 && result.pooled.mu_hat <= 1.0);
    }

    #[test]
    fn tiny_strata_reach_census_and_contribute_exactly() {
        // A 3-stratum partition of a tiny KG: every stratum is driven
        // to census and the pooled answer is the exact accuracy.
        let kg = kgae_graph::datasets::syn_scaled(60, 20, 0.6, 11);
        let strat = kgae_graph::stratify::Stratification::by_hash(&kg, 3, 2);
        let cfg = StratifiedConfig {
            epsilon: 0.000_1, // unreachable by sampling a 60-triple KG
            ..StratifiedConfig::default()
        };
        let mut session = StratifiedSession::new(&kg, &strat, &IntervalMethod::Wilson, &cfg, 1);
        let result = drive(&kg, &mut session, 16);
        assert_eq!(session.stop_reason(), Some(StopReason::PopulationExhausted));
        assert_eq!(result.pooled.observations, 60);
        assert_eq!(result.pooled.interval.width(), 0.0);
        assert!((result.pooled.mu_hat - kg.measure_accuracy()).abs() < 1e-12);
        for report in &result.strata {
            assert!(report.census);
            assert_eq!(report.status.stopped, Some(StopReason::PopulationExhausted));
        }
    }

    #[test]
    fn protocol_errors_mirror_the_single_session() {
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let mut session = StratifiedSession::new(
            &kg,
            &strat,
            &IntervalMethod::Wilson,
            &StratifiedConfig::default(),
            0,
        );
        assert!(matches!(
            session.submit(&[true]),
            Err(SessionError::NoRequestPending)
        ));
        let req = session.next_request(4).unwrap().unwrap();
        assert!(matches!(
            session.next_request(1),
            Err(SessionError::RequestPending)
        ));
        assert!(matches!(
            session.snapshot(),
            Err(SessionError::SnapshotUnavailable(_))
        ));
        assert!(session.has_pending_request());
        let labels = oracle_labels(&kg, &req.request);
        session.submit(&labels).unwrap();
        assert!(!session.has_pending_request());
    }

    #[test]
    fn width_greedy_oversamples_the_rotten_strata() {
        // Width-greedy must spend visibly more of its budget on the
        // high-variance (low-accuracy) predicates than proportional
        // does, relative to their population share.
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let spend = |allocation: AllocationPolicy| {
            let cfg = StratifiedConfig {
                allocation,
                epsilon: 0.03,
                ..StratifiedConfig::default()
            };
            let mut session =
                StratifiedSession::new(&kg, &strat, &IntervalMethod::ahpd_default(), &cfg, 17);
            let result = drive(&kg, &mut session, 8);
            assert!(result.pooled.converged);
            result
        };
        let greedy = spend(AllocationPolicy::WidthGreedy);
        let proportional = spend(AllocationPolicy::Proportional);
        // Share of annotations on the three rotten tail predicates
        // (accuracy ≤ 0.70 → the highest-variance strata).
        let tail_share = |result: &StratifiedResult| {
            let tail: u64 = result.strata[5..]
                .iter()
                .map(|r| r.status.observations)
                .sum();
            tail as f64 / result.pooled.observations as f64
        };
        assert!(
            tail_share(&greedy) > tail_share(&proportional),
            "greedy tail share {:.3} vs proportional {:.3}",
            tail_share(&greedy),
            tail_share(&proportional)
        );
        // And it reaches the pooled target with fewer annotations.
        assert!(
            greedy.pooled.observations < proportional.pooled.observations,
            "greedy {} vs proportional {}",
            greedy.pooled.observations,
            proportional.pooled.observations
        );
    }
}
