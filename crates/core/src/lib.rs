//! # kgae-core
//!
//! The paper's primary contribution, end to end: the iterative KG
//! accuracy-evaluation framework (Figure 1) with Margin-of-Error
//! stopping, the annotation cost model (Eq. 12), the full set of interval
//! methods, and the **adaptive HPD (aHPD)** algorithm (Algorithm 1) that
//! removes prior selection by racing multiple priors and stopping on the
//! first sufficiently narrow HPD interval.
//!
//! ## Quick start
//!
//! ```
//! use kgae_core::prelude::*;
//! use rand::SeedableRng;
//!
//! // Audit a synthetic twin of the NELL sample with aHPD + TWCS —
//! // the paper's recommended configuration.
//! let kg = kgae_graph::datasets::nell();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! let result = evaluate(
//!     &kg,
//!     &OracleAnnotator,
//!     SamplingDesign::Twcs { m: 3 },
//!     &IntervalMethod::ahpd_default(),
//!     &EvalConfig::default(),
//!     &mut rng,
//! )
//! .unwrap();
//! assert!(result.converged);
//! assert!(result.interval.moe() <= 0.05);
//! assert!((result.mu_hat - 0.91).abs() < 0.15);
//! ```
//!
//! ## Module map
//!
//! | module | paper element |
//! |--------|---------------|
//! | [`session`] | the Figure 1 loop inverted into a poll-based engine |
//! | [`framework`] | the legacy closed-loop facade + stopping rule |
//! | [`ahpd`] | Algorithm 1 (lines 10–24) |
//! | [`method`] | Wald / Wilson / ET / HPD / aHPD dispatch |
//! | [`state`] | sufficient statistics + design-effect adjustment |
//! | [`cost`] | Eq. 12 cost model (c1 = 45 s, c2 = 25 s) |
//! | [`annotator`] | oracle / noisy / majority-vote panels (§6.5) |
//! | [`runner`] | 1000-repetition parallel harness + t-tests |
//! | [`coverage`] | exact fixed-n coverage probabilities (§3.3 ablation) |
//! | [`dynamic`] | carryover-prior kernel (§8); one-shot driver deprecated for [`monitor`] |
//! | [`monitor`] | continuous monitoring engine over KG delta batches |
//! | [`report`] | table rendering for the experiment binaries |

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ahpd;
pub mod annotator;
pub mod comparative;
pub mod cost;
pub mod coverage;
pub mod dynamic;
pub mod engine;
pub mod framework;
pub mod method;
pub mod monitor;
pub mod report;
pub mod runner;
pub mod session;
mod snapshot;
pub mod state;
pub mod stratified;

pub use ahpd::{ahpd_select, ahpd_select_warm, AHpdSelection};
pub use annotator::{Annotator, MajorityVoteAnnotator, NoisyAnnotator, OracleAnnotator};
pub use comparative::{
    compared_methods, peek_comparative_header, ComparativeResult, ComparativeSession,
    ComparativeSnapshotHeader, ComparativeStatus, MethodReport,
};
pub use cost::{CostModel, CostTracker};
pub use engine::{
    peek_any_header, peek_record_tag, snapshot_engine_kind, AnyHeader, EngineKind, EngineOutcome,
    EngineRequest, EngineSpec, SessionEngine, SessionStatusView,
};
pub use framework::{
    evaluate, evaluate_prepared, EvalConfig, EvalResult, PreparedDesign, SamplingDesign,
    StoppingPolicy,
};
pub use method::{IntervalMethod, MethodParseError, MethodState};
pub use monitor::{
    peek_monitor_header, DeltaBatch, DeltaOutcome, DriftReport, MonitorReport, MonitorSession,
    MonitorSnapshotHeader,
};
pub use runner::{cost_t_test, repeat_evaluation, triples_t_test, RepeatedRuns};
pub use session::{
    AnnotationRequest, EvaluationSession, SessionError, SessionStatus, SnapshotHeader, SnapshotRng,
    StopReason,
};
pub use state::{DesignKind, EffectiveSample, SampleState};
pub use stratified::{
    StratifiedConfig, StratifiedRequest, StratifiedResult, StratifiedSession,
    StratifiedSnapshotHeader, StratifiedStatus, StratumReport,
};

/// Common imports for applications.
pub mod prelude {
    pub use crate::annotator::OracleAnnotator;
    pub use crate::framework::{evaluate, EvalConfig, EvalResult, SamplingDesign};
    pub use crate::method::IntervalMethod;
    pub use crate::runner::repeat_evaluation;
    pub use kgae_intervals::BetaPrior;
}
