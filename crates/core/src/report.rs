//! Plain-text/markdown table rendering for the experiment binaries.
//!
//! The bench harness prints the same rows the paper's tables report;
//! this keeps the formatting logic out of the experiment code.

use std::fmt::Write as _;

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned markdown.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(width) {
                let _ = write!(out, " {c:<w$} |", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &width, &mut out);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{:-<w$}|", "", w = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }
}

/// Formats `mean ± std` with the requested number of decimals, matching
/// the paper's cell style (`96 ± 44`, `1.76 ± 0.79`).
#[must_use]
pub fn pm(mean: f64, std: f64, decimals: usize) -> String {
    format!("{mean:.decimals$} ± {std:.decimals$}")
}

/// Formats a significance marker: `†` vs Wald, `‡` vs Wilson, per the
/// paper's table conventions.
#[must_use]
pub fn significance_markers(vs_wald: bool, vs_wilson: bool) -> &'static str {
    match (vs_wald, vs_wilson) {
        (true, true) => "†,‡",
        (true, false) => "†",
        (false, true) => "‡",
        (false, false) => "",
    }
}

/// Serializes repeated-run metrics to CSV (one row per repetition) for
/// external analysis. Columns: `rep, triples, cost_hours, mu_hat`.
#[must_use]
pub fn runs_to_csv(runs: &crate::runner::RepeatedRuns) -> String {
    let mut out = String::from("rep,method,design,triples,cost_hours,mu_hat\n");
    for (i, ((t, c), m)) in runs
        .triples
        .iter()
        .zip(&runs.cost_hours)
        .zip(&runs.mu_hats)
        .enumerate()
    {
        let _ = writeln!(out, "{i},{},{},{t},{c},{m}", runs.method, runs.design);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = MarkdownTable::new(vec!["Method", "Triples"]);
        t.row(vec!["Wald", "103 ± 43"]);
        t.row(vec!["aHPD", "96 ± 44"]);
        let s = t.render();
        assert!(s.contains("| Method | Triples  |"));
        assert!(s.lines().count() == 4);
        assert!(s.contains("| aHPD   | 96 ± 44  |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        let mut t = MarkdownTable::new(vec!["A", "B"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn pm_formatting() {
        assert_eq!(pm(96.4, 43.8, 0), "96 ± 44");
        assert_eq!(pm(1.758, 0.789, 2), "1.76 ± 0.79");
    }

    #[test]
    fn markers() {
        assert_eq!(significance_markers(true, true), "†,‡");
        assert_eq!(significance_markers(true, false), "†");
        assert_eq!(significance_markers(false, true), "‡");
        assert_eq!(significance_markers(false, false), "");
    }

    #[test]
    fn csv_export_has_one_row_per_repetition() {
        let runs = crate::runner::RepeatedRuns {
            method: "aHPD".into(),
            design: "SRS".into(),
            triples: vec![30.0, 45.0],
            cost_hours: vec![0.5, 0.7],
            mu_hats: vec![0.9, 0.92],
            coverage_hits: 2,
            zero_width_halts: 0,
            non_converged: 0,
        };
        let csv = runs_to_csv(&runs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("rep,"));
        assert!(lines[1].contains("aHPD") && lines[1].contains("30"));
        assert!(lines[2].contains("0.92"));
    }
}
