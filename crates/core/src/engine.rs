//! The object-safe engine abstraction: one protocol surface for every
//! session kind, and the snapshot **tag registry** that lets hosts
//! dispatch on stored bytes instead of caller-chosen entry points.
//!
//! Four engines implement the poll → submit → status → snapshot
//! lifecycle today — the single-design [`EvaluationSession`], the
//! [`StratifiedSession`] coordinator, the multi-method
//! [`ComparativeSession`] and the long-lived
//! [`MonitorSession`] — and session
//! hosts (the `kgae-service` manager, benches, tests) should not care
//! which one they are driving.
//! [`SessionEngine`] captures exactly the surface a host needs, object
//! safely, so a host stores `Box<dyn SessionEngine>` and writes every
//! lifecycle path once:
//!
//! ```
//! use kgae_core::engine::{EngineSpec, SessionEngine};
//! use kgae_core::{EvalConfig, IntervalMethod, PreparedDesign, SamplingDesign};
//! use kgae_graph::GroundTruth;
//!
//! let kg = kgae_graph::datasets::yago();
//! let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
//! let method = IntervalMethod::Wilson;
//! let cfg = EvalConfig::default();
//! let spec = EngineSpec::Plain {
//!     kg: &kg,
//!     prepared: &prepared,
//!     method: &method,
//!     config: &cfg,
//!     seed: 7,
//! };
//! let mut engine: Box<dyn SessionEngine + '_> = spec.build();
//! while let Some(polled) = engine.next_request(16).unwrap() {
//!     let labels: Vec<bool> = polled
//!         .request
//!         .triples
//!         .iter()
//!         .map(|st| kg.is_correct(st.triple))
//!         .collect();
//!     engine.submit(&labels).unwrap();
//! }
//! assert!(engine.status().primary.stopped.is_some());
//! ```
//!
//! ## The snapshot tag registry
//!
//! Every suspended engine serializes into the shared `KGAESNAP`
//! container, whose header carries a **record tag**: tags 0–3 are the
//! four single-session designs, tag 4 the stratified coordinator, tag 5
//! the comparative session, tag 6 the continuous accuracy monitor. The
//! [`registry`] maps each tag to its
//! engine kind and header parser, so [`peek_any_header`] identifies any
//! snapshot without the caller guessing an entry point — and
//! [`EngineSpec::resume`] validates the stored tag against the engine
//! the spec denotes *before* any kind-specific parsing, turning a
//! mismatched resume into a clean [`SessionError::SnapshotMismatch`].

use crate::comparative::{
    peek_comparative_header, ComparativeSession, ComparativeSnapshotHeader, MethodReport,
};
use crate::framework::{EvalConfig, EvalResult, PreparedDesign};
use crate::method::IntervalMethod;
use crate::monitor::{
    peek_monitor_header, DeltaBatch, DeltaOutcome, MonitorReport, MonitorSession,
    MonitorSnapshotHeader,
};
use crate::session::{
    peek_plain_header, read_record_prefix, AnnotationRequest, EvaluationSession, SessionError,
    SessionStatus, SnapshotHeader, StopReason, COMPARATIVE_SNAPSHOT_TAG, MONITOR_SNAPSHOT_TAG,
    STRATIFIED_SNAPSHOT_TAG,
};
use crate::snapshot::Reader;
use crate::stratified::{
    peek_stratified_header_impl, StratifiedConfig, StratifiedSession, StratifiedSnapshotHeader,
    StratumReport,
};
use kgae_graph::stratify::Stratification;
use kgae_graph::KnowledgeGraph;
use kgae_intervals::KernelCache;
use kgae_sampling::ComparePrimary;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Which engine implementation is behind a [`SessionEngine`] object or
/// a snapshot record tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// A single-design [`EvaluationSession`].
    Plain,
    /// The [`StratifiedSession`] coordinator.
    Stratified,
    /// The multi-method [`ComparativeSession`].
    Comparative,
    /// The long-lived continuous-accuracy
    /// [`MonitorSession`].
    Monitor,
}

impl EngineKind {
    /// Human-readable name (`"plain"`, `"stratified"`,
    /// `"comparative"`, `"monitor"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Plain => "plain",
            EngineKind::Stratified => "stratified",
            EngineKind::Comparative => "comparative",
            EngineKind::Monitor => "monitor",
        }
    }
}

/// A polled annotation batch, with the addressing a host forwards to
/// annotators: stratified engines say which stratum the batch samples.
#[derive(Debug, Clone)]
pub struct EngineRequest {
    /// The batch itself; labels are owed in this order.
    pub request: AnnotationRequest,
    /// The stratum the batch belongs to (`(index, name)`; stratified
    /// engines only).
    pub stratum: Option<(u32, String)>,
}

/// The unified point-in-time view every engine reports — the
/// session-shaped primary status plus whichever per-row breakdowns the
/// engine kind carries.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatusView {
    /// The engine's headline status: the session status for plain
    /// engines, the pooled view for stratified ones, the primary
    /// method's view for comparative ones.
    pub primary: SessionStatus,
    /// Per-stratum rows (stratified engines only).
    pub strata: Option<Vec<StratumReport>>,
    /// Per-method rows (comparative engines only).
    pub methods: Option<Vec<MethodReport>>,
    /// Monitoring rows — epoch, drift alarms, retirement counters
    /// (monitor engines only).
    pub monitor: Option<MonitorReport>,
}

/// A stopped engine's final outcome, in the same unified shape as
/// [`SessionStatusView`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// Why the engine stopped.
    pub reason: StopReason,
    /// The headline result (pooled for stratified engines, the primary
    /// method's for comparative ones).
    pub result: EvalResult,
    /// Final per-stratum rows (stratified engines only).
    pub strata: Option<Vec<StratumReport>>,
    /// Final per-method rows (comparative engines only).
    pub methods: Option<Vec<MethodReport>>,
}

/// The object-safe protocol surface of an evaluation engine: exactly
/// what a session host needs to drive any campaign kind through its
/// whole lifecycle — poll, submit, observe, suspend, finalize.
///
/// `Send` is a supertrait because the defining use case is a
/// multi-tenant host whose engines hop between worker threads.
pub trait SessionEngine: Send {
    /// Which engine implementation this is.
    fn kind(&self) -> EngineKind;

    /// Whether labels are owed on an outstanding request (a pending
    /// engine cannot snapshot).
    fn has_pending_request(&self) -> bool;

    /// Polls for the next annotation batch (at most `max_units` stage-1
    /// units; engines may serve fewer). `Ok(None)` once the engine has
    /// stopped — [`SessionEngine::status`] carries the reason.
    ///
    /// # Errors
    ///
    /// [`SessionError::RequestPending`] while labels are owed; solver
    /// or stream failures.
    fn next_request(&mut self, max_units: u64) -> Result<Option<EngineRequest>, SessionError>;

    /// Submits labels for the outstanding request, in request order,
    /// advancing the engine and its stopping rule.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`],
    /// [`SessionError::LabelCountMismatch`], or solver failures.
    fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError>;

    /// The unified point-in-time view.
    fn status(&self) -> SessionStatusView;

    /// The headline status alone — what poll/submit hot paths report —
    /// without materializing per-stratum or per-method rows (every row
    /// costs an interval construction). Identical to
    /// Withdraws the outstanding request, rewinding the engine to its
    /// exact pre-draw state: afterwards the engine snapshots cleanly
    /// and a re-poll regenerates the bit-identical batch. This is what
    /// lets a draining server suspend mid-batch sessions to disk
    /// without perturbing their evaluation trajectories.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`] without an outstanding
    /// request.
    fn cancel_request(&mut self) -> Result<(), SessionError>;

    /// [`SessionEngine::status`]'s `primary` field; engines whose rows
    /// are expensive override the default.
    fn headline(&self) -> SessionStatus {
        self.status().primary
    }

    /// Why the engine stopped, or `None` while it runs.
    fn stop_reason(&self) -> Option<StopReason>;

    /// Serializes the engine's complete dynamic state into a canonical
    /// `KGAESNAP` snapshot (the record tag identifies the engine kind;
    /// see [`registry`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::SnapshotUnavailable`] while labels are owed or
    /// after the engine stopped.
    fn snapshot(&self) -> Result<Vec<u8>, SessionError>;

    /// Consumes a stopped engine into its final outcome (`None` if it
    /// has not stopped).
    fn into_outcome(self: Box<Self>) -> Option<EngineOutcome>;

    /// Applies a KG delta batch — monitor engines only; every other
    /// kind evaluates a frozen KG.
    ///
    /// # Errors
    ///
    /// [`SessionError::DeltasUnsupported`] unless overridden;
    /// [`SessionError::RequestPending`] while labels are owed;
    /// [`SessionError::DeltaRejected`] on an invalid batch.
    fn apply_deltas(&mut self, batch: &DeltaBatch) -> Result<DeltaOutcome, SessionError> {
        let _ = batch;
        Err(SessionError::DeltasUnsupported)
    }

    /// Attaches the host's shared posterior-kernel cache; subsequent
    /// SRS interval constructions and lookahead certificates memoize
    /// through it. Purely a cost lever — every engine's outputs
    /// (stopping decisions, intervals, snapshot bytes) are bit-identical
    /// with or without a cache attached, so hosts may inject it
    /// unconditionally after `build`/`resume`. Deliberately without a
    /// default body: a new engine kind must decide how the cache reaches
    /// its inner sessions.
    fn set_kernel_cache(&mut self, kernel: Arc<KernelCache>);
}

impl<'a> SessionEngine for EvaluationSession<'a, SmallRng> {
    fn kind(&self) -> EngineKind {
        EngineKind::Plain
    }

    fn has_pending_request(&self) -> bool {
        EvaluationSession::has_pending_request(self)
    }

    fn next_request(&mut self, max_units: u64) -> Result<Option<EngineRequest>, SessionError> {
        // The cancellable path: network hosts must be able to withdraw
        // a batch when draining, and the per-batch capture is noise
        // next to a network round trip.
        Ok(
            EvaluationSession::next_request_cancellable(self, max_units)?.map(|request| {
                EngineRequest {
                    request,
                    stratum: None,
                }
            }),
        )
    }

    fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        EvaluationSession::submit(self, labels)
    }

    fn cancel_request(&mut self) -> Result<(), SessionError> {
        EvaluationSession::cancel_request(self)
    }

    fn status(&self) -> SessionStatusView {
        SessionStatusView {
            primary: EvaluationSession::status(self),
            strata: None,
            methods: None,
            monitor: None,
        }
    }

    fn stop_reason(&self) -> Option<StopReason> {
        EvaluationSession::stop_reason(self)
    }

    fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        EvaluationSession::snapshot(self)
    }

    fn into_outcome(self: Box<Self>) -> Option<EngineOutcome> {
        let reason = EvaluationSession::stop_reason(&self)?;
        let result = self.into_result()?;
        Some(EngineOutcome {
            reason,
            result,
            strata: None,
            methods: None,
        })
    }

    fn set_kernel_cache(&mut self, kernel: Arc<KernelCache>) {
        EvaluationSession::set_kernel_cache(self, kernel);
    }
}

impl<'a> SessionEngine for StratifiedSession<'a> {
    fn kind(&self) -> EngineKind {
        EngineKind::Stratified
    }

    fn has_pending_request(&self) -> bool {
        StratifiedSession::has_pending_request(self)
    }

    fn next_request(&mut self, max_units: u64) -> Result<Option<EngineRequest>, SessionError> {
        Ok(
            StratifiedSession::next_request(self, max_units)?.map(|polled| EngineRequest {
                request: polled.request,
                stratum: Some((polled.stratum, polled.name)),
            }),
        )
    }

    fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        StratifiedSession::submit(self, labels)
    }

    fn cancel_request(&mut self) -> Result<(), SessionError> {
        StratifiedSession::cancel_request(self)
    }

    fn status(&self) -> SessionStatusView {
        let status = StratifiedSession::status(self);
        SessionStatusView {
            primary: status.pooled,
            strata: Some(status.strata),
            methods: None,
            monitor: None,
        }
    }

    fn headline(&self) -> SessionStatus {
        StratifiedSession::headline_status(self)
    }

    fn stop_reason(&self) -> Option<StopReason> {
        StratifiedSession::stop_reason(self)
    }

    fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        StratifiedSession::snapshot(self)
    }

    fn into_outcome(self: Box<Self>) -> Option<EngineOutcome> {
        let reason = StratifiedSession::stop_reason(&self)?;
        let result = self.into_result()?;
        Some(EngineOutcome {
            reason,
            result: result.pooled,
            strata: Some(result.strata),
            methods: None,
        })
    }

    fn set_kernel_cache(&mut self, kernel: Arc<KernelCache>) {
        StratifiedSession::set_kernel_cache(self, &kernel);
    }
}

impl<'a> SessionEngine for ComparativeSession<'a> {
    fn kind(&self) -> EngineKind {
        EngineKind::Comparative
    }

    fn has_pending_request(&self) -> bool {
        ComparativeSession::has_pending_request(self)
    }

    fn next_request(&mut self, max_units: u64) -> Result<Option<EngineRequest>, SessionError> {
        Ok(
            ComparativeSession::next_request(self, max_units)?.map(|request| EngineRequest {
                request,
                stratum: None,
            }),
        )
    }

    fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        ComparativeSession::submit(self, labels)
    }

    fn cancel_request(&mut self) -> Result<(), SessionError> {
        ComparativeSession::cancel_request(self)
    }

    fn status(&self) -> SessionStatusView {
        let status = ComparativeSession::status(self);
        SessionStatusView {
            primary: status.primary,
            strata: None,
            methods: Some(status.methods),
            monitor: None,
        }
    }

    fn headline(&self) -> SessionStatus {
        ComparativeSession::primary_status(self)
    }

    fn stop_reason(&self) -> Option<StopReason> {
        ComparativeSession::stop_reason(self)
    }

    fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        ComparativeSession::snapshot(self)
    }

    fn into_outcome(self: Box<Self>) -> Option<EngineOutcome> {
        let reason = ComparativeSession::stop_reason(&self)?;
        let result = self.into_result()?;
        Some(EngineOutcome {
            reason,
            result: result.primary,
            strata: None,
            methods: Some(result.methods),
        })
    }

    fn set_kernel_cache(&mut self, kernel: Arc<KernelCache>) {
        ComparativeSession::set_kernel_cache(self, &kernel);
    }
}

// ---------------------------------------------------------------------
// Snapshot tag registry
// ---------------------------------------------------------------------

/// The identity prefix of any engine snapshot, by record kind.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyHeader {
    /// A single-session snapshot (record tags 0–3).
    Plain(SnapshotHeader),
    /// A stratified coordinator snapshot (record tag 4).
    Stratified(StratifiedSnapshotHeader),
    /// A comparative session snapshot (record tag 5).
    Comparative(ComparativeSnapshotHeader),
    /// A continuous-monitor snapshot (record tag 6).
    Monitor(MonitorSnapshotHeader),
}

impl AnyHeader {
    /// The engine kind that produced the snapshot.
    #[must_use]
    pub fn kind(&self) -> EngineKind {
        match self {
            AnyHeader::Plain(_) => EngineKind::Plain,
            AnyHeader::Stratified(_) => EngineKind::Stratified,
            AnyHeader::Comparative(_) => EngineKind::Comparative,
            AnyHeader::Monitor(_) => EngineKind::Monitor,
        }
    }

    /// `num_triples` of the KG the snapshot belongs to — every record
    /// kind fingerprints it (the **base** KG for monitor snapshots,
    /// whose delta overlay is part of the record body).
    #[must_use]
    pub fn num_triples(&self) -> u64 {
        match self {
            AnyHeader::Plain(h) => h.num_triples,
            AnyHeader::Stratified(h) => h.num_triples,
            AnyHeader::Comparative(h) => h.num_triples,
            AnyHeader::Monitor(h) => h.num_triples,
        }
    }
}

/// One row of the snapshot tag registry: a `KGAESNAP` record tag, the
/// engine kind it denotes and its header parser.
pub struct TagEntry {
    /// The record-tag byte.
    pub tag: u8,
    /// The engine kind the tag denotes.
    pub kind: EngineKind,
    peek: fn(&[u8]) -> Result<AnyHeader, SessionError>,
}

fn peek_plain(bytes: &[u8]) -> Result<AnyHeader, SessionError> {
    peek_plain_header(bytes).map(AnyHeader::Plain)
}

fn peek_stratified(bytes: &[u8]) -> Result<AnyHeader, SessionError> {
    peek_stratified_header_impl(bytes).map(AnyHeader::Stratified)
}

fn peek_comparative(bytes: &[u8]) -> Result<AnyHeader, SessionError> {
    peek_comparative_header(bytes).map(AnyHeader::Comparative)
}

fn peek_monitor(bytes: &[u8]) -> Result<AnyHeader, SessionError> {
    peek_monitor_header(bytes).map(AnyHeader::Monitor)
}

static REGISTRY: [TagEntry; 7] = [
    TagEntry {
        tag: 0,
        kind: EngineKind::Plain,
        peek: peek_plain,
    },
    TagEntry {
        tag: 1,
        kind: EngineKind::Plain,
        peek: peek_plain,
    },
    TagEntry {
        tag: 2,
        kind: EngineKind::Plain,
        peek: peek_plain,
    },
    TagEntry {
        tag: 3,
        kind: EngineKind::Plain,
        peek: peek_plain,
    },
    TagEntry {
        tag: STRATIFIED_SNAPSHOT_TAG,
        kind: EngineKind::Stratified,
        peek: peek_stratified,
    },
    TagEntry {
        tag: COMPARATIVE_SNAPSHOT_TAG,
        kind: EngineKind::Comparative,
        peek: peek_comparative,
    },
    TagEntry {
        tag: MONITOR_SNAPSHOT_TAG,
        kind: EngineKind::Monitor,
        peek: peek_monitor,
    },
];

/// The snapshot tag registry: every known `KGAESNAP` record tag with
/// its engine kind and header parser, in tag order.
#[must_use]
pub fn registry() -> &'static [TagEntry] {
    &REGISTRY
}

/// Reads the shared `KGAESNAP` container prefix and returns the record
/// tag byte.
///
/// # Errors
///
/// [`SessionError::CorruptSnapshot`] on bad magic or truncation;
/// [`SessionError::SnapshotMismatch`] on an unsupported container
/// version.
pub fn peek_record_tag(bytes: &[u8]) -> Result<u8, SessionError> {
    read_record_prefix(&mut Reader::new(bytes))
}

/// The engine kind a snapshot's record tag denotes, via the registry.
///
/// # Errors
///
/// As [`peek_record_tag`], plus [`SessionError::CorruptSnapshot`] on a
/// tag no registry entry claims.
pub fn snapshot_engine_kind(bytes: &[u8]) -> Result<EngineKind, SessionError> {
    let tag = peek_record_tag(bytes)?;
    REGISTRY
        .iter()
        .find(|entry| entry.tag == tag)
        .map(|entry| entry.kind)
        .ok_or(SessionError::CorruptSnapshot("unknown snapshot record tag"))
}

/// Parses the identity prefix of **any** engine snapshot, dispatching
/// on the record tag through the [`registry`] — the unified
/// replacement for the per-kind `peek_*_header` entry points.
///
/// # Errors
///
/// As [`snapshot_engine_kind`], plus whatever the kind-specific header
/// parser reports on malformed bytes.
pub fn peek_any_header(bytes: &[u8]) -> Result<AnyHeader, SessionError> {
    let tag = peek_record_tag(bytes)?;
    let entry = REGISTRY
        .iter()
        .find(|entry| entry.tag == tag)
        .ok_or(SessionError::CorruptSnapshot("unknown snapshot record tag"))?;
    (entry.peek)(bytes)
}

// ---------------------------------------------------------------------
// Engine construction and registry-dispatched resume
// ---------------------------------------------------------------------

/// Everything needed to construct one engine — fresh or from a
/// snapshot. A host derives the spec from its wire-level session
/// description once and gets a single `build`/`resume` pair instead of
/// per-kind code paths; `resume` validates the snapshot's record tag
/// against the spec's kind through the [`registry`] before any
/// kind-specific parsing.
///
/// `'k` is the KG borrow the engine keeps; the other references only
/// need to outlive the call.
pub enum EngineSpec<'k, 'r> {
    /// A single-design evaluation session.
    Plain {
        /// The KG under evaluation.
        kg: &'k dyn KnowledgeGraph,
        /// Prebuilt design resources (PPS table shared via `Arc`).
        prepared: &'r PreparedDesign,
        /// The interval method.
        method: &'r IntervalMethod,
        /// The evaluation configuration.
        config: &'r EvalConfig,
        /// RNG seed of the sampling stream.
        seed: u64,
    },
    /// A stratified campaign coordinator.
    Stratified {
        /// The KG under evaluation.
        kg: &'k dyn KnowledgeGraph,
        /// The triple → stratum partition.
        stratification: &'r Stratification,
        /// The interval method of every stratum engine.
        method: &'r IntervalMethod,
        /// The campaign configuration.
        config: &'r StratifiedConfig,
        /// Seed of the per-stratum RNG streams.
        seed: u64,
    },
    /// A comparative multi-method session.
    Comparative {
        /// The KG under evaluation.
        kg: &'k dyn KnowledgeGraph,
        /// Prebuilt resources of the shared-stream design.
        prepared: &'r PreparedDesign,
        /// The method whose convergence stops the shared stream.
        primary: ComparePrimary,
        /// The shared evaluation configuration.
        config: &'r EvalConfig,
        /// RNG seed of the shared sampling stream.
        seed: u64,
    },
    /// A long-lived continuous accuracy monitor (SRS campaigns over a
    /// delta-applying view of the base KG).
    Monitor {
        /// The **base** KG the monitor overlays with deltas.
        kg: &'k dyn KnowledgeGraph,
        /// The interval method of the initial campaign.
        method: &'r IntervalMethod,
        /// The per-campaign evaluation configuration.
        config: &'r EvalConfig,
        /// Cap on the pseudo-observations carried between campaigns.
        carry_weight: f64,
        /// RNG seed the per-epoch sampling streams derive from.
        seed: u64,
    },
}

impl<'k> EngineSpec<'k, '_> {
    /// The engine kind this spec denotes.
    #[must_use]
    pub fn kind(&self) -> EngineKind {
        match self {
            EngineSpec::Plain { .. } => EngineKind::Plain,
            EngineSpec::Stratified { .. } => EngineKind::Stratified,
            EngineSpec::Comparative { .. } => EngineKind::Comparative,
            EngineSpec::Monitor { .. } => EngineKind::Monitor,
        }
    }

    /// Constructs a fresh engine.
    #[must_use]
    pub fn build(&self) -> Box<dyn SessionEngine + 'k> {
        match *self {
            EngineSpec::Plain {
                kg,
                prepared,
                method,
                config,
                seed,
            } => Box::new(EvaluationSession::from_prepared(
                kg,
                prepared,
                method,
                config,
                SmallRng::seed_from_u64(seed),
            )),
            EngineSpec::Stratified {
                kg,
                stratification,
                method,
                config,
                seed,
            } => Box::new(StratifiedSession::new(
                kg,
                stratification,
                method,
                config,
                seed,
            )),
            EngineSpec::Comparative {
                kg,
                prepared,
                primary,
                config,
                seed,
            } => Box::new(ComparativeSession::new(kg, prepared, primary, config, seed)),
            EngineSpec::Monitor {
                kg,
                method,
                config,
                carry_weight,
                seed,
            } => Box::new(MonitorSession::new(kg, method, config, carry_weight, seed)),
        }
    }

    /// Reconstructs a suspended engine from a snapshot. The record tag
    /// is resolved through the [`registry`] and checked against this
    /// spec's kind first, so bytes from a different engine kind fail
    /// with a clean mismatch instead of a parse error deep inside the
    /// wrong decoder; the kind-specific resume then re-validates every
    /// fingerprint (design, KG shape, config, method, partition or
    /// roster).
    ///
    /// # Errors
    ///
    /// [`SessionError::SnapshotMismatch`] on a kind or fingerprint
    /// mismatch; [`SessionError::CorruptSnapshot`] on malformed bytes.
    pub fn resume(&self, bytes: &[u8]) -> Result<Box<dyn SessionEngine + 'k>, SessionError> {
        let stored = snapshot_engine_kind(bytes)?;
        if stored != self.kind() {
            return Err(SessionError::SnapshotMismatch(
                "snapshot record tag denotes a different engine kind",
            ));
        }
        Ok(match *self {
            EngineSpec::Plain {
                kg,
                prepared,
                method,
                config,
                ..
            } => Box::new(EvaluationSession::resume(
                kg,
                prepared,
                method,
                config,
                SmallRng::seed_from_u64(0),
                bytes,
            )?),
            EngineSpec::Stratified {
                kg,
                stratification,
                method,
                config,
                ..
            } => Box::new(StratifiedSession::resume(
                kg,
                stratification,
                method,
                config,
                bytes,
            )?),
            EngineSpec::Comparative {
                kg,
                prepared,
                primary,
                config,
                ..
            } => Box::new(ComparativeSession::resume(
                kg, prepared, primary, config, bytes,
            )?),
            EngineSpec::Monitor {
                kg,
                method,
                config,
                carry_weight,
                seed,
            } => Box::new(MonitorSession::resume(
                kg,
                method,
                config,
                carry_weight,
                seed,
                bytes,
            )?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::SamplingDesign;
    use kgae_graph::GroundTruth;

    fn drive_batches(
        kg: &(impl KnowledgeGraph + GroundTruth),
        engine: &mut dyn SessionEngine,
        batches: u64,
        batch: u64,
    ) {
        let mut labels = Vec::new();
        for _ in 0..batches {
            let Some(polled) = engine.next_request(batch).unwrap() else {
                return;
            };
            labels.clear();
            labels.extend(
                polled
                    .request
                    .triples
                    .iter()
                    .map(|st| kg.is_correct(st.triple)),
            );
            engine.submit(&labels).unwrap();
        }
    }

    #[test]
    fn registry_covers_every_tag_once() {
        let tags: Vec<u8> = registry().iter().map(|e| e.tag).collect();
        assert_eq!(tags, [0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(registry()[4].kind, EngineKind::Stratified);
        assert_eq!(registry()[5].kind, EngineKind::Comparative);
        assert_eq!(registry()[6].kind, EngineKind::Monitor);
    }

    #[test]
    fn every_engine_kind_round_trips_through_the_registry() {
        let kg = kgae_graph::datasets::nell();
        let (pred_kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let prepared = PreparedDesign::new(&kg, SamplingDesign::Twcs { m: 3 });
        let srs = PreparedDesign::new(&kg, SamplingDesign::Srs);
        let method = IntervalMethod::ahpd_default();
        // ε = 0.01: no engine can converge within the few driven
        // batches, so every one is still snapshottable.
        let cfg = EvalConfig {
            epsilon: 0.01,
            ..EvalConfig::default()
        };
        let strat_cfg = StratifiedConfig {
            epsilon: 0.01,
            ..StratifiedConfig::default()
        };

        let specs: Vec<(EngineSpec<'_, '_>, EngineKind)> = vec![
            (
                EngineSpec::Plain {
                    kg: &kg,
                    prepared: &prepared,
                    method: &method,
                    config: &cfg,
                    seed: 9,
                },
                EngineKind::Plain,
            ),
            (
                EngineSpec::Stratified {
                    kg: &pred_kg,
                    stratification: &strat,
                    method: &method,
                    config: &strat_cfg,
                    seed: 9,
                },
                EngineKind::Stratified,
            ),
            (
                EngineSpec::Comparative {
                    kg: &kg,
                    prepared: &srs,
                    primary: ComparePrimary::AHpd,
                    config: &cfg,
                    seed: 9,
                },
                EngineKind::Comparative,
            ),
            (
                EngineSpec::Monitor {
                    kg: &kg,
                    method: &method,
                    config: &cfg,
                    carry_weight: 50.0,
                    seed: 9,
                },
                EngineKind::Monitor,
            ),
        ];
        for (spec, kind) in &specs {
            assert_eq!(spec.kind(), *kind);
            let mut engine = spec.build();
            assert_eq!(engine.kind(), *kind);
            let driver_kg: &dyn GroundTruthKg = if *kind == EngineKind::Stratified {
                &pred_kg
            } else {
                &kg
            };
            drive_some(driver_kg, engine.as_mut(), 5);
            let snap = engine.snapshot().unwrap();
            // The registry identifies the bytes without an entry point.
            assert_eq!(snapshot_engine_kind(&snap).unwrap(), *kind);
            let header = peek_any_header(&snap).unwrap();
            assert_eq!(header.kind(), *kind);
            assert_eq!(header.num_triples(), kg.num_triples());
            // Registry-dispatched resume reproduces the bytes.
            let resumed = spec.resume(&snap).unwrap();
            assert_eq!(resumed.snapshot().unwrap(), snap);
        }

        // Cross-kind resumes fail on the tag, not deep in a decoder.
        let plain_snap = {
            let spec = &specs[0].0;
            let mut engine = spec.build();
            drive_some(&kg, engine.as_mut(), 3);
            engine.snapshot().unwrap()
        };
        assert!(matches!(
            specs[1].0.resume(&plain_snap),
            Err(SessionError::SnapshotMismatch(
                "snapshot record tag denotes a different engine kind"
            ))
        ));
        assert!(matches!(
            specs[2].0.resume(&plain_snap),
            Err(SessionError::SnapshotMismatch(_))
        ));
        assert!(matches!(
            specs[3].0.resume(&plain_snap),
            Err(SessionError::SnapshotMismatch(_))
        ));

        // Unknown tags are rejected by the registry.
        let mut bad = plain_snap;
        bad[10] = 200;
        assert!(matches!(
            snapshot_engine_kind(&bad),
            Err(SessionError::CorruptSnapshot("unknown snapshot record tag"))
        ));
        assert!(matches!(
            peek_any_header(&bad),
            Err(SessionError::CorruptSnapshot("unknown snapshot record tag"))
        ));
    }

    /// Object-safe oracle-labeling over any KG: the test drives
    /// `dyn SessionEngine` with `dyn`-compatible KG access too.
    trait GroundTruthKg {
        fn label(&self, triple: kgae_graph::TripleId) -> bool;
    }

    impl<K: KnowledgeGraph + GroundTruth> GroundTruthKg for K {
        fn label(&self, triple: kgae_graph::TripleId) -> bool {
            self.is_correct(triple)
        }
    }

    fn drive_some(kg: &dyn GroundTruthKg, engine: &mut dyn SessionEngine, batches: u64) {
        let mut labels = Vec::new();
        for _ in 0..batches {
            let Some(polled) = engine.next_request(4).unwrap() else {
                return;
            };
            labels.clear();
            labels.extend(polled.request.triples.iter().map(|st| kg.label(st.triple)));
            engine.submit(&labels).unwrap();
        }
    }

    #[test]
    fn headline_matches_the_full_status_for_every_engine_kind() {
        // The hot-path headline must be field-for-field identical to
        // the full view's primary half — cheaper, never different.
        let kg = kgae_graph::datasets::nell();
        let (pred_kg, strat) = kgae_graph::datasets::nell_by_predicate();
        let srs = PreparedDesign::new(&kg, SamplingDesign::Srs);
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig {
            epsilon: 0.01,
            ..EvalConfig::default()
        };
        let strat_cfg = StratifiedConfig {
            epsilon: 0.01,
            ..StratifiedConfig::default()
        };
        let specs: Vec<EngineSpec<'_, '_>> = vec![
            EngineSpec::Plain {
                kg: &kg,
                prepared: &srs,
                method: &method,
                config: &cfg,
                seed: 4,
            },
            EngineSpec::Stratified {
                kg: &pred_kg,
                stratification: &strat,
                method: &method,
                config: &strat_cfg,
                seed: 4,
            },
            EngineSpec::Comparative {
                kg: &kg,
                prepared: &srs,
                primary: ComparePrimary::AHpd,
                config: &cfg,
                seed: 4,
            },
            EngineSpec::Monitor {
                kg: &kg,
                method: &method,
                config: &cfg,
                carry_weight: 50.0,
                seed: 4,
            },
        ];
        for spec in &specs {
            let mut engine = spec.build();
            let driver_kg: &dyn GroundTruthKg = if spec.kind() == EngineKind::Stratified {
                &pred_kg
            } else {
                &kg
            };
            for _ in 0..4 {
                drive_some(driver_kg, engine.as_mut(), 3);
                assert_eq!(
                    engine.headline(),
                    engine.status().primary,
                    "{} headline diverged from the full status",
                    spec.kind().name()
                );
            }
        }
    }

    #[test]
    fn unified_status_view_carries_the_kind_specific_rows() {
        let kg = kgae_graph::datasets::nell();
        let srs = PreparedDesign::new(&kg, SamplingDesign::Srs);
        let method = IntervalMethod::Wilson;
        let cfg = EvalConfig::default();

        let spec = EngineSpec::Plain {
            kg: &kg,
            prepared: &srs,
            method: &method,
            config: &cfg,
            seed: 1,
        };
        let mut engine = spec.build();
        drive_batches(&kg, engine.as_mut(), 3, 8);
        let view = engine.status();
        assert!(view.strata.is_none() && view.methods.is_none() && view.monitor.is_none());
        assert!(view.primary.observations > 0);
        // Non-monitor engines refuse deltas with a typed error.
        assert!(matches!(
            engine.apply_deltas(&DeltaBatch::default()),
            Err(SessionError::DeltasUnsupported)
        ));

        let spec = EngineSpec::Monitor {
            kg: &kg,
            method: &method,
            config: &cfg,
            carry_weight: 50.0,
            seed: 1,
        };
        let mut engine = spec.build();
        drive_batches(&kg, engine.as_mut(), 3, 8);
        let view = engine.status();
        let report = view.monitor.expect("monitor engines carry monitor rows");
        assert_eq!(report.epoch, 0);
        assert!(view.strata.is_none() && view.methods.is_none());

        let spec = EngineSpec::Comparative {
            kg: &kg,
            prepared: &srs,
            primary: ComparePrimary::Wilson,
            config: &cfg,
            seed: 1,
        };
        let mut engine = spec.build();
        drive_batches(&kg, engine.as_mut(), 3, 8);
        let view = engine.status();
        assert_eq!(view.methods.as_ref().unwrap().len(), 4);
        assert!(view.strata.is_none());

        // Driving a stopped engine through the trait yields its outcome.
        let mut engine = EngineSpec::Plain {
            kg: &kg,
            prepared: &srs,
            method: &method,
            config: &cfg,
            seed: 2,
        }
        .build();
        let mut labels = Vec::new();
        while let Some(polled) = engine.next_request(16).unwrap() {
            labels.clear();
            labels.extend(
                polled
                    .request
                    .triples
                    .iter()
                    .map(|st| kg.is_correct(st.triple)),
            );
            engine.submit(&labels).unwrap();
        }
        let reason = engine.stop_reason().unwrap();
        let outcome = engine.into_outcome().unwrap();
        assert_eq!(outcome.reason, reason);
        assert!(outcome.result.converged);
    }
}
