//! Comparative multi-method evaluation: one annotation stream, every
//! interval method, live counterfactuals.
//!
//! The paper's central experiment is a head-to-head comparison of
//! interval estimators (aHPD vs. Wald/Wilson/ET) under shared sampling
//! designs — but running one campaign per method pays for the scarce
//! resource, human annotation, once *per method*. A
//! [`ComparativeSession`] feeds **one** unit stream to the full method
//! roster concurrently: the designated *primary* method owns the
//! sampling loop (its stopping rule ends the stream), while every
//! rival method maintains an independent solver over the same shared
//! sample and records the exact point at which *it* would have stopped
//! — the paper's comparison table, reproduced live at the label cost of
//! a single campaign.
//!
//! ```
//! use kgae_core::comparative::ComparativeSession;
//! use kgae_core::{EvalConfig, PreparedDesign, SamplingDesign};
//! use kgae_graph::GroundTruth;
//! use kgae_sampling::ComparePrimary;
//!
//! let kg = kgae_graph::datasets::nell();
//! let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
//! let mut session = ComparativeSession::new(
//!     &kg,
//!     &prepared,
//!     ComparePrimary::AHpd,
//!     &EvalConfig::default(),
//!     7,
//! );
//! while let Some(request) = session.next_request(16).unwrap() {
//!     let labels: Vec<bool> = request
//!         .triples
//!         .iter()
//!         .map(|st| kg.is_correct(st.triple))
//!         .collect();
//!     session.submit(&labels).unwrap();
//! }
//! let result = session.result().unwrap();
//! assert!(result.primary.converged);
//! assert_eq!(result.methods.len(), 4); // wald, wilson, et, ahpd
//! ```
//!
//! **Bit-identity.** The primary method runs inside an unmodified
//! [`EvaluationSession`], so its interval and stopping point are
//! bit-identical to a standalone session with the same seed, design and
//! config (property-tested). Rival trackers replay the *exact*
//! per-unit stopping sequence of the engine — same readiness gate, same
//! certified-lookahead schedule, same warm-started solvers — against
//! the shared [`SampleState`], whose trajectory is method-independent.
//! A rival that converges before the primary therefore reports the
//! same stopping observation count and interval a standalone campaign
//! of that method would have.
//!
//! **Batching.** The shared stream is unit-granular: rival stopping
//! rules are consulted after every stage-1 unit, exactly like a
//! standalone engine, so each poll serves one unit regardless of the
//! requested batch size (the request's `units` field says so). The
//! final results are batch-independent by construction.
//!
//! **Suspend/resume.** [`ComparativeSession::snapshot`] reuses the
//! `KGAESNAP` container with its own record tag (5): the shared-stream
//! design and KG fingerprints, the roster's method fingerprints, one
//! embedded primary-session snapshot and each rival's solver +
//! scheduling state. Resume validates everything and the re-snapshot is
//! byte-identical.

use crate::framework::{EvalConfig, EvalResult, PreparedDesign, SamplingDesign, StoppingPolicy};
use crate::method::{IntervalMethod, MethodState};
use crate::session::{
    design_from_tag, design_tag, method_fingerprint_matches, read_record_prefix, read_solver,
    write_method_fingerprint, write_solver, AnnotationRequest, EvaluationSession, SessionError,
    SessionStatus, StopReason, COMPARATIVE_SNAPSHOT_TAG,
};
use crate::snapshot::{Reader, Writer, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use crate::state::{DesignKind, SampleState};
use kgae_graph::KnowledgeGraph;
use kgae_intervals::{BetaPrior, Interval};
use kgae_sampling::ComparePrimary;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The fixed interval-method roster a comparative session races, in
/// [`ComparePrimary::ALL`] order: Wald, Wilson, ET (Jeffreys prior) and
/// aHPD — the paper's four-way comparison.
#[must_use]
pub fn compared_methods() -> [IntervalMethod; 4] {
    [
        IntervalMethod::Wald,
        IntervalMethod::Wilson,
        IntervalMethod::Et(BetaPrior::JEFFREYS),
        IntervalMethod::ahpd_default(),
    ]
}

/// One method's row in a comparative status or result: where this
/// method stands on the shared annotation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Canonical method name (`"wald"`, `"et[jeffreys]"`, ...).
    pub method: String,
    /// Whether this is the primary method (the one whose stopping rule
    /// ends the shared stream).
    pub primary: bool,
    /// Whether this method's own `MoE ≤ ε` rule fired within the shared
    /// stream.
    pub converged: bool,
    /// Where this method stopped. For a rival: the observation count at
    /// which its own `MoE ≤ ε` fired (its counterfactual stopping
    /// point), `None` while it has not. For the primary: the campaign's
    /// stopping point once it ends, *whatever* the reason — check
    /// `converged` to distinguish an MoE stop from a budget/stream one.
    pub stopped_at: Option<u64>,
    /// The method's point estimate: frozen at its stopping point once
    /// converged, the current shared estimate otherwise.
    pub estimate: Option<f64>,
    /// The method's `1-α` interval: frozen at its stopping point once
    /// converged, constructed from the current shared sample otherwise.
    pub interval: Option<Interval>,
}

/// A point-in-time view of a comparative campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparativeStatus {
    /// The primary engine's status — the campaign's stopping authority.
    pub primary: SessionStatus,
    /// One row per roster method, in roster order (the primary's row is
    /// flagged).
    pub methods: Vec<MethodReport>,
}

/// Final outcome of a comparative campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparativeResult {
    /// The primary method's result — bit-identical to a standalone
    /// session of that method with the same seed/design/config.
    pub primary: EvalResult,
    /// Final per-method rows, in roster order. Rivals that converged
    /// carry their counterfactual stopping point and frozen interval;
    /// the rest carry their final (non-converged) interval over the
    /// full shared sample.
    pub methods: Vec<MethodReport>,
}

/// A rival method's frozen stopping record.
#[derive(Debug, Clone, Copy)]
struct RivalStop {
    observations: u64,
    estimate: f64,
    interval: Interval,
}

/// A rival method's tracker: an independent solver plus the engine's
/// per-unit stopping schedule, replayed over the shared sample.
struct Rival {
    /// Index into the roster ([`ComparePrimary::ALL`] order).
    index: usize,
    method: IntervalMethod,
    solver: MethodState,
    /// Annotation units left before the next stopping check (certified
    /// unreachable in between) — the rival's own lookahead schedule.
    skip_left: u64,
    stopped: Option<RivalStop>,
}

/// One shared annotation stream raced by the full interval-method
/// roster. See the module docs for the protocol and guarantees.
pub struct ComparativeSession<'a> {
    primary: EvaluationSession<'a, SmallRng>,
    primary_index: usize,
    rivals: Vec<Rival>,
    kind: DesignKind,
    max_draw_size: u64,
    hansen_hurwitz: bool,
    outcome: Option<ComparativeResult>,
}

fn point_estimate(state: &SampleState, kind: DesignKind) -> f64 {
    match kind {
        DesignKind::Srs => state.mu_hat(),
        DesignKind::Cluster => state.effective().mu,
    }
}

impl<'a> ComparativeSession<'a> {
    /// Creates a comparative campaign over `kg`: the full roster of
    /// [`compared_methods`] racing one shared unit stream under
    /// `prepared`'s design, stopping when `primary` converges. The
    /// whole campaign is reproducible from
    /// `(kg, design, primary, cfg, seed)`.
    #[must_use]
    pub fn new(
        kg: &'a dyn KnowledgeGraph,
        prepared: &PreparedDesign,
        primary: ComparePrimary,
        cfg: &EvalConfig,
        seed: u64,
    ) -> Self {
        let roster = compared_methods();
        let primary_index = primary.roster_index();
        let session = EvaluationSession::from_prepared(
            kg,
            prepared,
            &roster[primary_index],
            cfg,
            SmallRng::seed_from_u64(seed),
        );
        let design = prepared.design();
        let kind = match design {
            SamplingDesign::Srs => DesignKind::Srs,
            _ => DesignKind::Cluster,
        };
        let rivals = roster
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != primary_index)
            .map(|(index, method)| Rival {
                index,
                solver: method.new_state(),
                method,
                skip_left: 0,
                stopped: None,
            })
            .collect();
        Self {
            primary: session,
            primary_index,
            rivals,
            kind,
            max_draw_size: prepared.max_draw_size(),
            hansen_hurwitz: design == SamplingDesign::Scs,
            outcome: None,
        }
    }

    /// Attaches a shared posterior-kernel cache to the primary session
    /// and every rival solver. The four-method roster re-solves the same
    /// `(τ, n)` kernels against each other, so the comparative engine is
    /// the cache's biggest single-campaign winner. Purely a cost lever:
    /// outputs stay bit-identical.
    pub fn set_kernel_cache(&mut self, kernel: &std::sync::Arc<kgae_intervals::KernelCache>) {
        self.primary.set_kernel_cache(std::sync::Arc::clone(kernel));
        for rival in &mut self.rivals {
            rival.solver.attach_kernel(std::sync::Arc::clone(kernel));
        }
    }

    /// The primary method (the campaign's stopping authority).
    #[must_use]
    pub fn primary_method(&self) -> &IntervalMethod {
        self.primary.method()
    }

    /// The primary's roster index.
    #[must_use]
    pub fn primary_index(&self) -> usize {
        self.primary_index
    }

    /// The shared stream's sampling design.
    #[must_use]
    pub fn design(&self) -> SamplingDesign {
        self.primary.design()
    }

    /// The shared evaluation configuration (α, ε, floors, budget).
    #[must_use]
    pub fn config(&self) -> &EvalConfig {
        self.primary.config()
    }

    /// Whether labels are owed on an outstanding request.
    #[must_use]
    pub fn has_pending_request(&self) -> bool {
        self.primary.has_pending_request()
    }

    /// Why the campaign stopped (the primary's stop reason), or `None`
    /// while it runs.
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.primary.stop_reason()
    }

    /// The final result once the campaign has stopped.
    #[must_use]
    pub fn result(&self) -> Option<&ComparativeResult> {
        self.outcome.as_ref()
    }

    /// Consumes the campaign, yielding the final result if it stopped.
    #[must_use]
    pub fn into_result(self) -> Option<ComparativeResult> {
        self.outcome
    }

    /// Polls for the next shared-stream annotation batch. The stream is
    /// unit-granular (rival stopping rules are consulted after every
    /// unit, like a standalone engine), so each poll serves exactly one
    /// stage-1 unit; `max_units` is accepted for protocol uniformity.
    /// `Ok(None)` once the primary has stopped.
    ///
    /// # Errors
    ///
    /// [`SessionError::RequestPending`] while labels are owed;
    /// stream-exhaustion/solver failures from the primary engine.
    pub fn next_request(
        &mut self,
        max_units: u64,
    ) -> Result<Option<AnnotationRequest>, SessionError> {
        let _ = max_units; // unit-granular by design; see the doc comment
        if self.outcome.is_some() {
            return Ok(None);
        }
        match self.primary.next_request_cancellable(1)? {
            Some(request) => Ok(Some(request)),
            None => {
                // The stream exhausted inside the poll: the primary
                // finished without a new unit, so the rival trackers
                // are already current.
                self.finalize();
                Ok(None)
            }
        }
    }

    /// Submits labels for the outstanding unit, advances the primary
    /// engine, then replays the unit through every live rival tracker
    /// (posterior updates + the exact per-unit stopping sequence).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`],
    /// [`SessionError::LabelCountMismatch`], or solver failures from
    /// any method's interval construction.
    pub fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        self.primary.submit(labels)?;
        self.observe_unit(labels)?;
        if self.primary.stop_reason().is_some() {
            self.finalize();
        }
        Ok(())
    }

    /// Withdraws the outstanding unit by rewinding the primary engine
    /// to its pre-draw state
    /// ([`EvaluationSession::cancel_request`]); the rival trackers only
    /// advance on submit, so they need no rollback. A re-poll after
    /// cancel regenerates the bit-identical unit.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoRequestPending`] without an outstanding
    /// request.
    pub fn cancel_request(&mut self) -> Result<(), SessionError> {
        self.primary.cancel_request()
    }

    /// Replays the just-processed unit through every live rival: SRS
    /// posterior updates per label, then the engine's stopping sequence
    /// (readiness gate → lookahead skip → exact one-step gate →
    /// interval construction → certified skip) against the shared
    /// sample state.
    fn observe_unit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        let state = self.primary.sample_state();
        let cfg = self.primary.config();
        let kind = self.kind;
        for rival in &mut self.rivals {
            if rival.stopped.is_some() {
                continue;
            }
            if kind == DesignKind::Srs {
                // An SRS unit is one fresh triple; cluster designs feed
                // their solvers from the effective sample instead.
                for &label in labels {
                    rival.method.record_observation(&mut rival.solver, label);
                }
            }
            let ready = state.n() >= cfg.min_triples
                && (kind == DesignKind::Srs || state.draws() >= cfg.min_draws);
            if !ready {
                continue;
            }
            if rival.skip_left > 0 {
                rival.skip_left -= 1;
                continue;
            }
            let lookahead = cfg.stopping == StoppingPolicy::CertifiedLookahead;
            let construct = !lookahead
                || rival
                    .method
                    .stop_possible_now(state, cfg.alpha, cfg.epsilon, &rival.solver);
            if construct {
                let interval =
                    rival
                        .method
                        .interval_stateful(state, cfg.alpha, &mut rival.solver)?;
                if interval.moe() <= cfg.epsilon {
                    rival.stopped = Some(RivalStop {
                        observations: state.n(),
                        estimate: point_estimate(state, kind),
                        interval,
                    });
                    continue;
                }
            }
            if lookahead {
                rival.skip_left = match kind {
                    DesignKind::Srs => rival.method.certified_skip_srs(
                        state,
                        cfg.alpha,
                        cfg.epsilon,
                        &rival.solver,
                    ),
                    DesignKind::Cluster => rival.method.certified_skip_cluster(
                        state,
                        cfg.alpha,
                        cfg.epsilon,
                        self.max_draw_size,
                        self.hansen_hurwitz,
                    ),
                };
            }
        }
        Ok(())
    }

    fn primary_row(&self) -> MethodReport {
        let status = self.primary.status();
        let (converged, stopped_at) = match self.primary.result() {
            Some(result) => (result.converged, Some(result.observations)),
            None => (false, None),
        };
        MethodReport {
            method: self.primary.method().canonical_name(),
            primary: true,
            converged,
            stopped_at,
            estimate: status.estimate,
            interval: status.interval,
        }
    }

    fn rival_row(&self, rival: &Rival) -> MethodReport {
        let method = rival.method.canonical_name();
        match &rival.stopped {
            Some(stop) => MethodReport {
                method,
                primary: false,
                converged: true,
                stopped_at: Some(stop.observations),
                estimate: Some(stop.estimate),
                interval: Some(stop.interval),
            },
            None => {
                let state = self.primary.sample_state();
                let has_data = state.n() > 0;
                // Scratch solver clone: observing never perturbs the
                // rival's warm-started trajectory.
                let interval = has_data
                    .then(|| {
                        let mut scratch = rival.solver.clone();
                        rival
                            .method
                            .interval_stateful(state, self.primary.config().alpha, &mut scratch)
                            .ok()
                    })
                    .flatten();
                MethodReport {
                    method,
                    primary: false,
                    converged: false,
                    stopped_at: None,
                    estimate: has_data.then(|| point_estimate(state, self.kind)),
                    interval,
                }
            }
        }
    }

    /// Per-method rows in roster order.
    fn method_rows(&self) -> Vec<MethodReport> {
        let mut rows = Vec::with_capacity(self.rivals.len() + 1);
        let mut rivals = self.rivals.iter().peekable();
        for index in 0..=self.rivals.len() {
            if index == self.primary_index {
                rows.push(self.primary_row());
            } else {
                let rival = rivals.next().expect("roster index has a rival");
                debug_assert_eq!(rival.index, index);
                rows.push(self.rival_row(rival));
            }
        }
        rows
    }

    /// The primary's status alone — **without** materializing the
    /// per-method rows (each non-converged rival row constructs an
    /// interval on a scratch solver). Identical to
    /// [`ComparativeSession::status`]'s `primary` field; session hosts
    /// use it on poll and submit hot paths.
    #[must_use]
    pub fn primary_status(&self) -> SessionStatus {
        self.primary.status()
    }

    /// Point-in-time view: the primary's status plus one row per roster
    /// method.
    #[must_use]
    pub fn status(&self) -> ComparativeStatus {
        if let Some(outcome) = &self.outcome {
            return ComparativeStatus {
                primary: self.primary.status(),
                methods: outcome.methods.clone(),
            };
        }
        ComparativeStatus {
            primary: self.primary.status(),
            methods: self.method_rows(),
        }
    }

    /// Freezes the final per-method rows once the primary has stopped.
    fn finalize(&mut self) {
        if self.outcome.is_some() {
            return;
        }
        let methods = self.method_rows();
        let primary = self
            .primary
            .result()
            .expect("finalize requires a stopped primary")
            .clone();
        self.outcome = Some(ComparativeResult { primary, methods });
    }

    // -----------------------------------------------------------------
    // Suspend / resume
    // -----------------------------------------------------------------

    /// Serializes the campaign into a canonical binary snapshot: the
    /// `KGAESNAP` container with the comparative record tag (5), the
    /// shared-stream design and KG fingerprints, the roster's method
    /// fingerprints, the embedded primary-session snapshot and every
    /// rival's solver + scheduling state.
    ///
    /// # Errors
    ///
    /// [`SessionError::SnapshotUnavailable`] while labels are owed or
    /// after the campaign stopped.
    pub fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        if self.has_pending_request() {
            return Err(SessionError::SnapshotUnavailable(
                "a request is outstanding; submit its labels first",
            ));
        }
        if self.outcome.is_some() {
            return Err(SessionError::SnapshotUnavailable(
                "campaign already stopped; read its result instead",
            ));
        }
        let mut w = Writer::new();
        w.bytes(SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u8(COMPARATIVE_SNAPSHOT_TAG);
        let (tag, m) = design_tag(self.primary.design());
        w.u8(tag);
        w.u64(m);
        let kg = self.primary.kg();
        w.u64(kg.num_triples());
        w.u32(kg.num_clusters());
        w.u8(self.primary_index as u8);
        // Roster fingerprints (primary's config/method fingerprints are
        // re-validated by the embedded session snapshot).
        let roster = compared_methods();
        w.u8(roster.len() as u8);
        for method in &roster {
            write_method_fingerprint(&mut w, method);
        }
        // Embedded primary-session snapshot (length-prefixed).
        let child = self.primary.snapshot()?;
        w.u64(child.len() as u64);
        w.bytes(&child);
        // Rival trackers, roster order.
        for rival in &self.rivals {
            write_solver(&mut w, &rival.solver);
            w.u64(rival.skip_left);
            match &rival.stopped {
                Some(stop) => {
                    w.bool(true);
                    w.u64(stop.observations);
                    w.f64(stop.estimate);
                    w.f64(stop.interval.lower());
                    w.f64(stop.interval.upper());
                }
                None => w.bool(false),
            }
        }
        Ok(w.into_bytes())
    }

    /// Reconstructs a suspended campaign from a snapshot, validating
    /// the record tag, shared-stream design, KG shape, primary
    /// designation and full roster fingerprint before the embedded
    /// primary session resumes (which re-validates config and method).
    /// The resumed campaign continues the exact sampling and per-method
    /// stopping trajectory — and re-snapshotting yields identical
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`SessionError::CorruptSnapshot`] on malformed bytes;
    /// [`SessionError::SnapshotMismatch`] when the snapshot belongs to
    /// a different design, KG, primary, roster, config or method.
    pub fn resume(
        kg: &'a dyn KnowledgeGraph,
        prepared: &PreparedDesign,
        primary: ComparePrimary,
        cfg: &EvalConfig,
        bytes: &[u8],
    ) -> Result<Self, SessionError> {
        let corrupt = SessionError::CorruptSnapshot;
        let mut r = Reader::new(bytes);
        if read_record_prefix(&mut r)? != COMPARATIVE_SNAPSHOT_TAG {
            return Err(SessionError::SnapshotMismatch(
                "not a comparative session snapshot",
            ));
        }
        let tag = r.u8().map_err(corrupt)?;
        let m = r.u64().map_err(corrupt)?;
        let design =
            design_from_tag(tag, m).ok_or(SessionError::CorruptSnapshot("unknown design tag"))?;
        if design != prepared.design() {
            return Err(SessionError::SnapshotMismatch("sampling design differs"));
        }
        if r.u64().map_err(corrupt)? != kg.num_triples()
            || r.u32().map_err(corrupt)? != kg.num_clusters()
        {
            return Err(SessionError::SnapshotMismatch("KG shape differs"));
        }
        let primary_index = primary.roster_index();
        if r.u8().map_err(corrupt)? as usize != primary_index {
            return Err(SessionError::SnapshotMismatch("primary method differs"));
        }
        let roster = compared_methods();
        if r.u8().map_err(corrupt)? as usize != roster.len() {
            return Err(SessionError::SnapshotMismatch("method roster differs"));
        }
        for method in &roster {
            if !method_fingerprint_matches(&mut r, method).map_err(corrupt)? {
                return Err(SessionError::SnapshotMismatch("method roster differs"));
            }
        }
        let child_len = r.len_capped(bytes.len() as u64).map_err(corrupt)?;
        let child = r.bytes(child_len).map_err(corrupt)?;
        let session = EvaluationSession::resume(
            kg,
            prepared,
            &roster[primary_index],
            cfg,
            SmallRng::seed_from_u64(0),
            child,
        )?;
        let mut rivals = Vec::with_capacity(roster.len() - 1);
        for (index, method) in roster.into_iter().enumerate() {
            if index == primary_index {
                continue;
            }
            let priors = method.priors().map_or(0, <[BetaPrior]>::len);
            let solver = read_solver(&mut r, priors).map_err(corrupt)?;
            let skip_left = r.u64().map_err(corrupt)?;
            let stopped = if r.bool().map_err(corrupt)? {
                let observations = r.u64().map_err(corrupt)?;
                let estimate = r.f64().map_err(corrupt)?;
                let lo = r.f64().map_err(corrupt)?;
                let hi = r.f64().map_err(corrupt)?;
                if lo.is_nan() || hi.is_nan() || lo > hi {
                    return Err(SessionError::CorruptSnapshot(
                        "interval bounds out of order",
                    ));
                }
                Some(RivalStop {
                    observations,
                    estimate,
                    interval: Interval::new(lo, hi),
                })
            } else {
                None
            };
            rivals.push(Rival {
                index,
                method,
                solver,
                skip_left,
                stopped,
            });
        }
        r.finish().map_err(corrupt)?;
        let kind = match design {
            SamplingDesign::Srs => DesignKind::Srs,
            _ => DesignKind::Cluster,
        };
        Ok(Self {
            primary: session,
            primary_index,
            rivals,
            kind,
            max_draw_size: prepared.max_draw_size(),
            hansen_hurwitz: design == SamplingDesign::Scs,
            outcome: None,
        })
    }
}

/// Identity prefix of a comparative session snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparativeSnapshotHeader {
    /// The shared stream's sampling design.
    pub design: SamplingDesign,
    /// `num_triples` of the KG under evaluation.
    pub num_triples: u64,
    /// `num_clusters` of the KG under evaluation.
    pub num_clusters: u32,
    /// Roster index of the primary method.
    pub primary_index: u8,
    /// Number of methods in the roster.
    pub num_methods: u8,
}

/// Parses the identity prefix of a comparative snapshot without
/// reconstructing the campaign.
///
/// # Errors
///
/// [`SessionError::CorruptSnapshot`] on malformed bytes;
/// [`SessionError::SnapshotMismatch`] when the bytes carry a different
/// record tag or an unsupported version.
pub fn peek_comparative_header(bytes: &[u8]) -> Result<ComparativeSnapshotHeader, SessionError> {
    let corrupt = SessionError::CorruptSnapshot;
    let mut r = Reader::new(bytes);
    if read_record_prefix(&mut r)? != COMPARATIVE_SNAPSHOT_TAG {
        return Err(SessionError::SnapshotMismatch(
            "not a comparative session snapshot",
        ));
    }
    let tag = r.u8().map_err(corrupt)?;
    let m = r.u64().map_err(corrupt)?;
    let design =
        design_from_tag(tag, m).ok_or(SessionError::CorruptSnapshot("unknown design tag"))?;
    Ok(ComparativeSnapshotHeader {
        design,
        num_triples: r.u64().map_err(corrupt)?,
        num_clusters: r.u32().map_err(corrupt)?,
        primary_index: r.u8().map_err(corrupt)?,
        num_methods: r.u8().map_err(corrupt)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgae_graph::GroundTruth;

    fn drive(
        kg: &(impl KnowledgeGraph + GroundTruth),
        session: &mut ComparativeSession<'_>,
    ) -> ComparativeResult {
        let mut labels = Vec::new();
        while let Some(request) = session.next_request(8).unwrap() {
            labels.clear();
            labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
            session.submit(&labels).unwrap();
        }
        session.result().unwrap().clone()
    }

    #[test]
    fn comparative_campaign_reports_every_method() {
        let kg = kgae_graph::datasets::nell();
        let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
        let mut session = ComparativeSession::new(
            &kg,
            &prepared,
            ComparePrimary::AHpd,
            &EvalConfig::default(),
            3,
        );
        let result = drive(&kg, &mut session);
        assert_eq!(session.stop_reason(), Some(StopReason::MoeSatisfied));
        assert!(result.primary.converged);
        assert_eq!(result.methods.len(), 4);
        // Roster order and the primary flag.
        let names: Vec<&str> = result.methods.iter().map(|m| m.method.as_str()).collect();
        assert_eq!(names, ["wald", "wilson", "et[jeffreys]", "ahpd"]);
        assert!(result.methods[3].primary);
        assert!(result.methods[..3].iter().all(|m| !m.primary));
        // The primary row mirrors the primary result.
        assert_eq!(
            result.methods[3].stopped_at,
            Some(result.primary.observations)
        );
        assert!(result.methods[3].converged);
        // Every row carries an interval over the shared sample.
        for row in &result.methods {
            assert!(
                row.interval.is_some(),
                "{} row lost its interval",
                row.method
            );
            assert!(row.estimate.is_some());
        }
    }

    #[test]
    fn protocol_errors_mirror_the_single_session() {
        let kg = kgae_graph::datasets::nell();
        let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
        let mut session = ComparativeSession::new(
            &kg,
            &prepared,
            ComparePrimary::Wilson,
            &EvalConfig::default(),
            0,
        );
        assert!(matches!(
            session.submit(&[true]),
            Err(SessionError::NoRequestPending)
        ));
        let request = session.next_request(4).unwrap().unwrap();
        assert_eq!(request.units, 1, "comparative streams are unit-granular");
        assert!(matches!(
            session.next_request(1),
            Err(SessionError::RequestPending)
        ));
        assert!(matches!(
            session.snapshot(),
            Err(SessionError::SnapshotUnavailable(_))
        ));
        assert!(session.has_pending_request());
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        session.submit(&labels).unwrap();
        assert!(!session.has_pending_request());
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical_and_trajectory_preserving() {
        let kg = kgae_graph::datasets::factbench();
        let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
        let cfg = EvalConfig::default();

        let run = |interrupt_every: Option<u64>| {
            let mut session =
                ComparativeSession::new(&kg, &prepared, ComparePrimary::AHpd, &cfg, 5);
            let mut units = 0u64;
            let mut labels = Vec::new();
            while let Some(request) = session.next_request(1).unwrap() {
                labels.clear();
                labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
                session.submit(&labels).unwrap();
                units += 1;
                if session.stop_reason().is_none() {
                    if let Some(every) = interrupt_every {
                        if units.is_multiple_of(every) {
                            let bytes = session.snapshot().unwrap();
                            let resumed = ComparativeSession::resume(
                                &kg,
                                &prepared,
                                ComparePrimary::AHpd,
                                &cfg,
                                &bytes,
                            )
                            .unwrap();
                            let bytes2 = resumed.snapshot().unwrap();
                            assert_eq!(bytes, bytes2, "re-snapshot diverged at unit {units}");
                            session = resumed;
                        }
                    }
                }
            }
            session.into_result().unwrap()
        };

        let straight = run(None);
        let interrupted = run(Some(37));
        assert_eq!(
            straight, interrupted,
            "suspend/resume changed the comparative trajectory"
        );
    }

    #[test]
    fn resume_rejects_wrong_setup() {
        let kg = kgae_graph::datasets::nell();
        let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
        let cfg = EvalConfig::default();
        let mut session = ComparativeSession::new(&kg, &prepared, ComparePrimary::AHpd, &cfg, 11);
        let mut labels = Vec::new();
        for _ in 0..12 {
            let request = session.next_request(1).unwrap().unwrap();
            labels.clear();
            labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
            session.submit(&labels).unwrap();
        }
        let bytes = session.snapshot().unwrap();

        // Header peek reports identity without a resume.
        let header = peek_comparative_header(&bytes).unwrap();
        assert_eq!(header.design, SamplingDesign::Srs);
        assert_eq!(header.num_triples, kg.num_triples());
        assert_eq!(header.primary_index, 3);
        assert_eq!(header.num_methods, 4);

        // Wrong primary.
        assert!(matches!(
            ComparativeSession::resume(&kg, &prepared, ComparePrimary::Wald, &cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong design.
        let twcs = PreparedDesign::new(&kg, SamplingDesign::Twcs { m: 3 });
        assert!(matches!(
            ComparativeSession::resume(&kg, &twcs, ComparePrimary::AHpd, &cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong config (validated by the embedded primary snapshot).
        let wrong_cfg = cfg.clone().with_alpha(0.01);
        assert!(matches!(
            ComparativeSession::resume(&kg, &prepared, ComparePrimary::AHpd, &wrong_cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Wrong KG.
        let yago = kgae_graph::datasets::yago();
        let yago_prepared = PreparedDesign::new(&yago, SamplingDesign::Srs);
        assert!(matches!(
            ComparativeSession::resume(&yago, &yago_prepared, ComparePrimary::AHpd, &cfg, &bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        // Truncation.
        assert!(matches!(
            ComparativeSession::resume(
                &kg,
                &prepared,
                ComparePrimary::AHpd,
                &cfg,
                &bytes[..bytes.len() - 2]
            ),
            Err(SessionError::CorruptSnapshot(_))
        ));
        // Kind-specific peeks refuse comparative bytes; the registry
        // identifies them.
        assert!(matches!(
            crate::stratified::peek_stratified_header_impl(&bytes),
            Err(SessionError::SnapshotMismatch(_))
        ));
        assert!(matches!(
            crate::engine::peek_any_header(&bytes),
            Ok(crate::engine::AnyHeader::Comparative(_))
        ));
    }
}
