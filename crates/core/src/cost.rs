//! The annotation cost model (paper Eq. 12).
//!
//! `cost(G_S) = |E_S| · c1 + |T_S| · c2` — entity identification is paid
//! once per *distinct* entity (cluster), fact verification once per
//! distinct triple. With the paper's constants `c1 = 45 s`, `c2 = 25 s`,
//! this is what makes cluster sampling cheaper per annotation than SRS:
//! TWCS amortizes the 45-second entity identification across up to `m`
//! triples.

use kgae_graph::{ClusterId, TripleId};
use std::collections::HashSet;

/// Cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds to identify one entity (`c1`).
    pub entity_seconds: f64,
    /// Seconds to verify one fact (`c2`).
    pub triple_seconds: f64,
    /// Judgments collected per recorded label (majority-vote panels
    /// multiply the verification effort; entity identification is shared
    /// knowledge and stays per-entity).
    pub judgments_per_label: u64,
}

impl CostModel {
    /// The paper's constants: `c1 = 45 s`, `c2 = 25 s`, one annotator.
    pub const PAPER: CostModel = CostModel {
        entity_seconds: 45.0,
        triple_seconds: 25.0,
        judgments_per_label: 1,
    };

    /// Same constants with a `k`-annotator panel per fact.
    #[must_use]
    pub fn with_panel(panel: u64) -> CostModel {
        CostModel {
            judgments_per_label: panel.max(1),
            ..CostModel::PAPER
        }
    }
}

/// Incremental tracker of distinct entities/triples and their cost.
#[derive(Debug, Clone)]
pub struct CostTracker {
    model: CostModel,
    entities: HashSet<ClusterId>,
    triples: HashSet<TripleId>,
}

impl CostTracker {
    /// Empty tracker under the given model.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self {
            model,
            entities: HashSet::new(),
            triples: HashSet::new(),
        }
    }

    /// Records the annotation of `triple` belonging to `cluster`.
    /// Returns `true` if the triple was new (re-draws of the same triple
    /// under with-replacement cluster sampling cost nothing extra).
    pub fn record(&mut self, triple: TripleId, cluster: ClusterId) -> bool {
        self.entities.insert(cluster);
        self.triples.insert(triple)
    }

    /// Distinct entities identified so far (`|E_S|`).
    #[must_use]
    pub fn entities(&self) -> u64 {
        self.entities.len() as u64
    }

    /// Distinct triples verified so far (`|T_S|`).
    #[must_use]
    pub fn triples(&self) -> u64 {
        self.triples.len() as u64
    }

    /// The cost constants in force.
    #[must_use]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Distinct entity ids, sorted — canonical snapshot encoding of the
    /// set despite hash iteration order.
    pub(crate) fn entity_ids_sorted(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.entities.iter().map(|c| c.index()).collect();
        ids.sort_unstable();
        ids
    }

    /// Distinct triple ids, sorted (canonical snapshot encoding).
    pub(crate) fn triple_ids_sorted(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.triples.iter().map(|t| t.index()).collect();
        ids.sort_unstable();
        ids
    }

    /// Rebuilds a tracker from snapshot parts.
    pub(crate) fn from_saved(model: CostModel, entities: &[u32], triples: &[u64]) -> Self {
        Self {
            model,
            entities: entities.iter().map(|&c| ClusterId(c)).collect(),
            triples: triples.iter().map(|&t| TripleId(t)).collect(),
        }
    }

    /// Total cost in seconds (Eq. 12).
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.entities() as f64 * self.model.entity_seconds
            + self.triples() as f64
                * self.model.triple_seconds
                * self.model.judgments_per_label as f64
    }

    /// Total cost in hours (the unit of Tables 3–4 and Figure 4).
    #[must_use]
    pub fn hours(&self) -> f64 {
        self.seconds() / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(CostModel::PAPER.entity_seconds, 45.0);
        assert_eq!(CostModel::PAPER.triple_seconds, 25.0);
    }

    #[test]
    fn eq_12_accounting() {
        let mut t = CostTracker::new(CostModel::PAPER);
        // 3 triples across 2 entities: cost = 2·45 + 3·25 = 165 s.
        assert!(t.record(TripleId(0), ClusterId(0)));
        assert!(t.record(TripleId(1), ClusterId(0)));
        assert!(t.record(TripleId(5), ClusterId(3)));
        assert_eq!(t.entities(), 2);
        assert_eq!(t.triples(), 3);
        assert!((t.seconds() - 165.0).abs() < 1e-12);
        assert!((t.hours() - 165.0 / 3600.0).abs() < 1e-15);
    }

    #[test]
    fn redraws_are_free() {
        let mut t = CostTracker::new(CostModel::PAPER);
        assert!(t.record(TripleId(0), ClusterId(0)));
        assert!(!t.record(TripleId(0), ClusterId(0)));
        assert_eq!(t.triples(), 1);
        assert!((t.seconds() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn entity_amortization_favors_clustering() {
        // 30 triples from 30 entities vs 30 triples from 10 entities.
        let mut srs_like = CostTracker::new(CostModel::PAPER);
        for i in 0..30u64 {
            srs_like.record(TripleId(i), ClusterId(i as u32));
        }
        let mut twcs_like = CostTracker::new(CostModel::PAPER);
        for i in 0..30u64 {
            twcs_like.record(TripleId(i), ClusterId((i / 3) as u32));
        }
        assert!(twcs_like.seconds() < srs_like.seconds());
        assert!((srs_like.seconds() - (30.0 * 45.0 + 30.0 * 25.0)).abs() < 1e-9);
        assert!((twcs_like.seconds() - (10.0 * 45.0 + 30.0 * 25.0)).abs() < 1e-9);
    }

    #[test]
    fn panel_multiplies_verification_only() {
        let mut t = CostTracker::new(CostModel::with_panel(3));
        t.record(TripleId(0), ClusterId(0));
        t.record(TripleId(1), ClusterId(0));
        // 1 entity · 45 + 2 triples · 25 · 3 = 195.
        assert!((t.seconds() - 195.0).abs() < 1e-12);
    }
}
