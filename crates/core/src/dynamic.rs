//! Evolving-KG evaluation — the paper's future-work direction (§8).
//!
//! When a KG receives content updates, the previous evaluation's
//! posterior can seed the next evaluation as an informative prior:
//! aHPD accepts it alongside the uninformative priors, so reliable prior
//! knowledge accelerates convergence (Example 2's 63-vs-222 triples)
//! while the uninformative candidates keep a safety net when the update
//! changed the accuracy drastically — the "massive deceptive update"
//! limitation the paper warns about.
//!
//! This module has been absorbed by [`crate::monitor`]: a
//! [`MonitorSession`](crate::monitor::MonitorSession) tracks the KG
//! *through* its edits (retiring removed labels, charging drift,
//! re-opening annotation only when the pruned certificate actually
//! degrades) instead of unconditionally re-auditing from a hand-carried
//! posterior. [`posterior_as_prior`] remains the live carryover kernel —
//! the monitor calls it when it re-opens a campaign — while the one-shot
//! [`evaluate_with_carryover`] driver is deprecated in favor of the
//! monitor.

use crate::annotator::Annotator;
use crate::framework::{evaluate, EvalConfig, EvalResult, SamplingDesign};
use crate::method::IntervalMethod;
use kgae_graph::{GroundTruth, KnowledgeGraph};
use kgae_intervals::{BetaPrior, IntervalError};
use kgae_stats::dist::Beta;
use rand::Rng;

/// Rescales a posterior into a prior with a chosen evidence weight.
///
/// The posterior `Beta(A, B)` carries `A + B` pseudo-observations; the
/// carried-over prior keeps the posterior *mean* but caps the evidence at
/// `equivalent_n` pseudo-observations, so stale knowledge cannot drown
/// out fresh annotations. `equivalent_n = A + B` reproduces the raw
/// posterior.
pub fn posterior_as_prior(posterior: &Beta, equivalent_n: f64) -> Result<BetaPrior, IntervalError> {
    if !(equivalent_n.is_finite() && equivalent_n > 0.0) {
        return Err(IntervalError::Stats(
            kgae_stats::StatsError::InvalidParameter {
                name: "equivalent_n",
                value: equivalent_n,
                constraint: "must be finite and > 0",
            },
        ));
    }
    let mean = posterior.mean();
    Ok(BetaPrior::informative(
        (mean * equivalent_n).max(1e-6),
        ((1.0 - mean) * equivalent_n).max(1e-6),
    )?)
}

/// Evaluates an updated KG with aHPD seeded by the previous posterior
/// (weighted to `carry_weight` pseudo-observations) *plus* the standard
/// uninformative priors as a hedge.
///
/// Deprecated: this re-audits unconditionally on every update. A
/// [`MonitorSession`](crate::monitor::MonitorSession) applies the same
/// carryover (same kernel, same hedge priors) but first retires removed
/// labels and re-appraises the surviving evidence, re-opening annotation
/// only when the certificate no longer holds — the common small-drift
/// case then costs zero annotations.
#[deprecated(
    since = "0.1.0",
    note = "use kgae_core::monitor::MonitorSession, which carries the posterior \
            across deltas and only re-opens annotation when the pruned \
            certificate degrades"
)]
pub fn evaluate_with_carryover<K, A, R>(
    kg_updated: &K,
    annotator: &A,
    design: SamplingDesign,
    previous_posterior: &Beta,
    carry_weight: f64,
    cfg: &EvalConfig,
    rng: &mut R,
) -> Result<EvalResult, IntervalError>
where
    K: KnowledgeGraph + GroundTruth,
    A: Annotator,
    R: Rng,
{
    let carry = posterior_as_prior(previous_posterior, carry_weight)?;
    let mut priors = vec![carry];
    priors.extend(BetaPrior::UNINFORMATIVE);
    evaluate(
        kg_updated,
        annotator,
        design,
        &IntervalMethod::AHpd(priors),
        cfg,
        rng,
    )
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated driver keeps its behavioral pins until removal
mod tests {
    use super::*;
    use crate::annotator::OracleAnnotator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn posterior_as_prior_preserves_mean_and_caps_weight() {
        let post = Beta::new(180.0, 20.0).unwrap(); // mean 0.9, weight 200
        let prior = posterior_as_prior(&post, 50.0).unwrap();
        assert!((prior.a / (prior.a + prior.b) - 0.9).abs() < 1e-12);
        assert!((prior.a + prior.b - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_weight() {
        let post = Beta::new(2.0, 2.0).unwrap();
        assert!(posterior_as_prior(&post, 0.0).is_err());
        assert!(posterior_as_prior(&post, f64::NAN).is_err());
    }

    #[test]
    fn carryover_accelerates_matching_updates() {
        // The update batch has the same accuracy as the audited KG: the
        // carried prior should cut annotations substantially (Example 2's
        // mechanism).
        let updated = kgae_graph::datasets::dbpedia(); // μ = 0.85
        let previous = Beta::new(85.0, 15.0).unwrap(); // accurate knowledge
        let cfg = EvalConfig::default();

        let mut with_carry = Vec::new();
        let mut without = Vec::new();
        for seed in 0..15 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let r = evaluate_with_carryover(
                &updated,
                &OracleAnnotator,
                SamplingDesign::Twcs { m: 3 },
                &previous,
                100.0,
                &cfg,
                &mut rng,
            )
            .unwrap();
            with_carry.push(r.annotated_triples as f64);

            let mut rng = SmallRng::seed_from_u64(seed);
            let r = evaluate(
                &updated,
                &OracleAnnotator,
                SamplingDesign::Twcs { m: 3 },
                &IntervalMethod::ahpd_default(),
                &cfg,
                &mut rng,
            )
            .unwrap();
            without.push(r.annotated_triples as f64);
        }
        let mc = kgae_stats::descriptive::mean(&with_carry);
        let mw = kgae_stats::descriptive::mean(&without);
        assert!(mc < mw, "carryover should reduce annotations: {mc} vs {mw}");
    }

    #[test]
    fn deceptive_carryover_still_converges_to_the_truth() {
        // The paper's warned failure mode: prior knowledge says 0.9 but
        // the updated KG is only 0.54-accurate. The uninformative hedge
        // priors keep the estimate honest; convergence costs more.
        let updated = kgae_graph::datasets::factbench(); // μ = 0.54
        let wrong_knowledge = Beta::new(90.0, 10.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let r = evaluate_with_carryover(
            &updated,
            &OracleAnnotator,
            SamplingDesign::Srs,
            &wrong_knowledge,
            50.0,
            &EvalConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(r.converged);
        // The final estimate tracks the data, not the deceptive prior.
        assert!(
            (r.mu_hat - 0.54).abs() < 0.08,
            "μ̂ = {} should be near 0.54",
            r.mu_hat
        );
    }
}
