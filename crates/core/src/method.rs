//! Interval-method dispatch: one enum covering every `1-α` interval the
//! experiments compare, applied uniformly to SRS and cluster samples.

use crate::ahpd::ahpd_select_warm;
use crate::state::{DesignKind, SampleState};
use kgae_intervals::{
    et_interval, hpd_interval_warm, hpd_width_lower_bound, wald_from_variance, wilson, BetaPrior,
    Interval, IntervalError,
};

/// Per-run solver state: the previous step's HPD endpoints per prior,
/// used to warm-start SLSQP (the optimum is unique, so warm starting
/// changes cost, not results).
#[derive(Debug, Clone, Default)]
pub struct MethodState {
    pub(crate) warm: Vec<Option<(f64, f64)>>,
}

/// An interval-estimation method under evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum IntervalMethod {
    /// Wald CI (Eq. 5) — efficient but unreliable baseline.
    Wald,
    /// Wilson CI (Eq. 7) with Kish effective-sample-size adjustment under
    /// cluster designs — the frequentist state of the art.
    Wilson,
    /// Equal-tailed credible interval under one prior (Eq. 9).
    Et(BetaPrior),
    /// HPD credible interval under one prior (§4.3).
    Hpd(BetaPrior),
    /// The adaptive HPD algorithm over a set of priors (Algorithm 1).
    AHpd(Vec<BetaPrior>),
}

impl IntervalMethod {
    /// aHPD with the paper's default prior set {Kerman, Jeffreys,
    /// Uniform}.
    #[must_use]
    pub fn ahpd_default() -> IntervalMethod {
        IntervalMethod::AHpd(BetaPrior::UNINFORMATIVE.to_vec())
    }

    /// Display name used in tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            IntervalMethod::Wald => "Wald".into(),
            IntervalMethod::Wilson => "Wilson".into(),
            IntervalMethod::Et(p) => format!("ET[{}]", p.name),
            IntervalMethod::Hpd(p) => format!("HPD[{}]", p.name),
            IntervalMethod::AHpd(_) => "aHPD".into(),
        }
    }

    /// Fresh solver state for a run of [`Self::interval_stateful`] calls.
    #[must_use]
    pub fn new_state(&self) -> MethodState {
        let slots = match self {
            IntervalMethod::AHpd(priors) => priors.len(),
            IntervalMethod::Hpd(_) => 1,
            _ => 0,
        };
        MethodState {
            warm: vec![None; slots],
        }
    }

    /// Builds the `1-α` interval from the current sample.
    ///
    /// Degenerate cluster variance (a single stage-1 draw) yields the
    /// maximally uninformative sentinel interval `[μ̂-0.5, μ̂+0.5]`
    /// (MoE 0.5), so the stopping rule simply keeps sampling.
    pub fn interval(
        &self,
        state: &SampleState,
        alpha: f64,
    ) -> Result<Interval, IntervalError> {
        self.interval_stateful(state, alpha, &mut self.new_state())
    }

    /// A certified lower bound on the achievable MoE at the current
    /// sample, when one is cheap to compute (`(1-α)/(2·f(mode))` for the
    /// HPD-family methods). The framework skips full interval
    /// construction while the bound exceeds ε.
    #[must_use]
    pub fn moe_lower_bound(&self, state: &SampleState, alpha: f64) -> Option<f64> {
        let priors: &[BetaPrior] = match self {
            IntervalMethod::Hpd(p) | IntervalMethod::Et(p) => std::slice::from_ref(p),
            IntervalMethod::AHpd(ps) => ps,
            _ => return None,
        };
        let eff = state.effective();
        let mut best: f64 = f64::INFINITY;
        for prior in priors {
            let post = prior.posterior_effective(eff.mu, eff.n_eff).ok()?;
            // ET is at least as wide as HPD, so the HPD bound is valid
            // for both method families.
            best = best.min(hpd_width_lower_bound(&post, alpha)? / 2.0);
        }
        best.is_finite().then_some(best)
    }

    /// [`Self::interval`] with warm-start state carried across calls.
    pub fn interval_stateful(
        &self,
        state: &SampleState,
        alpha: f64,
        cache: &mut MethodState,
    ) -> Result<Interval, IntervalError> {
        match self {
            IntervalMethod::Wald => {
                let est = state.estimate();
                if !est.variance.is_finite() {
                    let mu = est.mu.clamp(0.0, 1.0);
                    return Ok(Interval::new(mu - 0.5, mu + 0.5));
                }
                Ok(wald_from_variance(est.mu.clamp(0.0, 1.0), est.variance, alpha)?)
            }
            IntervalMethod::Wilson => {
                let eff = state.effective();
                if state.kind() == DesignKind::Cluster && state.draws() < 2 {
                    return Ok(Interval::new(eff.mu - 0.5, eff.mu + 0.5));
                }
                Ok(wilson(eff.mu, eff.n_eff, alpha)?)
            }
            IntervalMethod::Et(prior) => {
                let eff = state.effective();
                let post = prior.posterior_effective(eff.mu, eff.n_eff)?;
                et_interval(&post, alpha)
            }
            IntervalMethod::Hpd(prior) => {
                let eff = state.effective();
                let post = prior.posterior_effective(eff.mu, eff.n_eff)?;
                let warm = cache.warm.first().copied().flatten();
                match hpd_interval_warm(&post, alpha, warm) {
                    Ok(i) => {
                        if let Some(slot) = cache.warm.first_mut() {
                            *slot = Some((i.lower(), i.upper()));
                        }
                        Ok(i)
                    }
                    // No single HPD interval exists (U-shaped posterior
                    // from near-zero effective evidence): report the
                    // maximally uninformative sentinel so the loop keeps
                    // sampling instead of aborting.
                    Err(IntervalError::UShapedPosterior { .. }) => Ok(Interval::new(0.0, 1.0)),
                    Err(e) => Err(e),
                }
            }
            IntervalMethod::AHpd(priors) => {
                Ok(ahpd_select_warm(state, alpha, priors, &mut cache.warm)?.interval)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srs_state(tau: u64, n: u64) -> SampleState {
        let mut s = SampleState::new_srs();
        for i in 0..n {
            s.record_triple(i < tau);
        }
        s
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(IntervalMethod::Wald.name(), "Wald");
        assert_eq!(IntervalMethod::Wilson.name(), "Wilson");
        assert_eq!(IntervalMethod::Et(BetaPrior::KERMAN).name(), "ET[Kerman]");
        assert_eq!(
            IntervalMethod::Hpd(BetaPrior::UNIFORM).name(),
            "HPD[Uniform]"
        );
        assert_eq!(IntervalMethod::ahpd_default().name(), "aHPD");
    }

    #[test]
    fn all_methods_produce_covering_intervals_on_srs() {
        let state = srs_state(27, 30);
        let methods = [
            IntervalMethod::Wald,
            IntervalMethod::Wilson,
            IntervalMethod::Et(BetaPrior::JEFFREYS),
            IntervalMethod::Hpd(BetaPrior::KERMAN),
            IntervalMethod::ahpd_default(),
        ];
        for m in methods {
            let i = m.interval(&state, 0.05).unwrap();
            assert!(i.contains(0.9), "{} misses the MLE: {i}", m.name());
            assert!(i.width() > 0.0 && i.width() < 1.0, "{}: {i}", m.name());
        }
    }

    #[test]
    fn wald_zero_width_on_unanimous_sample() {
        // Example 1 pathology reproduced through the dispatch layer.
        let state = srs_state(30, 30);
        let i = IntervalMethod::Wald.interval(&state, 0.05).unwrap();
        assert_eq!(i.width(), 0.0);
        // The Bayesian methods keep a sane interval instead.
        let h = IntervalMethod::Hpd(BetaPrior::KERMAN)
            .interval(&state, 0.05)
            .unwrap();
        // Reference width 0.04792 (independent numeric integration of the
        // Beta(30 + 1/3, 1/3) tail).
        assert!((h.width() - 0.04792).abs() < 5e-4, "width = {}", h.width());
        assert_eq!(h.upper(), 1.0);
    }

    #[test]
    fn single_cluster_draw_yields_sentinel() {
        let mut s = SampleState::new_cluster();
        s.record_cluster_draw(1.0, 3, 3);
        let w = IntervalMethod::Wald.interval(&s, 0.05).unwrap();
        assert!((w.moe() - 0.5).abs() < 1e-12);
        let wi = IntervalMethod::Wilson.interval(&s, 0.05).unwrap();
        assert!((wi.moe() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hpd_never_wider_than_et_through_dispatch() {
        for tau in [0u64, 1, 15, 29, 30] {
            let state = srs_state(tau, 30);
            let hpd = IntervalMethod::Hpd(BetaPrior::KERMAN)
                .interval(&state, 0.05)
                .unwrap();
            let et = IntervalMethod::Et(BetaPrior::KERMAN)
                .interval(&state, 0.05)
                .unwrap();
            assert!(hpd.width() <= et.width() + 1e-9, "τ = {tau}");
        }
    }

    #[test]
    fn ahpd_at_least_as_good_as_every_fixed_prior() {
        for tau in [0u64, 3, 15, 27, 30] {
            let state = srs_state(tau, 30);
            let a = IntervalMethod::ahpd_default()
                .interval(&state, 0.05)
                .unwrap();
            for p in BetaPrior::UNINFORMATIVE {
                let h = IntervalMethod::Hpd(p).interval(&state, 0.05).unwrap();
                assert!(
                    a.width() <= h.width() + 1e-12,
                    "τ={tau}: aHPD {a} vs HPD[{}] {h}",
                    p.name
                );
            }
        }
    }
}
