//! Interval-method dispatch: one enum covering every `1-α` interval the
//! experiments compare, applied uniformly to SRS and cluster samples.
//!
//! Two hot-path mechanisms live here alongside the dispatch:
//!
//! * **The posterior kernel** ([`Kernel`]): under SRS every interval and
//!   certificate is a pure function of the integer counts `(τ, n)` plus
//!   the `(prior, α)` configuration, so all SRS solves route through
//!   [`kgae_intervals::kernel`]'s canonical count-keyed functions. When a
//!   shared [`KernelCache`] is attached to the [`MethodState`] the solves
//!   are memoized process-wide; without one the same functions run
//!   directly, so cached and uncached runs are bit-identical by
//!   construction. (Cluster designs have fractional effective counts and
//!   stay on the warm-started SLSQP path.)
//! * **Certified multi-step lookahead**
//!   ([`IntervalMethod::certified_skip_srs`] /
//!   [`IntervalMethod::certified_skip_cluster`]): from Theorem 1's width
//!   bound, compute how many future annotation units *provably* cannot
//!   satisfy `MoE ≤ ε`, so the evaluation loop skips interval
//!   construction (and even the one-step bound check) entirely until the
//!   first unit where stopping is achievable. The stopping decision is
//!   unchanged — every skipped step is one where the reference
//!   check-every-unit loop could not have stopped either.

use crate::ahpd::{ahpd_select_posteriors, posteriors_for_state};
use crate::state::{DesignKind, SampleState};
use kgae_intervals::{
    et_interval, hpd_interval_warm, hpd_width_achievable, wald_from_variance, wilson, BetaPrior,
    Interval, IntervalError, Kernel, KernelCache,
};
use kgae_stats::dist::Beta;
use std::sync::Arc;

/// Hard cap on a single certified skip, bounding the cost of one
/// lookahead computation. Re-derived after the cap is reached, so larger
/// skips simply arrive in installments.
const MAX_SKIP: u64 = 1 << 16;

/// Per-run solver state carried across the framework's successive calls:
/// SLSQP warm starts for the cluster paths (the optimum is unique, so
/// warm starting changes cost, not results), the incrementally-advanced
/// per-prior posteriors for SRS samples, and an optional handle on the
/// process-wide posterior-kernel cache.
#[derive(Debug, Clone, Default)]
pub struct MethodState {
    pub(crate) warm: Vec<Option<(f64, f64)>>,
    /// Per-prior posteriors `Beta(a + τ, b + n − τ)`, advanced by
    /// [`IntervalMethod::record_observation`]. Empty for methods without
    /// posteriors (Wald, Wilson). SRS interval construction routes
    /// through the count-keyed kernel instead of reading these, but the
    /// state keeps tracking them: they are part of the snapshot wire
    /// format, so byte-stable resumability does not depend on whether a
    /// kernel cache is attached.
    pub(crate) posteriors: Vec<Beta>,
    /// The `(τ, n)` the cached posteriors reflect.
    pub(crate) tracked: (u64, u64),
    /// Shared posterior-kernel cache. `None` solves every kernel
    /// directly through the same canonical functions — identical bits,
    /// no memoization. Never serialized: a resumed session re-attaches
    /// the host's cache (or none).
    pub(crate) kernel: Option<Arc<KernelCache>>,
}

impl MethodState {
    /// The dispatch handle for this state's SRS kernel solves.
    pub(crate) fn kernel(&self) -> Kernel<'_> {
        Kernel::new(self.kernel.as_deref())
    }

    /// Attaches the shared posterior-kernel cache; subsequent SRS solves
    /// memoize through it.
    pub(crate) fn attach_kernel(&mut self, kernel: Arc<KernelCache>) {
        self.kernel = Some(kernel);
    }
}

/// An interval-estimation method under evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum IntervalMethod {
    /// Wald CI (Eq. 5) — efficient but unreliable baseline.
    Wald,
    /// Wilson CI (Eq. 7) with Kish effective-sample-size adjustment under
    /// cluster designs — the frequentist state of the art.
    Wilson,
    /// Equal-tailed credible interval under one prior (Eq. 9).
    Et(BetaPrior),
    /// HPD credible interval under one prior (§4.3).
    Hpd(BetaPrior),
    /// The adaptive HPD algorithm over a set of priors (Algorithm 1).
    AHpd(Vec<BetaPrior>),
}

impl IntervalMethod {
    /// aHPD with the paper's default prior set {Kerman, Jeffreys,
    /// Uniform}.
    #[must_use]
    pub fn ahpd_default() -> IntervalMethod {
        IntervalMethod::AHpd(BetaPrior::UNINFORMATIVE.to_vec())
    }

    /// Display name used in tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            IntervalMethod::Wald => "Wald".into(),
            IntervalMethod::Wilson => "Wilson".into(),
            IntervalMethod::Et(p) => format!("ET[{}]", p.name),
            IntervalMethod::Hpd(p) => format!("HPD[{}]", p.name),
            IntervalMethod::AHpd(_) => "aHPD".into(),
        }
    }

    /// Canonical lower-case wire name (`"wald"`, `"et[jeffreys]"`,
    /// `"ahpd"`, ...); [`IntervalMethod::from_str`](std::str::FromStr)
    /// parses it back for every named-prior method.
    #[must_use]
    pub fn canonical_name(&self) -> String {
        self.name().to_ascii_lowercase()
    }

    /// The candidate priors of the Bayesian methods (`None` for the
    /// frequentist ones).
    pub(crate) fn priors(&self) -> Option<&[BetaPrior]> {
        match self {
            IntervalMethod::Hpd(p) | IntervalMethod::Et(p) => Some(std::slice::from_ref(p)),
            IntervalMethod::AHpd(ps) => Some(ps),
            IntervalMethod::Wald | IntervalMethod::Wilson => None,
        }
    }

    /// Fresh solver state for a run of [`Self::interval_stateful`] calls.
    #[must_use]
    pub fn new_state(&self) -> MethodState {
        let priors = self.priors().unwrap_or(&[]);
        MethodState {
            warm: vec![None; priors.len()],
            posteriors: priors
                .iter()
                .map(|p| Beta::new(p.a, p.b).expect("priors have positive parameters"))
                .collect(),
            tracked: (0, 0),
            kernel: None,
        }
    }

    /// Advances the per-prior posterior cache by one SRS annotation.
    ///
    /// O(1) per prior — the beta-function recurrence inside
    /// [`Beta::observe`] replaces the three `ln_gamma` evaluations a
    /// fresh construction would pay. Both loop variants (check-every-unit
    /// and certified lookahead) apply the identical per-observation
    /// update sequence, so their posteriors agree bit for bit.
    pub fn record_observation(&self, cache: &mut MethodState, success: bool) {
        if cache.posteriors.is_empty() {
            return;
        }
        for post in &mut cache.posteriors {
            *post = post.observe(success);
        }
        cache.tracked.1 += 1;
        if success {
            cache.tracked.0 += 1;
        }
    }

    /// Builds the `1-α` interval from the current sample.
    ///
    /// Degenerate cluster variance (a single stage-1 draw) yields the
    /// maximally uninformative sentinel interval `[μ̂-0.5, μ̂+0.5]`
    /// (MoE 0.5), so the stopping rule simply keeps sampling.
    pub fn interval(&self, state: &SampleState, alpha: f64) -> Result<Interval, IntervalError> {
        self.interval_stateful(state, alpha, &mut self.new_state())
    }

    /// [`Self::interval`] with warm-start and posterior state carried
    /// across calls.
    pub fn interval_stateful(
        &self,
        state: &SampleState,
        alpha: f64,
        cache: &mut MethodState,
    ) -> Result<Interval, IntervalError> {
        match self {
            IntervalMethod::Wald => {
                let est = state.estimate();
                if !est.variance.is_finite() {
                    let mu = est.mu.clamp(0.0, 1.0);
                    return Ok(Interval::new(mu - 0.5, mu + 0.5));
                }
                Ok(wald_from_variance(
                    est.mu.clamp(0.0, 1.0),
                    est.variance,
                    alpha,
                )?)
            }
            IntervalMethod::Wilson => match state.kind() {
                DesignKind::Srs => cache.kernel().wilson(state.tau(), state.n(), alpha),
                DesignKind::Cluster => {
                    let eff = state.effective();
                    if state.draws() < 2 {
                        return Ok(Interval::new(eff.mu - 0.5, eff.mu + 0.5));
                    }
                    Ok(wilson(eff.mu, eff.n_eff, alpha)?)
                }
            },
            IntervalMethod::Et(prior) => match state.kind() {
                DesignKind::Srs => cache.kernel().et(prior, state.tau(), state.n(), alpha),
                DesignKind::Cluster => {
                    let eff = state.effective();
                    et_interval(&prior.posterior_effective(eff.mu, eff.n_eff)?, alpha)
                }
            },
            IntervalMethod::Hpd(prior) => match state.kind() {
                DesignKind::Srs => {
                    match cache.kernel().hpd(prior, state.tau(), state.n(), alpha) {
                        Ok(i) => Ok(i),
                        // No single HPD interval exists (U-shaped
                        // posterior from near-zero evidence): report the
                        // maximally uninformative sentinel so the loop
                        // keeps sampling instead of aborting.
                        Err(IntervalError::UShapedPosterior { .. }) => Ok(Interval::new(0.0, 1.0)),
                        Err(e) => Err(e),
                    }
                }
                DesignKind::Cluster => {
                    let eff = state.effective();
                    let post = prior.posterior_effective(eff.mu, eff.n_eff)?;
                    let warm = cache.warm.first().copied().flatten();
                    match hpd_interval_warm(&post, alpha, warm) {
                        Ok(i) => {
                            if let Some(slot) = cache.warm.first_mut() {
                                *slot = Some((i.lower(), i.upper()));
                            }
                            Ok(i)
                        }
                        Err(IntervalError::UShapedPosterior { .. }) => Ok(Interval::new(0.0, 1.0)),
                        Err(e) => Err(e),
                    }
                }
            },
            IntervalMethod::AHpd(priors) => match state.kind() {
                DesignKind::Srs => {
                    // Match ahpd_select_warm's loud failure on an empty
                    // sample — a prior-only "posterior" interval would
                    // look plausible and hide the caller's bug.
                    assert!(state.n() > 0, "aHPD needs at least one annotation");
                    let kernel = cache.kernel();
                    let (tau, n) = (state.tau(), state.n());
                    // Strict `<` keeps the first minimal prior as winner,
                    // matching ahpd_select_posteriors' min_by tie-break.
                    let mut best: Option<Interval> = None;
                    for prior in priors {
                        let interval = match kernel.hpd(prior, tau, n, alpha) {
                            Ok(i) => i,
                            Err(IntervalError::UShapedPosterior { .. }) => Interval::new(0.0, 1.0),
                            Err(e) => return Err(e),
                        };
                        if best.is_none_or(|b| interval.width() < b.width()) {
                            best = Some(interval);
                        }
                    }
                    Ok(best.expect("aHPD requires at least one prior"))
                }
                DesignKind::Cluster => {
                    let posteriors = posteriors_for_state(state, priors)?;
                    Ok(ahpd_select_posteriors(&posteriors, alpha, &mut cache.warm)?.interval)
                }
            },
        }
    }

    /// Exact one-step gate: can the *current* sample's `1-α` interval
    /// possibly satisfy `MoE ≤ ε`?
    ///
    /// For the HPD-family methods this evaluates [`hpd_width_achievable`]
    /// on the actual posteriors — the exact indicator `HPD width ≤ 2ε` —
    /// so full interval construction runs only at steps that actually
    /// stop (plus measure-zero boundary ties and shapes with no
    /// certificate). Methods without a certificate (Wald, Wilson)
    /// return `true` and always construct; ET gates on the HPD predicate
    /// (ET is at least as wide, so a negative gate is still sound).
    #[must_use]
    pub fn stop_possible_now(
        &self,
        state: &SampleState,
        alpha: f64,
        epsilon: f64,
        cache: &MethodState,
    ) -> bool {
        let Some(priors) = self.priors() else {
            return true;
        };
        let width = 2.0 * epsilon;
        match state.kind() {
            DesignKind::Srs => {
                let kernel = cache.kernel();
                priors
                    .iter()
                    .any(|prior| kernel.achievable(prior, state.tau(), state.n(), alpha, width))
            }
            DesignKind::Cluster => {
                let eff = state.effective();
                priors.iter().any(|prior| {
                    prior
                        .posterior_effective(eff.mu, eff.n_eff)
                        .map_or(true, |post| hpd_width_achievable(&post, alpha, width))
                })
            }
        }
    }

    /// Certified SRS lookahead: the number of further annotations that
    /// provably cannot satisfy `MoE ≤ ε`, from the current `(τ, n)`.
    ///
    /// For each horizon `k`, every achievable posterior has
    /// `τ' ∈ [τ, τ+k]` at `n + k` observations. HPD width at fixed
    /// evidence is smallest in the extreme outcome regions (the Fig. 3
    /// width curves peak centrally), so stopping achievability is
    /// evaluated — via the *exact* best-window predicate
    /// [`hpd_width_achievable`] — at the range endpoints plus their
    /// one-step-inside neighbors (covering the transition into the
    /// monotone limiting shapes of Eq. 10/11). The smallest achievable
    /// `k` is found by exponential + binary search; everything before it
    /// is skipped.
    ///
    /// Returns 0 (check the very next annotation) for methods without a
    /// certified bound (Wald, Wilson).
    #[must_use]
    pub fn certified_skip_srs(
        &self,
        state: &SampleState,
        alpha: f64,
        epsilon: f64,
        cache: &MethodState,
    ) -> u64 {
        let Some(priors) = self.priors() else {
            return 0;
        };
        debug_assert_eq!(state.kind(), DesignKind::Srs);
        let (tau, n) = (state.tau(), state.n());
        let kernel = cache.kernel();
        find_certified_skip(|k| srs_stoppable_at(priors, &kernel, tau, n, k, alpha, epsilon))
    }

    /// Certified cluster lookahead: the number of further stage-1 draws
    /// that provably cannot satisfy `MoE ≤ ε`.
    ///
    /// The effective sample size after `j` more draws is bounded by
    /// `n_eff' = μ̂'(1−μ̂')/V̂' ≤ (d+j)(d+j−1)/(4·SS)` because the sum of
    /// squared deviations `SS` of the per-draw estimates is monotone
    /// non-decreasing under Welford updates, together with the Kish
    /// clamp bound `n_eff' ≤ 10³·n'` (each draw annotates at most
    /// `max_draw_size` triples). The reachable estimate-mean range after
    /// `j` draws is `[μ̂·d/(d+j), (μ̂·d+j)/(d+j)]` for sample-mean
    /// designs; Hansen–Hurwitz per-draw estimates are unbounded, so SCS
    /// widens the range to `[0, 1]` and admits the degenerate
    /// `deff = 1 ⇒ n_eff' = n'` case. Zero draw spread certifies
    /// nothing (the Kish clamp can explode `n_eff` on the next draw), so
    /// the method returns 0 and the loop checks every draw.
    #[must_use]
    pub fn certified_skip_cluster(
        &self,
        state: &SampleState,
        alpha: f64,
        epsilon: f64,
        max_draw_size: u64,
        hansen_hurwitz: bool,
    ) -> u64 {
        let Some(priors) = self.priors() else {
            return 0;
        };
        debug_assert_eq!(state.kind(), DesignKind::Cluster);
        let ss = state.draw_sum_sq_dev();
        if ss <= 0.0 {
            return 0;
        }
        let d = state.draws() as u64;
        let n = state.n();
        let mu = state.draw_mean().clamp(0.0, 1.0);
        find_certified_skip(|j| {
            let d_j = (d + j) as f64;
            let n_j = (n + j * max_draw_size.max(1)) as f64;
            let mut nu = (d_j * (d_j - 1.0) / (4.0 * ss)).min(1e3 * n_j);
            let (mu_lo, mu_hi) = if hansen_hurwitz {
                nu = nu.max(n_j);
                (0.0, 1.0)
            } else {
                (mu * d as f64 / d_j, (mu * d as f64 + j as f64) / d_j)
            };
            let nu = nu.max(1.0);
            priors.iter().any(|prior| {
                [mu_lo, mu_hi].into_iter().any(|mu_p| {
                    let post = Beta::new(prior.a + mu_p * nu, prior.b + (1.0 - mu_p) * nu)
                        .expect("positive posterior parameters");
                    hpd_width_achievable(&post, alpha, 2.0 * epsilon)
                })
            })
        })
    }
}

/// Error parsing an interval-method name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodParseError(
    /// The offending name.
    pub String,
);

impl std::fmt::Display for MethodParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown interval method {:?} (expected wald, wilson, ahpd, \
             or et/hpd with an optional [kerman|jeffreys|uniform] prior)",
            self.0
        )
    }
}

impl std::error::Error for MethodParseError {}

impl std::str::FromStr for IntervalMethod {
    type Err = MethodParseError;

    /// Parses a method name, case-insensitively: `wald`, `wilson`,
    /// `ahpd` (the paper's default prior set), and `et` / `hpd` with an
    /// optional named prior in brackets (`et[kerman]`, `hpd[uniform]`;
    /// Jeffreys when omitted). Informative custom priors have no wire
    /// name — construct those variants directly.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        let err = || MethodParseError(s.to_string());
        match lower.as_str() {
            "wald" => return Ok(IntervalMethod::Wald),
            "wilson" => return Ok(IntervalMethod::Wilson),
            "ahpd" => return Ok(IntervalMethod::ahpd_default()),
            _ => {}
        }
        let (base, prior) = match lower.split_once('[') {
            None => (lower.as_str(), BetaPrior::JEFFREYS),
            Some((base, rest)) => {
                let name = rest.strip_suffix(']').ok_or_else(err)?;
                let prior = match name {
                    "kerman" => BetaPrior::KERMAN,
                    "jeffreys" => BetaPrior::JEFFREYS,
                    "uniform" => BetaPrior::UNIFORM,
                    _ => return Err(err()),
                };
                (base, prior)
            }
        };
        match base {
            "et" => Ok(IntervalMethod::Et(prior)),
            "hpd" => Ok(IntervalMethod::Hpd(prior)),
            _ => Err(err()),
        }
    }
}

/// Whether `MoE ≤ ε` is achievable at horizon `k` under SRS: the exact
/// best-window predicate evaluated over priors and the extreme
/// achievable outcomes (plus their one-step-inside neighbors, covering
/// the monotone-shape transitions). Verdicts route through the kernel,
/// so a shared cache memoizes them across campaigns — the lookahead loop
/// no longer reconstructs a `Beta` per polled count.
fn srs_stoppable_at(
    priors: &[BetaPrior],
    kernel: &Kernel<'_>,
    tau: u64,
    n: u64,
    k: u64,
    alpha: f64,
    epsilon: f64,
) -> bool {
    let n_k = n + k;
    let mut candidates = [tau, tau + k, tau + k - 1, tau + 1];
    candidates.sort_unstable();
    let mut prev = u64::MAX;
    for &t in &candidates {
        if t == prev || t < tau || t > tau + k {
            continue;
        }
        prev = t;
        for prior in priors {
            if kernel.achievable(prior, t, n_k, alpha, 2.0 * epsilon) {
                return true;
            }
        }
    }
    false
}

/// Searches for the number of units to skip: one less than the smallest
/// horizon at which stopping becomes achievable, exploiting that
/// achievability is monotone in the horizon (more evidence can only
/// narrow the best achievable interval). Exponential bracketing plus
/// binary search: O(log k) predicate evaluations, most of which
/// short-circuit on the one-density-evaluation necessary condition.
fn find_certified_skip(stoppable_at: impl Fn(u64) -> bool) -> u64 {
    if stoppable_at(1) {
        return 0;
    }
    let mut lo = 1u64; // invariant: !stoppable(lo)
    let mut hi = 2u64;
    while !stoppable_at(hi) {
        if hi >= MAX_SKIP {
            return hi;
        }
        lo = hi;
        hi = (hi * 2).min(MAX_SKIP);
    }
    // invariant: !stoppable(lo) && stoppable(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if stoppable_at(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srs_state(tau: u64, n: u64) -> SampleState {
        let mut s = SampleState::new_srs();
        for i in 0..n {
            s.record_triple(i < tau);
        }
        s
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(IntervalMethod::Wald.name(), "Wald");
        assert_eq!(IntervalMethod::Wilson.name(), "Wilson");
        assert_eq!(IntervalMethod::Et(BetaPrior::KERMAN).name(), "ET[Kerman]");
        assert_eq!(
            IntervalMethod::Hpd(BetaPrior::UNIFORM).name(),
            "HPD[Uniform]"
        );
        assert_eq!(IntervalMethod::ahpd_default().name(), "aHPD");
    }

    #[test]
    fn all_methods_produce_covering_intervals_on_srs() {
        let state = srs_state(27, 30);
        let methods = [
            IntervalMethod::Wald,
            IntervalMethod::Wilson,
            IntervalMethod::Et(BetaPrior::JEFFREYS),
            IntervalMethod::Hpd(BetaPrior::KERMAN),
            IntervalMethod::ahpd_default(),
        ];
        for m in methods {
            let i = m.interval(&state, 0.05).unwrap();
            assert!(i.contains(0.9), "{} misses the MLE: {i}", m.name());
            assert!(i.width() > 0.0 && i.width() < 1.0, "{}: {i}", m.name());
        }
    }

    #[test]
    fn wald_zero_width_on_unanimous_sample() {
        // Example 1 pathology reproduced through the dispatch layer.
        let state = srs_state(30, 30);
        let i = IntervalMethod::Wald.interval(&state, 0.05).unwrap();
        assert_eq!(i.width(), 0.0);
        // The Bayesian methods keep a sane interval instead.
        let h = IntervalMethod::Hpd(BetaPrior::KERMAN)
            .interval(&state, 0.05)
            .unwrap();
        // Reference width 0.04792 (independent numeric integration of the
        // Beta(30 + 1/3, 1/3) tail).
        assert!((h.width() - 0.04792).abs() < 5e-4, "width = {}", h.width());
        assert_eq!(h.upper(), 1.0);
    }

    #[test]
    fn single_cluster_draw_yields_sentinel() {
        let mut s = SampleState::new_cluster();
        s.record_cluster_draw(1.0, 3, 3);
        let w = IntervalMethod::Wald.interval(&s, 0.05).unwrap();
        assert!((w.moe() - 0.5).abs() < 1e-12);
        let wi = IntervalMethod::Wilson.interval(&s, 0.05).unwrap();
        assert!((wi.moe() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hpd_never_wider_than_et_through_dispatch() {
        for tau in [0u64, 1, 15, 29, 30] {
            let state = srs_state(tau, 30);
            let hpd = IntervalMethod::Hpd(BetaPrior::KERMAN)
                .interval(&state, 0.05)
                .unwrap();
            let et = IntervalMethod::Et(BetaPrior::KERMAN)
                .interval(&state, 0.05)
                .unwrap();
            assert!(hpd.width() <= et.width() + 1e-9, "τ = {tau}");
        }
    }

    #[test]
    fn ahpd_at_least_as_good_as_every_fixed_prior() {
        for tau in [0u64, 3, 15, 27, 30] {
            let state = srs_state(tau, 30);
            let a = IntervalMethod::ahpd_default()
                .interval(&state, 0.05)
                .unwrap();
            for p in BetaPrior::UNINFORMATIVE {
                let h = IntervalMethod::Hpd(p).interval(&state, 0.05).unwrap();
                assert!(
                    a.width() <= h.width() + 1e-12,
                    "τ={tau}: aHPD {a} vs HPD[{}] {h}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn incremental_posteriors_match_fresh_construction() {
        // Drive the cache one observation at a time; intervals must
        // agree with a cold state, and the incrementally-observed
        // posteriors (kept for snapshot-byte stability) must track the
        // fresh count construction.
        let method = IntervalMethod::ahpd_default();
        let mut cache = method.new_state();
        let mut state = SampleState::new_srs();
        for i in 0..120u64 {
            let label = i % 11 != 5;
            state.record_triple(label);
            method.record_observation(&mut cache, label);
            assert_eq!(cache.tracked, (state.tau(), state.n()));
            if i >= 29 && i % 13 == 0 {
                let warm = method.interval_stateful(&state, 0.05, &mut cache).unwrap();
                let cold = method.interval(&state, 0.05).unwrap();
                assert!(
                    (warm.lower() - cold.lower()).abs() < 1e-9
                        && (warm.upper() - cold.upper()).abs() < 1e-9,
                    "step {i}: warm {warm} vs cold {cold}"
                );
                for (post, prior) in cache.posteriors.iter().zip(BetaPrior::UNINFORMATIVE) {
                    let fresh = prior.posterior(state.tau(), state.n());
                    assert!(
                        (post.alpha() - fresh.alpha()).abs() < 1e-9
                            && (post.beta() - fresh.beta()).abs() < 1e-9,
                        "step {i}: incremental posterior drifted from counts"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_and_uncached_states_agree_bit_for_bit() {
        // The tentpole invariant at the dispatch layer: attaching a
        // shared kernel cache changes cost, not a single output bit.
        let shared = Arc::new(KernelCache::new());
        let methods = [
            IntervalMethod::Wilson,
            IntervalMethod::Et(BetaPrior::KERMAN),
            IntervalMethod::Hpd(BetaPrior::JEFFREYS),
            IntervalMethod::ahpd_default(),
        ];
        for method in methods {
            let mut plain = method.new_state();
            let mut cached = method.new_state();
            cached.attach_kernel(Arc::clone(&shared));
            for (tau, n) in [(1u64, 1u64), (5, 30), (27, 30), (30, 30), (88, 100)] {
                let state = srs_state(tau, n);
                let a = method.interval_stateful(&state, 0.05, &mut plain).unwrap();
                let b = method.interval_stateful(&state, 0.05, &mut cached).unwrap();
                assert_eq!(
                    (a.lower().to_bits(), a.upper().to_bits()),
                    (b.lower().to_bits(), b.upper().to_bits()),
                    "{} at (τ={tau}, n={n}): {a} vs {b}",
                    method.name()
                );
                assert_eq!(
                    method.stop_possible_now(&state, 0.05, 0.05, &plain),
                    method.stop_possible_now(&state, 0.05, 0.05, &cached),
                );
                assert_eq!(
                    method.certified_skip_srs(&state, 0.05, 0.05, &plain),
                    method.certified_skip_srs(&state, 0.05, 0.05, &cached),
                );
            }
        }
        let stats = shared.stats();
        assert!(stats.lookups() > 0, "cached states never hit the kernel");
    }

    #[test]
    fn certified_skip_srs_is_sound_against_brute_force() {
        // Every skipped step must have an actual constructed MoE > ε —
        // the defining property that keeps the stopping point identical.
        for (tau, n) in [(27u64, 30u64), (30, 30), (15, 30), (0, 30), (90, 100)] {
            for method in [
                IntervalMethod::ahpd_default(),
                IntervalMethod::Hpd(BetaPrior::KERMAN),
                IntervalMethod::Et(BetaPrior::UNIFORM),
            ] {
                let state = srs_state(tau, n);
                let skip = method.certified_skip_srs(&state, 0.05, 0.05, &method.new_state());
                // Brute-force: for each skipped horizon k and each
                // achievable τ', the constructed interval is wider than ε.
                for k in 1..=skip.min(60) {
                    for t in [0u64, k / 2, k] {
                        let future = srs_state(tau + t, n + k);
                        let i = method.interval(&future, 0.05).unwrap();
                        assert!(
                            i.moe() > 0.05,
                            "{} at (τ={tau}, n={n}): skipped k={k}, τ'=+{t} \
                             but moe = {} ≤ ε",
                            method.name(),
                            i.moe()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn certified_skip_srs_reaches_stoppable_horizons() {
        // The lookahead must not be trivially zero: a central sample
        // (μ̂ = 0.5 needs ~380 annotations to stop at ε = 0.05) should
        // certify a long skip even under the loose f(mode) bound.
        let state = srs_state(15, 30);
        let ahpd = IntervalMethod::ahpd_default();
        let skip = ahpd.certified_skip_srs(&state, 0.05, 0.05, &ahpd.new_state());
        assert!(skip >= 30, "skip = {skip} is uselessly small");
        // And frequentist methods certify nothing.
        let wald = IntervalMethod::Wald;
        assert_eq!(
            wald.certified_skip_srs(&state, 0.05, 0.05, &wald.new_state()),
            0
        );
        let wilson = IntervalMethod::Wilson;
        assert_eq!(
            wilson.certified_skip_srs(&state, 0.05, 0.05, &wilson.new_state()),
            0
        );
    }

    #[test]
    fn certified_skip_cluster_requires_draw_spread() {
        let mut s = SampleState::new_cluster();
        for _ in 0..10 {
            s.record_cluster_draw(0.9, 9, 10);
        }
        // Zero spread: the Kish clamp could explode n_eff next draw —
        // nothing is certifiable.
        assert_eq!(
            IntervalMethod::ahpd_default().certified_skip_cluster(&s, 0.05, 0.05, 3, false),
            0
        );
    }

    #[test]
    fn certified_skip_cluster_is_sound_against_simulation() {
        // Whatever mixture of future draws arrives, no skipped draw may
        // reach MoE ≤ ε. Simulate adversarially favorable futures: all
        // draws agreeing on the majority side at several sizes.
        let method = IntervalMethod::ahpd_default();
        let mut s = SampleState::new_cluster();
        for i in 0..12 {
            let m = if i % 3 == 0 { 1.0 } else { 0.5 };
            s.record_cluster_draw(m, (m * 2.0) as u64, 2);
        }
        let skip = method.certified_skip_cluster(&s, 0.05, 0.05, 3, false);
        for j in 1..=skip.min(40) {
            for future_mean in [0.0, 1.0] {
                let mut fut = s.clone();
                for _ in 0..j {
                    fut.record_cluster_draw(future_mean, (future_mean * 3.0) as u64, 3);
                }
                let i = method.interval(&fut, 0.05).unwrap();
                assert!(
                    i.moe() > 0.05,
                    "skipped draw {j} (future mean {future_mean}) has moe {}",
                    i.moe()
                );
            }
        }
    }

    #[test]
    fn find_certified_skip_search_is_consistent() {
        // Synthetic monotone predicate: first stoppable horizon k = 100
        // ⇒ 99 units are skippable.
        let skip = find_certified_skip(|k| k >= 100);
        assert_eq!(skip, 99);
        // Immediately stoppable ⇒ no skip.
        assert_eq!(find_certified_skip(|_| true), 0);
        // Never stoppable within the cap ⇒ capped skip.
        assert_eq!(find_certified_skip(|_| false), MAX_SKIP);
    }
}
