//! Continuous accuracy monitoring over an evolving KG — the fourth
//! [`SessionEngine`], turning one-shot audits into a long-lived
//! monitor (paper §8, ROADMAP item 2).
//!
//! A [`MonitorSession`] wraps a [`kgae_graph::DeltaKg`] view of a
//! frozen base KG and runs ordinary SRS annotation campaigns over it.
//! Its lifecycle alternates between two phases:
//!
//! * **Annotating** — an embedded [`EvaluationSession`] drives the
//!   standard `next_request`/`submit` poll protocol. Every consumed
//!   label is also recorded in a *label ledger* keyed by delta-proof
//!   [`StableId`]s. When the campaign's stopping rule fires, the
//!   monitor harvests its result and switches to watching — the
//!   monitor itself never reports a stop reason.
//! * **Watching** — no annotation is owed. `status()` keeps reporting
//!   the last certified estimate and credible interval at zero new
//!   annotation cost.
//!
//! [`MonitorSession::apply_deltas`] accepts a batch of triple
//! adds/removes (optionally tagged with a predicate for drift
//! accounting), retires removed triples' ledger labels, and re-derives
//! the surviving posterior:
//!
//! * Surviving labels form `Beta(p.a + τ, p.b + (n − τ))` under each
//!   standard uninformative prior `p`, and the narrowest resulting
//!   interval wins — the aHPD race re-run on the surviving evidence.
//! * Additions not yet exposed to any completed campaign contribute an
//!   evidence-free `Beta(1, 1)` population share: the reported
//!   posterior is the moment-matched Beta of the mixture
//!   `s·μ_surv + (1 − s)·μ_new`, where `s` is the share of the current
//!   view a completed campaign has actually sampled. Pure removals keep
//!   the exact survivor posterior; heavy unlabeled growth widens it.
//!
//! If the mixture's HPD interval still meets the MoE target the monitor
//! keeps watching — the update cost **zero** annotations. Otherwise it
//! re-opens a campaign seeded with the surviving posterior as an
//! informative prior via [`posterior_as_prior`] (evidence capped at
//! `carry_weight` pseudo-observations and never inflated past the
//! evidence actually held), hedged by the standard uninformative priors
//! against deceptive updates — the aHPD carryover mechanism of
//! [`crate::dynamic`], now running inside the engine world.
//!
//! A delta-free monitor is **bit-identical** to a plain
//! [`EvaluationSession`] with the same seed/method/config (property
//! test `monitor_equivalence.rs`): epoch 0 uses the same
//! `SmallRng::seed_from_u64(seed)` stream over a transparent view.
//! Re-opened campaign `k` derives its stream as
//! `mix2(seed, k)`, so replaying the same delta/label sequence
//! reproduces the same trajectory everywhere — the basis of the
//! service-level determinism and snapshot byte-identity tests.

use std::collections::BTreeMap;

use crate::dynamic::posterior_as_prior;
use crate::engine::{EngineKind, EngineOutcome, EngineRequest, SessionEngine, SessionStatusView};
use crate::framework::{EvalConfig, PreparedDesign, SamplingDesign};
use crate::method::IntervalMethod;
use crate::session::{
    method_fingerprint_matches, read_record_prefix, write_method_fingerprint, EvaluationSession,
    SessionError, SessionStatus, MONITOR_SNAPSHOT_TAG,
};
use crate::snapshot::{Reader, Writer, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use kgae_graph::hash::mix2;
use kgae_graph::{DeltaKg, KnowledgeGraph, StableId};
use kgae_intervals::{hpd_interval, BetaPrior, Interval};
use kgae_stats::dist::Beta;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One KG update batch handed to a monitor. `removes` name triples by
/// their **current** view ids (all resolved against the pre-batch view,
/// so ids are not shifted by same-batch removes); `adds` carry the
/// ground-truth correctness of brand-new triples — simulation metadata
/// for oracle annotators in benches and tests, never read by the
/// estimator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Optional predicate tag for per-predicate drift accounting.
    pub predicate: Option<String>,
    /// Current view ids to remove.
    pub removes: Vec<u64>,
    /// Correctness flags of the added triples (each its own singleton
    /// entity cluster).
    pub adds: Vec<bool>,
}

/// What one applied delta batch did to the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Ledger labels retired because their triples were removed.
    pub retired_labels: u64,
    /// Whether this batch re-opened annotation.
    pub reopened: bool,
    /// The campaign epoch after the batch (0 = the initial campaign).
    pub epoch: u64,
    /// Whether the monitor is watching (no annotation owed) after the
    /// batch.
    pub watching: bool,
}

/// One predicate's cumulative churn row, first-appearance order;
/// untagged batches land in the `"*"` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftReport {
    /// The predicate tag (`"*"` for untagged batches).
    pub predicate: String,
    /// Triples added under this tag.
    pub adds: u64,
    /// Triples removed under this tag.
    pub removes: u64,
    /// Ledger labels retired by this tag's removals.
    pub retired_labels: u64,
    /// Drift alarm: cumulative churn (`adds + removes`) reached 5% of
    /// the current view (at least 1 triple).
    pub alarm: bool,
}

/// The monitor-specific rows of a [`SessionStatusView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReport {
    /// Current campaign epoch (0 = the initial campaign).
    pub epoch: u64,
    /// Campaigns re-opened by interval degradation (excludes epoch 0).
    pub campaigns_reopened: u64,
    /// Total ledger labels retired by removals.
    pub retired_labels: u64,
    /// Whether the monitor is watching (true) or annotating (false).
    pub watching: bool,
    /// Per-predicate churn rows with drift alarms.
    pub drift: Vec<DriftReport>,
}

/// Identity prefix of a monitor snapshot (record tag 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorSnapshotHeader {
    /// `num_triples` of the **base** KG the monitor overlays.
    pub num_triples: u64,
    /// `num_clusters` of the base KG.
    pub num_clusters: u32,
    /// Campaign epoch at suspension.
    pub epoch: u64,
    /// Whether the monitor was watching (no embedded campaign).
    pub watching: bool,
}

/// Parses the identity prefix of a monitor snapshot without
/// reconstructing the monitor.
///
/// # Errors
///
/// [`SessionError::CorruptSnapshot`] on malformed bytes;
/// [`SessionError::SnapshotMismatch`] when the bytes carry a different
/// record tag or an unsupported version.
pub fn peek_monitor_header(bytes: &[u8]) -> Result<MonitorSnapshotHeader, SessionError> {
    let corrupt = SessionError::CorruptSnapshot;
    let mut r = Reader::new(bytes);
    if read_record_prefix(&mut r)? != MONITOR_SNAPSHOT_TAG {
        return Err(SessionError::SnapshotMismatch("not a monitor snapshot"));
    }
    Ok(MonitorSnapshotHeader {
        num_triples: r.u64().map_err(corrupt)?,
        num_clusters: r.u32().map_err(corrupt)?,
        epoch: r.u64().map_err(corrupt)?,
        watching: !r.bool().map_err(corrupt)?,
    })
}

#[derive(Debug, Clone, PartialEq)]
struct DriftRow {
    predicate: String,
    adds: u64,
    removes: u64,
    retired: u64,
}

/// The last certified estimate, reported while watching.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Watched {
    estimate: f64,
    interval: Interval,
}

/// A freshly appraised surviving posterior (see the module docs for
/// the mixture construction).
struct Appraisal {
    estimate: f64,
    interval: Interval,
    prior_a: f64,
    prior_b: f64,
}

/// The long-lived continuous-monitoring engine. See the module docs
/// for the lifecycle; construct through [`MonitorSession::new`] or the
/// engine registry ([`crate::engine::EngineSpec::Monitor`]).
///
/// SRS-only: the view's additions are singleton clusters and the
/// overlay may empty base clusters, which cluster designs cannot
/// sample; SRS reads nothing but `num_triples`.
pub struct MonitorSession<'a> {
    // Field order is load-bearing: `inner` borrows the heap payload of
    // `view` (see `forged_view`), so it must drop first.
    inner: Option<EvaluationSession<'a, SmallRng>>,
    view: Box<DeltaKg<'a>>,
    base_method: IntervalMethod,
    cfg: EvalConfig,
    carry_weight: f64,
    seed: u64,
    epoch: u64,
    campaigns_reopened: u64,
    retired_total: u64,
    /// `next_serial` of the view when the last campaign completed:
    /// additions at or past this serial have never been exposed to a
    /// completed campaign and count as evidence-free population.
    seen_serials: u64,
    /// Work accumulated by completed (and absorbed partial) campaigns.
    done_observations: u64,
    done_triples: u64,
    done_cost: f64,
    /// Carried prior `(a, b)` for the next re-opened campaign.
    carry: Option<(f64, f64)>,
    /// Labels of surviving triples, keyed by delta-proof stable id.
    /// `BTreeMap` iteration order doubles as the canonical snapshot
    /// order.
    ledger: BTreeMap<StableId, bool>,
    drift: Vec<DriftRow>,
    watched: Option<Watched>,
    /// Current ids of the outstanding batch's triples, for ledgering
    /// the consumed prefix at submit.
    pending_triples: Vec<u64>,
    /// Shared posterior-kernel cache, re-attached to every campaign the
    /// monitor opens (the inner session is recreated on re-open after
    /// deltas, so the handle must outlive individual campaigns).
    kernel: Option<std::sync::Arc<kgae_intervals::KernelCache>>,
}

impl std::fmt::Debug for MonitorSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorSession")
            .field("epoch", &self.epoch)
            .field("watching", &self.inner.is_none())
            .field("ledger", &self.ledger.len())
            .field("retired", &self.retired_total)
            .finish_non_exhaustive()
    }
}

/// Re-borrows the boxed view with the monitor's outer lifetime so the
/// embedded session can hold it across the self-reference.
///
/// SAFETY contract (upheld by every `MonitorSession` path):
/// * the `Box` heap payload has a stable address for the monitor's
///   whole life — moving the monitor moves only the box pointer;
/// * the view is mutated (`&mut`) exclusively in `apply_deltas`, and
///   only after `inner` — the sole holder of a forged reference — has
///   been dropped (`Option::take`);
/// * `inner` is declared before `view`, so it also drops first.
#[allow(clippy::borrowed_box)] // &Box is the point: the forge needs the box's stable heap address
fn forged_view<'a>(view: &Box<DeltaKg<'a>>) -> &'a dyn KnowledgeGraph {
    let ptr: *const DeltaKg<'a> = &**view;
    unsafe { &*(ptr as *const (dyn KnowledgeGraph + 'a)) }
}

impl<'a> MonitorSession<'a> {
    /// Opens a monitor over `base` and starts its initial campaign
    /// (epoch 0), which is bit-identical to a plain
    /// [`EvaluationSession`] with the same `method`/`cfg`/`seed` under
    /// [`SamplingDesign::Srs`].
    ///
    /// `carry_weight` caps the pseudo-observations a surviving
    /// posterior may carry into a re-opened campaign.
    #[must_use]
    pub fn new(
        base: &'a dyn KnowledgeGraph,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        carry_weight: f64,
        seed: u64,
    ) -> Self {
        let view = Box::new(DeltaKg::new(base));
        let inner = Some(Self::open_campaign(
            &view,
            method,
            cfg,
            SmallRng::seed_from_u64(seed),
        ));
        Self {
            inner,
            view,
            base_method: method.clone(),
            cfg: cfg.clone(),
            carry_weight,
            seed,
            epoch: 0,
            campaigns_reopened: 0,
            retired_total: 0,
            seen_serials: 0,
            done_observations: 0,
            done_triples: 0,
            done_cost: 0.0,
            carry: None,
            ledger: BTreeMap::new(),
            drift: Vec::new(),
            watched: None,
            pending_triples: Vec::new(),
            kernel: None,
        }
    }

    /// Attaches a shared posterior-kernel cache: the current campaign
    /// and every future re-opened campaign memoize their SRS solves
    /// through it. Purely a cost lever — outputs are bit-identical.
    pub fn set_kernel_cache(&mut self, kernel: std::sync::Arc<kgae_intervals::KernelCache>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.set_kernel_cache(std::sync::Arc::clone(&kernel));
        }
        self.kernel = Some(kernel);
    }

    #[allow(clippy::borrowed_box)] // see forged_view
    fn open_campaign(
        view: &Box<DeltaKg<'a>>,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        rng: SmallRng,
    ) -> EvaluationSession<'a, SmallRng> {
        let kg = forged_view(view);
        // SRS preparation is O(1) (no PPS table), so rebuilding it per
        // campaign is free.
        let prepared = PreparedDesign::new(kg, SamplingDesign::Srs);
        EvaluationSession::from_prepared(kg, &prepared, method, cfg, rng)
    }

    /// The method a campaign at the current epoch/carry state runs:
    /// the base method for epoch 0 (or when no labels survive), else
    /// aHPD over the carried prior plus the uninformative hedges.
    fn campaign_method(&self) -> IntervalMethod {
        match self.carry {
            Some((a, b)) if self.epoch > 0 => {
                let carry = BetaPrior::informative(a, b)
                    .expect("carried prior parameters are positive and finite");
                let mut priors = vec![carry];
                priors.extend(BetaPrior::UNINFORMATIVE);
                IntervalMethod::AHpd(priors)
            }
            _ => self.base_method.clone(),
        }
    }

    /// Folds a stopped campaign's result into the cumulative counters
    /// and switches to watching.
    fn harvest(&mut self) {
        let inner = self.inner.take().expect("harvest requires a campaign");
        let result = inner
            .into_result()
            .expect("harvest requires a stopped campaign");
        self.done_observations += result.observations;
        self.done_triples += result.annotated_triples;
        self.done_cost += result.cost_seconds;
        self.watched = Some(Watched {
            estimate: result.mu_hat,
            interval: result.interval,
        });
        self.seen_serials = self.view.next_serial();
    }

    /// Additions never exposed to a completed campaign.
    fn unseen_additions(&self) -> u64 {
        self.view
            .added_entries()
            .filter(|&(serial, _)| serial >= self.seen_serials)
            .count() as u64
    }

    /// Appraises the surviving evidence by re-running the aHPD race on
    /// it: under each standard uninformative prior `p` the survivors
    /// form `Beta(p.a + τ, p.b + (n − τ))`, which is mixed with the
    /// evidence-free addition share (module docs) and moment-matched
    /// back to a Beta; the narrowest HPD interval wins — the same
    /// first-narrow-prior rule the campaign itself stopped under, so a
    /// delta-free appraisal agrees with the campaign's own certificate.
    /// `None` when no posterior can be formed (empty ledger or a
    /// degenerate mixture).
    fn appraise(&self) -> Option<Appraisal> {
        if self.ledger.is_empty() {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = self.ledger.len() as f64;
        #[allow(clippy::cast_precision_loss)]
        let tau = self.ledger.values().filter(|&&v| v).count() as f64;
        #[allow(clippy::cast_precision_loss)]
        let total = self.view.num_triples() as f64;
        if total <= 0.0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let unseen = self.unseen_additions() as f64;
        let share = (total - unseen) / total;
        let mut best: Option<(Appraisal, f64)> = None;
        for prior in &BetaPrior::UNINFORMATIVE {
            let (a1, b1) = (prior.a + tau, prior.b + (n - tau));
            let m1 = a1 / (a1 + b1);
            let v1 = a1 * b1 / ((a1 + b1) * (a1 + b1) * (a1 + b1 + 1.0));
            let m = share * m1 + (1.0 - share) * 0.5;
            let v = share * share * v1 + (1.0 - share) * (1.0 - share) / 12.0;
            // Moment match: ν = m(1−m)/v − 1. For a pure survivor
            // posterior (share = 1) this is exactly a1 + b1.
            let nu = m * (1.0 - m) / v - 1.0;
            if !(nu.is_finite() && nu > 0.0 && m > 0.0 && m < 1.0) {
                continue;
            }
            let Ok(posterior) = Beta::new(m * nu, (1.0 - m) * nu) else {
                continue;
            };
            let Ok(interval) = hpd_interval(&posterior, self.cfg.alpha) else {
                continue;
            };
            let cap = self.carry_weight.min(nu);
            let Ok(carry) = posterior_as_prior(&posterior, cap) else {
                continue;
            };
            let width = interval.width();
            if best.as_ref().is_none_or(|(_, w)| width < *w) {
                best = Some((
                    Appraisal {
                        estimate: m,
                        interval,
                        prior_a: carry.a,
                        prior_b: carry.b,
                    },
                    width,
                ));
            }
        }
        best.map(|(appraisal, _)| appraisal)
    }

    fn drift_row_mut(&mut self, predicate: Option<&str>) -> &mut DriftRow {
        let key = predicate.unwrap_or("*");
        let index = match self.drift.iter().position(|r| r.predicate == key) {
            Some(i) => i,
            None => {
                self.drift.push(DriftRow {
                    predicate: key.to_string(),
                    adds: 0,
                    removes: 0,
                    retired: 0,
                });
                self.drift.len() - 1
            }
        };
        &mut self.drift[index]
    }

    /// The drift rows with alarms computed against the current view:
    /// a row alarms once its cumulative churn reaches 5% of the view
    /// (at least 1 triple).
    fn drift_reports(&self) -> Vec<DriftReport> {
        let threshold = (self.view.num_triples() / 20).max(1);
        self.drift
            .iter()
            .map(|r| DriftReport {
                predicate: r.predicate.clone(),
                adds: r.adds,
                removes: r.removes,
                retired_labels: r.retired,
                alarm: r.adds + r.removes >= threshold,
            })
            .collect()
    }

    /// The monitor rows of the status view.
    #[must_use]
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            epoch: self.epoch,
            campaigns_reopened: self.campaigns_reopened,
            retired_labels: self.retired_total,
            watching: self.inner.is_none(),
            drift: self.drift_reports(),
        }
    }

    /// Applies one KG delta batch. Refused while labels are owed
    /// ([`SessionError::RequestPending`]) — the host must cancel or
    /// collect the outstanding request first — and on an invalid batch
    /// ([`SessionError::DeltaRejected`]), in which case nothing changes.
    ///
    /// An open campaign is absorbed (its partial work counted, its
    /// labels already in the ledger); removed triples' labels are
    /// retired; and annotation re-opens only if the surviving
    /// posterior's HPD interval no longer meets the MoE target.
    ///
    /// # Errors
    ///
    /// As above; never fails after it starts mutating.
    pub fn apply_deltas(&mut self, batch: &DeltaBatch) -> Result<DeltaOutcome, SessionError> {
        if self.has_pending_request() {
            return Err(SessionError::RequestPending);
        }
        // Validate before touching the open campaign: an invalid batch
        // must not perturb the monitor at all.
        {
            let n = self.view.num_triples();
            let mut seen = batch.removes.clone();
            seen.sort_unstable();
            if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
                return Err(SessionError::DeltaRejected(
                    kgae_graph::DeltaError::DuplicateRemove { id: w[0] },
                ));
            }
            if let Some(&id) = seen.last().filter(|&&id| id >= n) {
                return Err(SessionError::DeltaRejected(
                    kgae_graph::DeltaError::RemoveOutOfRange { id, len: n },
                ));
            }
        }
        // An empty batch is a true no-op: nothing to retire, nothing to
        // re-appraise. The certificate — or the open campaign — stands
        // exactly as it was, and no drift row is charged.
        if batch.removes.is_empty() && batch.adds.is_empty() {
            return Ok(DeltaOutcome {
                retired_labels: 0,
                reopened: false,
                epoch: self.epoch,
                watching: self.inner.is_none(),
            });
        }
        // Absorb an open campaign: its labels are already ledgered per
        // submit; fold its partial effort into the cumulatives and drop
        // it (required before `&mut view` — see `forged_view`).
        if let Some(inner) = self.inner.take() {
            let partial = inner.status();
            self.done_observations += partial.observations;
            self.done_triples += partial.annotated_triples;
            self.done_cost += partial.cost_seconds;
        }
        let applied = self
            .view
            .apply(&batch.removes, &batch.adds)
            .expect("batch validated above");
        let mut retired = 0u64;
        for id in &applied.removed {
            if self.ledger.remove(id).is_some() {
                retired += 1;
            }
        }
        self.retired_total += retired;
        {
            let row = self.drift_row_mut(batch.predicate.as_deref());
            row.adds += batch.adds.len() as u64;
            row.removes += batch.removes.len() as u64;
            row.retired += retired;
        }
        let appraisal = self.appraise();
        self.carry = appraisal.as_ref().map(|a| (a.prior_a, a.prior_b));
        match appraisal {
            Some(a) if a.interval.moe() <= self.cfg.epsilon => {
                // Still certified: keep (or fall back to) watching.
                self.watched = Some(Watched {
                    estimate: a.estimate,
                    interval: a.interval,
                });
                Ok(DeltaOutcome {
                    retired_labels: retired,
                    reopened: false,
                    epoch: self.epoch,
                    watching: true,
                })
            }
            _ => {
                self.epoch += 1;
                self.campaigns_reopened += 1;
                self.watched = None;
                let method = self.campaign_method();
                let rng = SmallRng::seed_from_u64(mix2(self.seed, self.epoch));
                let mut inner = Self::open_campaign(&self.view, &method, &self.cfg, rng);
                if let Some(kernel) = &self.kernel {
                    inner.set_kernel_cache(std::sync::Arc::clone(kernel));
                }
                self.inner = Some(inner);
                Ok(DeltaOutcome {
                    retired_labels: retired,
                    reopened: true,
                    epoch: self.epoch,
                    watching: false,
                })
            }
        }
    }

    /// Whether the monitor is watching (no annotation owed).
    #[must_use]
    pub fn watching(&self) -> bool {
        self.inner.is_none()
    }

    /// The label ledger size (surviving annotated triples).
    #[must_use]
    pub fn ledger_len(&self) -> usize {
        self.ledger.len()
    }

    /// Serializes the monitor into a canonical `KGAESNAP` snapshot
    /// (record tag 6): base-KG shape, config/method fingerprints, the
    /// seed, cumulative counters, drift rows, the delta overlay, the
    /// label ledger (in `StableId` order), the carried prior, the
    /// watched estimate, and — while annotating — the embedded
    /// campaign snapshot, length-prefixed. Byte-identical across
    /// suspend → resume → suspend.
    ///
    /// # Errors
    ///
    /// [`SessionError::SnapshotUnavailable`] while labels are owed.
    pub fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        if self.has_pending_request() {
            return Err(SessionError::SnapshotUnavailable(
                "a request is outstanding; submit its labels first",
            ));
        }
        let mut w = Writer::new();
        w.bytes(SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u8(MONITOR_SNAPSHOT_TAG);
        // Header: base shape + epoch + phase, peekable without parsing
        // the record body.
        w.u64(self.view.base().num_triples());
        w.u32(self.view.base().num_clusters());
        w.u64(self.epoch);
        w.bool(self.inner.is_some());
        // Config fingerprint (the plain-session shape).
        w.f64(self.cfg.alpha);
        w.f64(self.cfg.epsilon);
        w.u64(self.cfg.min_triples);
        w.u64(self.cfg.min_draws as u64);
        w.opt_u64(self.cfg.max_observations);
        w.opt_f64(self.cfg.max_cost_seconds);
        w.f64(self.cfg.cost_model.entity_seconds);
        w.f64(self.cfg.cost_model.triple_seconds);
        w.u64(self.cfg.cost_model.judgments_per_label);
        w.u8(crate::session::stopping_tag(self.cfg.stopping));
        w.f64(self.carry_weight);
        write_method_fingerprint(&mut w, &self.base_method);
        w.u64(self.seed);
        // Cumulative counters.
        w.u64(self.campaigns_reopened);
        w.u64(self.retired_total);
        w.u64(self.seen_serials);
        w.u64(self.done_observations);
        w.u64(self.done_triples);
        w.f64(self.done_cost);
        // Drift rows, first-appearance order.
        w.u64(self.drift.len() as u64);
        for row in &self.drift {
            w.u64(row.predicate.len() as u64);
            w.bytes(row.predicate.as_bytes());
            w.u64(row.adds);
            w.u64(row.removes);
            w.u64(row.retired);
        }
        // Overlay.
        let removed = self.view.removed_ids();
        w.u64(removed.len() as u64);
        for &b in removed {
            w.u64(b);
        }
        let added: Vec<(u64, bool)> = self.view.added_entries().collect();
        w.u64(added.len() as u64);
        for (serial, correct) in added {
            w.u64(serial);
            w.bool(correct);
        }
        w.u64(self.view.next_serial());
        // Ledger (BTreeMap order = canonical).
        w.u64(self.ledger.len() as u64);
        for (&id, &label) in &self.ledger {
            match id {
                StableId::Base(b) => {
                    w.u8(0);
                    w.u64(b);
                }
                StableId::Added(s) => {
                    w.u8(1);
                    w.u64(s);
                }
            }
            w.bool(label);
        }
        // Carry + watched.
        match self.carry {
            Some((a, b)) => {
                w.bool(true);
                w.f64(a);
                w.f64(b);
            }
            None => w.bool(false),
        }
        match &self.watched {
            Some(watched) => {
                w.bool(true);
                w.f64(watched.estimate);
                w.f64(watched.interval.lower());
                w.f64(watched.interval.upper());
            }
            None => w.bool(false),
        }
        // Embedded campaign snapshot while annotating.
        if let Some(inner) = &self.inner {
            let child = inner.snapshot()?;
            w.u64(child.len() as u64);
            w.bytes(&child);
        }
        Ok(w.into_bytes())
    }

    /// Reconstructs a suspended monitor from a snapshot, validating the
    /// base-KG shape, config, carry weight, method fingerprint and seed
    /// against the supplied spec before restoring the overlay, ledger
    /// and — while annotating — the embedded campaign (which
    /// re-validates its own fingerprints against the rebuilt view).
    ///
    /// # Errors
    ///
    /// [`SessionError::CorruptSnapshot`] on malformed bytes;
    /// [`SessionError::SnapshotMismatch`] when the snapshot belongs to
    /// a different base KG, config, carry weight, method or seed.
    #[allow(clippy::too_many_lines)]
    pub fn resume(
        base: &'a dyn KnowledgeGraph,
        method: &IntervalMethod,
        cfg: &EvalConfig,
        carry_weight: f64,
        seed: u64,
        bytes: &[u8],
    ) -> Result<Self, SessionError> {
        let corrupt = SessionError::CorruptSnapshot;
        let mismatch = SessionError::SnapshotMismatch;
        let mut r = Reader::new(bytes);
        if read_record_prefix(&mut r)? != MONITOR_SNAPSHOT_TAG {
            return Err(mismatch("not a monitor snapshot"));
        }
        if r.u64().map_err(corrupt)? != base.num_triples()
            || r.u32().map_err(corrupt)? != base.num_clusters()
        {
            return Err(mismatch("base KG shape differs"));
        }
        let epoch = r.u64().map_err(corrupt)?;
        let annotating = r.bool().map_err(corrupt)?;
        let config_matches = r.f64().map_err(corrupt)?.to_bits() == cfg.alpha.to_bits()
            && r.f64().map_err(corrupt)?.to_bits() == cfg.epsilon.to_bits()
            && r.u64().map_err(corrupt)? == cfg.min_triples
            && r.u64().map_err(corrupt)? == cfg.min_draws as u64
            && r.opt_u64().map_err(corrupt)? == cfg.max_observations
            && r.opt_f64().map_err(corrupt)?.map(f64::to_bits)
                == cfg.max_cost_seconds.map(f64::to_bits)
            && r.f64().map_err(corrupt)?.to_bits() == cfg.cost_model.entity_seconds.to_bits()
            && r.f64().map_err(corrupt)?.to_bits() == cfg.cost_model.triple_seconds.to_bits()
            && r.u64().map_err(corrupt)? == cfg.cost_model.judgments_per_label
            && r.u8().map_err(corrupt)? == crate::session::stopping_tag(cfg.stopping);
        if !config_matches {
            return Err(mismatch("config differs"));
        }
        if r.f64().map_err(corrupt)?.to_bits() != carry_weight.to_bits() {
            return Err(mismatch("carry weight differs"));
        }
        if !method_fingerprint_matches(&mut r, method).map_err(corrupt)? {
            return Err(mismatch("interval method differs"));
        }
        if r.u64().map_err(corrupt)? != seed {
            return Err(mismatch("seed differs"));
        }
        let campaigns_reopened = r.u64().map_err(corrupt)?;
        let retired_total = r.u64().map_err(corrupt)?;
        let seen_serials = r.u64().map_err(corrupt)?;
        let done_observations = r.u64().map_err(corrupt)?;
        let done_triples = r.u64().map_err(corrupt)?;
        let done_cost = r.f64().map_err(corrupt)?;
        let cap = bytes.len() as u64;
        let drift_len = r.len_capped(cap).map_err(corrupt)?;
        let mut drift = Vec::with_capacity(drift_len);
        for _ in 0..drift_len {
            let name_len = r.len_capped(cap).map_err(corrupt)?;
            let name = r.bytes(name_len).map_err(corrupt)?;
            let predicate = String::from_utf8(name.to_vec())
                .map_err(|_| SessionError::CorruptSnapshot("drift predicate not UTF-8"))?;
            drift.push(DriftRow {
                predicate,
                adds: r.u64().map_err(corrupt)?,
                removes: r.u64().map_err(corrupt)?,
                retired: r.u64().map_err(corrupt)?,
            });
        }
        let removed_len = r.len_capped(cap).map_err(corrupt)?;
        let mut removed = Vec::with_capacity(removed_len);
        for _ in 0..removed_len {
            removed.push(r.u64().map_err(corrupt)?);
        }
        let added_len = r.len_capped(cap).map_err(corrupt)?;
        let mut added = Vec::with_capacity(added_len);
        for _ in 0..added_len {
            let serial = r.u64().map_err(corrupt)?;
            let correct = r.bool().map_err(corrupt)?;
            added.push((serial, correct));
        }
        let next_serial = r.u64().map_err(corrupt)?;
        let view = Box::new(
            DeltaKg::from_parts(base, None, removed, added, next_serial)
                .map_err(|_| SessionError::CorruptSnapshot("invalid delta overlay"))?,
        );
        let ledger_len = r.len_capped(cap).map_err(corrupt)?;
        let mut ledger = BTreeMap::new();
        let mut prev: Option<StableId> = None;
        for _ in 0..ledger_len {
            let id = match r.u8().map_err(corrupt)? {
                0 => StableId::Base(r.u64().map_err(corrupt)?),
                1 => StableId::Added(r.u64().map_err(corrupt)?),
                _ => return Err(SessionError::CorruptSnapshot("unknown stable-id tag")),
            };
            if prev.is_some_and(|p| p >= id) {
                return Err(SessionError::CorruptSnapshot("ledger ids out of order"));
            }
            prev = Some(id);
            ledger.insert(id, r.bool().map_err(corrupt)?);
        }
        let carry = if r.bool().map_err(corrupt)? {
            let a = r.f64().map_err(corrupt)?;
            let b = r.f64().map_err(corrupt)?;
            if !(a.is_finite() && a > 0.0 && b.is_finite() && b > 0.0) {
                return Err(SessionError::CorruptSnapshot("invalid carried prior"));
            }
            Some((a, b))
        } else {
            None
        };
        let watched = if r.bool().map_err(corrupt)? {
            let estimate = r.f64().map_err(corrupt)?;
            let lo = r.f64().map_err(corrupt)?;
            let hi = r.f64().map_err(corrupt)?;
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(SessionError::CorruptSnapshot(
                    "interval bounds out of order",
                ));
            }
            Some(Watched {
                estimate,
                interval: Interval::new(lo, hi),
            })
        } else {
            None
        };
        let mut monitor = Self {
            inner: None,
            view,
            base_method: method.clone(),
            cfg: cfg.clone(),
            carry_weight,
            seed,
            epoch,
            campaigns_reopened,
            retired_total,
            seen_serials,
            done_observations,
            done_triples,
            done_cost,
            carry,
            ledger,
            drift,
            watched,
            pending_triples: Vec::new(),
            kernel: None,
        };
        if annotating {
            let child_len = r.len_capped(cap).map_err(corrupt)?;
            let child = r.bytes(child_len).map_err(corrupt)?;
            let campaign_method = monitor.campaign_method();
            let kg = forged_view(&monitor.view);
            let prepared = PreparedDesign::new(kg, SamplingDesign::Srs);
            monitor.inner = Some(EvaluationSession::resume(
                kg,
                &prepared,
                &campaign_method,
                &monitor.cfg,
                SmallRng::seed_from_u64(0),
                child,
            )?);
        }
        r.finish().map_err(corrupt)?;
        Ok(monitor)
    }
}

impl SessionEngine for MonitorSession<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Monitor
    }

    fn has_pending_request(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(EvaluationSession::has_pending_request)
    }

    fn next_request(&mut self, max_units: u64) -> Result<Option<EngineRequest>, SessionError> {
        let Some(inner) = self.inner.as_mut() else {
            // Watching: nothing owed, and no stop reason either — the
            // monitor idles until a delta degrades the interval.
            return Ok(None);
        };
        match inner.next_request_cancellable(max_units)? {
            Some(request) => {
                self.pending_triples = request.triples.iter().map(|st| st.triple.index()).collect();
                Ok(Some(EngineRequest {
                    request,
                    stratum: None,
                }))
            }
            None => {
                // The campaign stopped without owing labels (e.g. the
                // population was exhausted during the poll).
                if self
                    .inner
                    .as_ref()
                    .is_some_and(|i| i.stop_reason().is_some())
                {
                    self.harvest();
                }
                Ok(None)
            }
        }
    }

    fn submit(&mut self, labels: &[bool]) -> Result<(), SessionError> {
        let consumed = {
            let inner = self.inner.as_mut().ok_or(SessionError::NoRequestPending)?;
            let before = inner.sample_state().n();
            inner.submit(labels)?;
            inner.sample_state().n() - before
        };
        // Ledger exactly the consumed prefix: labels past the stopping
        // unit are discarded by the campaign and must not enter the
        // carryover evidence.
        let consumed = usize::try_from(consumed).expect("batch fits usize");
        for (&t, &label) in self.pending_triples.iter().zip(labels).take(consumed) {
            self.ledger.insert(self.view.resolve(t), label);
        }
        self.pending_triples.clear();
        if self
            .inner
            .as_ref()
            .is_some_and(|i| i.stop_reason().is_some())
        {
            self.harvest();
        }
        Ok(())
    }

    fn cancel_request(&mut self) -> Result<(), SessionError> {
        let inner = self.inner.as_mut().ok_or(SessionError::NoRequestPending)?;
        inner.cancel_request()?;
        self.pending_triples.clear();
        Ok(())
    }

    fn status(&self) -> SessionStatusView {
        let primary = match (&self.inner, &self.watched) {
            // Annotating: the live campaign view on top of completed
            // campaigns' cumulative effort. Epoch 0 reports exactly the
            // plain-session status (cumulatives are zero).
            (Some(inner), _) => {
                let live = inner.status();
                SessionStatus {
                    estimate: live.estimate,
                    interval: live.interval,
                    observations: self.done_observations + live.observations,
                    annotated_triples: self.done_triples + live.annotated_triples,
                    stage1_draws: 0,
                    cost_seconds: self.done_cost + live.cost_seconds,
                    stopped: None,
                }
            }
            // Watching: the certified estimate at zero marginal cost.
            (None, watched) => SessionStatus {
                estimate: watched.map(|w| w.estimate),
                interval: watched.map(|w| w.interval),
                observations: self.done_observations,
                annotated_triples: self.done_triples,
                stage1_draws: 0,
                cost_seconds: self.done_cost,
                stopped: None,
            },
        };
        SessionStatusView {
            primary,
            strata: None,
            methods: None,
            monitor: Some(self.report()),
        }
    }

    fn stop_reason(&self) -> Option<crate::session::StopReason> {
        // A monitor never finishes on its own; it is deleted, not
        // stopped.
        None
    }

    fn snapshot(&self) -> Result<Vec<u8>, SessionError> {
        MonitorSession::snapshot(self)
    }

    fn into_outcome(self: Box<Self>) -> Option<EngineOutcome> {
        None
    }

    fn apply_deltas(&mut self, batch: &DeltaBatch) -> Result<DeltaOutcome, SessionError> {
        MonitorSession::apply_deltas(self, batch)
    }

    fn set_kernel_cache(&mut self, kernel: std::sync::Arc<kgae_intervals::KernelCache>) {
        MonitorSession::set_kernel_cache(self, kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgae_graph::GroundTruth;

    fn drive_to_watching(monitor: &mut MonitorSession<'_>, truth: &dyn GroundTruth, batch: u64) {
        let mut guard = 0;
        while !monitor.watching() {
            let Some(polled) = monitor.next_request(batch).unwrap() else {
                break;
            };
            let labels: Vec<bool> = polled
                .request
                .triples
                .iter()
                .map(|st| truth.is_correct(st.triple))
                .collect();
            monitor.submit(&labels).unwrap();
            guard += 1;
            assert!(guard < 10_000, "campaign failed to converge");
        }
    }

    #[test]
    fn initial_campaign_harvests_into_watching() {
        let kg = kgae_graph::datasets::nell();
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let mut monitor = MonitorSession::new(&kg, &method, &cfg, 50.0, 42);
        assert!(!monitor.watching());
        drive_to_watching(&mut monitor, &kg, 16);
        assert!(monitor.watching());
        let view = SessionEngine::status(&monitor);
        let primary = view.primary;
        assert!(primary.stopped.is_none());
        assert!(primary.interval.unwrap().moe() <= cfg.epsilon);
        assert!(primary.observations > 0);
        let report = view.monitor.unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(report.campaigns_reopened, 0);
        assert!(report.watching);
        // Watching monitors poll to None but report no stop reason.
        assert!(monitor.next_request(16).unwrap().is_none());
        assert!(SessionEngine::stop_reason(&monitor).is_none());
    }

    #[test]
    fn small_delta_keeps_watching_large_delta_reopens() {
        let kg = kgae_graph::datasets::nell();
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let mut monitor = MonitorSession::new(&kg, &method, &cfg, 50.0, 7);
        drive_to_watching(&mut monitor, &kg, 16);
        let labels_before = monitor.ledger_len();

        // A tiny removal batch cannot push the interval past ε.
        let outcome = monitor
            .apply_deltas(&DeltaBatch {
                predicate: Some("tinyChurn".into()),
                removes: vec![0, 1],
                adds: vec![],
            })
            .unwrap();
        assert!(!outcome.reopened && outcome.watching);
        assert_eq!(outcome.epoch, 0);
        assert!(monitor.watching());
        assert!(monitor.ledger_len() >= labels_before.saturating_sub(2));

        // Massive unlabeled growth must degrade the interval.
        let outcome = monitor
            .apply_deltas(&DeltaBatch {
                predicate: Some("bulkLoad".into()),
                removes: vec![],
                adds: vec![true; 4000],
            })
            .unwrap();
        assert!(outcome.reopened && !outcome.watching);
        assert_eq!(outcome.epoch, 1);
        assert!(!monitor.watching());
        let report = monitor.report();
        assert_eq!(report.campaigns_reopened, 1);
        let bulk = report
            .drift
            .iter()
            .find(|r| r.predicate == "bulkLoad")
            .unwrap();
        assert!(bulk.alarm, "4000 adds over ~1860 base triples must alarm");
        let tiny = report
            .drift
            .iter()
            .find(|r| r.predicate == "tinyChurn")
            .unwrap();
        assert!(!tiny.alarm);
    }

    #[test]
    fn deltas_are_refused_while_labels_are_owed() {
        let kg = kgae_graph::datasets::yago();
        let method = IntervalMethod::Wilson;
        let cfg = EvalConfig::default();
        let mut monitor = MonitorSession::new(&kg, &method, &cfg, 50.0, 1);
        let polled = monitor.next_request(4).unwrap().unwrap();
        assert!(matches!(
            monitor.apply_deltas(&DeltaBatch::default()),
            Err(SessionError::RequestPending)
        ));
        // Cancel rewinds; the delta then applies cleanly.
        monitor.cancel_request().unwrap();
        monitor
            .apply_deltas(&DeltaBatch {
                predicate: None,
                removes: vec![0],
                adds: vec![false],
            })
            .unwrap();
        drop(polled);
        // Invalid batches change nothing.
        let n = monitor.report();
        assert!(matches!(
            monitor.apply_deltas(&DeltaBatch {
                predicate: None,
                removes: vec![u64::MAX],
                adds: vec![],
            }),
            Err(SessionError::DeltaRejected(_))
        ));
        assert_eq!(monitor.report(), n);
    }

    #[test]
    fn carryover_campaign_uses_the_surviving_posterior() {
        let kg = kgae_graph::datasets::nell();
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let mut monitor = MonitorSession::new(&kg, &method, &cfg, 50.0, 11);
        drive_to_watching(&mut monitor, &kg, 16);
        let outcome = monitor
            .apply_deltas(&DeltaBatch {
                predicate: None,
                removes: (0..120).collect(),
                adds: vec![true; 400],
            })
            .unwrap();
        assert!(outcome.reopened);
        let method_now = monitor.campaign_method();
        let IntervalMethod::AHpd(priors) = &method_now else {
            panic!("re-opened campaign must run aHPD, got {method_now:?}");
        };
        assert_eq!(priors.len(), 1 + BetaPrior::UNINFORMATIVE.len());
        let carried = &priors[0];
        assert!(carried.a + carried.b <= 50.0 + 1e-9, "evidence capped");
        // Carried mean near the NELL accuracy the first campaign saw.
        let mean = carried.a / (carried.a + carried.b);
        assert!((mean - 0.91).abs() < 0.15, "carried mean {mean}");
    }

    #[test]
    fn snapshot_round_trips_watching_and_annotating() {
        let kg = kgae_graph::datasets::nell();
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let mut monitor = MonitorSession::new(&kg, &method, &cfg, 50.0, 5);
        // Mid-campaign (annotating, epoch 0).
        for _ in 0..3 {
            let polled = monitor.next_request(8).unwrap().unwrap();
            let labels: Vec<bool> = polled
                .request
                .triples
                .iter()
                .map(|st| kg.is_correct(st.triple))
                .collect();
            monitor.submit(&labels).unwrap();
        }
        let snap = MonitorSession::snapshot(&monitor).unwrap();
        let header = peek_monitor_header(&snap).unwrap();
        assert_eq!(header.num_triples, kg.num_triples());
        assert_eq!(header.epoch, 0);
        assert!(!header.watching);
        let resumed = MonitorSession::resume(&kg, &method, &cfg, 50.0, 5, &snap).unwrap();
        assert_eq!(MonitorSession::snapshot(&resumed).unwrap(), snap);

        // Watching with deltas applied and a campaign re-opened, then
        // suspended mid-delta (deltas in, annotation re-opened, no
        // batch outstanding).
        drive_to_watching(&mut monitor, &kg, 16);
        let watch_snap = MonitorSession::snapshot(&monitor).unwrap();
        assert!(peek_monitor_header(&watch_snap).unwrap().watching);
        let resumed = MonitorSession::resume(&kg, &method, &cfg, 50.0, 5, &watch_snap).unwrap();
        assert_eq!(MonitorSession::snapshot(&resumed).unwrap(), watch_snap);

        monitor
            .apply_deltas(&DeltaBatch {
                predicate: Some("drift".into()),
                removes: (0..50).collect(),
                adds: vec![false; 900],
            })
            .unwrap();
        assert!(!monitor.watching());
        // Drive a few batches of the re-opened campaign too.
        for _ in 0..2 {
            let Some(polled) = monitor.next_request(4).unwrap() else {
                break;
            };
            let labels: Vec<bool> = polled
                .request
                .triples
                .iter()
                .map(|st| {
                    // The view is the ground truth for the re-opened
                    // campaign: base survivors + synthetic adds.
                    monitor_truth(&monitor, st.triple.index())
                })
                .collect();
            monitor.submit(&labels).unwrap();
        }
        let snap = MonitorSession::snapshot(&monitor).unwrap();
        let header = peek_monitor_header(&snap).unwrap();
        assert_eq!(header.epoch, 1);
        let resumed = MonitorSession::resume(&kg, &method, &cfg, 50.0, 5, &snap).unwrap();
        assert_eq!(MonitorSession::snapshot(&resumed).unwrap(), snap);

        // Wrong spec parameters are rejected cleanly.
        assert!(matches!(
            MonitorSession::resume(&kg, &method, &cfg, 60.0, 5, &snap),
            Err(SessionError::SnapshotMismatch("carry weight differs"))
        ));
        assert!(matches!(
            MonitorSession::resume(&kg, &method, &cfg, 50.0, 6, &snap),
            Err(SessionError::SnapshotMismatch("seed differs"))
        ));
        assert!(matches!(
            MonitorSession::resume(&kg, &IntervalMethod::Wilson, &cfg, 50.0, 5, &snap),
            Err(SessionError::SnapshotMismatch("interval method differs"))
        ));
    }

    /// Oracle labels for a monitor's current view without borrowing the
    /// monitor mutably: base survivors answer from the base truth via
    /// the overlay's own resolution; synthetic adds carry their flag.
    fn monitor_truth(monitor: &MonitorSession<'_>, current: u64) -> bool {
        use kgae_graph::GroundTruth;
        // The view in these tests is built over datasets that implement
        // GroundTruth, but `DeltaKg::new` drops the truth half; recover
        // labels through the stable id.
        match monitor.view.resolve(current) {
            StableId::Base(b) => kgae_graph::datasets::nell().is_correct(kgae_graph::TripleId(b)),
            StableId::Added(_) => {
                let s = monitor.view.survivors();
                monitor
                    .view
                    .added_entries()
                    .nth(usize::try_from(current - s).unwrap())
                    .map(|(_, c)| c)
                    .unwrap()
            }
        }
    }
}
