//! The iterative evaluation framework (paper Figure 1), as the legacy
//! closed-loop facade over the poll-based engine.
//!
//! ```text
//! loop:
//!   1. sample a unit (SRS: one triple; cluster designs: one stage-1 draw)
//!   2. annotate it (and merge with previous annotations)
//!   3. estimate μ̂ and build the 1-α interval
//!   4. quality control: stop when MoE <= ε
//! ```
//!
//! The stopping check runs after every annotated unit once the minimum
//! sample is reached (30 triples, and ≥ 2 stage-1 draws under cluster
//! designs so the variance estimator exists). This granularity is what
//! reproduces the paper's numbers — e.g. Wald on NELL halting at exactly
//! `n = 30` with `μ̂ = 1.0` in ~7% of runs (Example 1), and Wald/SRS on
//! SYN-0.5 needing `z²·0.25/ε² ≈ 384` triples (Table 4).
//!
//! Since the session refactor, [`evaluate`] / [`evaluate_prepared`] are
//! thin drivers over [`crate::session::EvaluationSession`]: they poll
//! one unit at a time, annotate it with the in-process [`Annotator`] on
//! the session's own RNG, and submit the labels — reproducing the
//! historical seed-for-seed behavior exactly while the engine itself
//! stays external-annotation-ready.

use crate::annotator::Annotator;
use crate::cost::CostModel;
use crate::method::IntervalMethod;
use crate::session::{AnnotationRequest, EvaluationSession, SessionError};
use kgae_graph::{ClusterId, GroundTruth, KnowledgeGraph};
use kgae_intervals::{Interval, IntervalError};
use kgae_sampling::driver::DesignSpec;
use kgae_sampling::{pps_by_size_table, AliasTable};
use rand::Rng;
use std::sync::Arc;

/// The sampling strategy S of the minimization problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingDesign {
    /// Simple random sampling of triples (§2.4).
    Srs,
    /// Two-stage weighted cluster sampling with second-stage cap `m`
    /// (§2.4; the paper uses `m = 3` for the small KGs, `m = 5` for
    /// SYN 100M).
    Twcs {
        /// Second-stage sample size.
        m: u64,
    },
    /// Weighted (PPS) cluster sampling, whole clusters (online appendix).
    Wcs,
    /// Simple cluster sampling, whole clusters (online appendix).
    Scs,
}

impl SamplingDesign {
    /// Display name used in tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            SamplingDesign::Srs => "SRS".into(),
            SamplingDesign::Twcs { m } => format!("TWCS(m={m})"),
            SamplingDesign::Wcs => "WCS".into(),
            SamplingDesign::Scs => "SCS".into(),
        }
    }

    /// The design as a wire-level [`DesignSpec`] — the form the session
    /// service exchanges over HTTP and the input to
    /// [`kgae_sampling::driver::build_driver`].
    #[must_use]
    pub fn spec(&self) -> DesignSpec {
        match *self {
            SamplingDesign::Srs => DesignSpec::Srs,
            SamplingDesign::Twcs { m } => DesignSpec::Twcs { m },
            SamplingDesign::Wcs => DesignSpec::Wcs,
            SamplingDesign::Scs => DesignSpec::Scs,
        }
    }

    /// Canonical lower-case wire name (`"srs"`, `"twcs:3"`, ...);
    /// [`SamplingDesign::from_str`](std::str::FromStr) parses it back.
    #[must_use]
    pub fn canonical_name(&self) -> String {
        self.spec().canonical_name()
    }
}

impl TryFrom<DesignSpec> for SamplingDesign {
    type Error = kgae_sampling::driver::DesignParseError;

    /// Every single-driver design converts; the session-level designs
    /// do not — [`DesignSpec::Stratified`] denotes a coordinated family
    /// of per-stratum SRS engines
    /// ([`crate::stratified::StratifiedSession`]) and
    /// [`DesignSpec::Compare`] a shared SRS stream raced by the full
    /// method roster ([`crate::comparative::ComparativeSession`]), and
    /// [`DesignSpec::Monitor`] a long-lived SRS campaign sequence over
    /// an evolving view ([`crate::monitor::MonitorSession`]) — not one
    /// driver.
    fn try_from(spec: DesignSpec) -> Result<Self, Self::Error> {
        match spec {
            DesignSpec::Srs => Ok(SamplingDesign::Srs),
            DesignSpec::Twcs { m } => Ok(SamplingDesign::Twcs { m }),
            DesignSpec::Wcs => Ok(SamplingDesign::Wcs),
            DesignSpec::Scs => Ok(SamplingDesign::Scs),
            DesignSpec::Stratified { .. }
            | DesignSpec::Compare { .. }
            | DesignSpec::Monitor { .. } => Err(kgae_sampling::driver::DesignParseError(
                spec.canonical_name(),
            )),
        }
    }
}

impl std::str::FromStr for SamplingDesign {
    type Err = kgae_sampling::driver::DesignParseError;

    /// Parses a design name with the [`DesignSpec`] grammar: `srs`,
    /// `twcs:<m>` (or `twcs(m=<m>)`), `wcs`, `scs`, case-insensitively.
    /// `stratified[:<allocation>]` and `compare:<primary>` parse as
    /// [`DesignSpec`]s but are rejected here — they are not
    /// single-driver designs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<DesignSpec>().and_then(SamplingDesign::try_from)
    }
}

/// How the stopping rule consults interval construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoppingPolicy {
    /// Construct and check the `1-α` interval after every annotated unit
    /// (every triple under SRS, every stage-1 draw under cluster
    /// designs) — the literal loop of Figure 1. This is the reference
    /// path and the baseline of the lookahead A/B benchmark.
    EveryUnit,
    /// Certified multi-step lookahead: from Theorem 1's width bound,
    /// compute the first future unit at which `MoE ≤ ε` is achievable
    /// and skip interval construction entirely until then. Provably
    /// halts at the same unit with the same sample as
    /// [`StoppingPolicy::EveryUnit`] —
    /// every skipped unit is one where the bound shows the constructed
    /// interval would have been wider than `2ε`.
    #[default]
    CertifiedLookahead,
}

/// Evaluation-loop configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Significance level α of the `1-α` interval.
    pub alpha: f64,
    /// Upper bound ε on the Margin of Error (the stopping rule).
    pub epsilon: f64,
    /// Minimum annotated triples before the stopping rule is consulted.
    pub min_triples: u64,
    /// Minimum stage-1 draws under cluster designs (variance estimators
    /// need at least two).
    pub min_draws: usize,
    /// Optional cap on total annotation *observations*; exceeded ⇒ the
    /// run reports `converged = false`.
    pub max_observations: Option<u64>,
    /// Optional annotation budget in seconds of annotator time (Eq. 12
    /// units). §6.5 discusses evaluations "terminating prematurely (due
    /// to budget exhaustion)" — this models that budget.
    pub max_cost_seconds: Option<f64>,
    /// Cost constants (Eq. 12).
    pub cost_model: CostModel,
    /// Stopping-check scheduling (certified lookahead by default;
    /// [`StoppingPolicy::EveryUnit`] is the reference/benchmark path).
    pub stopping: StoppingPolicy,
}

impl Default for EvalConfig {
    /// The paper's setup: `α = 0.05`, `ε = 0.05`, minimum sample 30.
    fn default() -> Self {
        Self {
            alpha: 0.05,
            epsilon: 0.05,
            min_triples: 30,
            min_draws: 2,
            max_observations: None,
            max_cost_seconds: None,
            cost_model: CostModel::PAPER,
            stopping: StoppingPolicy::default(),
        }
    }
}

impl EvalConfig {
    /// Same configuration at a different significance level (Figure 4
    /// sweeps α ∈ {0.10, 0.05, 0.01}).
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }
}

/// Outcome of one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Estimated accuracy `μ̂` at the stop.
    pub mu_hat: f64,
    /// The final `1-α` interval.
    pub interval: Interval,
    /// Distinct triples annotated (the paper's "Triples" column).
    pub annotated_triples: u64,
    /// Distinct entities identified (drives the cost model).
    pub annotated_entities: u64,
    /// Total observations including with-replacement re-draws.
    pub observations: u64,
    /// Stage-1 draws (0 under SRS).
    pub stage1_draws: u64,
    /// Annotation cost in seconds (Eq. 12).
    pub cost_seconds: f64,
    /// Whether the MoE criterion was met (vs. budget/KG exhaustion).
    pub converged: bool,
    /// Whether the run halted at the *first* consultation of the
    /// stopping rule — i.e. at the minimum sample (`min_triples`
    /// observations under SRS; `min_draws` stage-1 draws reaching
    /// `min_triples` observations under cluster designs, where
    /// observations typically overshoot the floor). This is the
    /// "halted at the minimum sample" condition of the Example 1
    /// zero-width pathology; comparing raw observation counts against
    /// `min_triples` misclassifies cluster runs.
    pub halted_at_floor: bool,
}

impl EvalResult {
    /// Annotation cost in hours (the unit of Tables 3–4).
    #[must_use]
    pub fn cost_hours(&self) -> f64 {
        self.cost_seconds / 3600.0
    }
}

/// Per-dataset sampling resources prebuilt once and shared across
/// repeated evaluation runs (and across threads).
///
/// The PPS alias table over cluster sizes is O(#clusters) to build — 5M
/// entries for SYN 100M — so rebuilding it inside every one of the 1000
/// repetitions would dominate the runtime of the scalability experiment.
#[derive(Debug, Clone)]
pub struct PreparedDesign {
    design: SamplingDesign,
    /// Arc-shared so per-repetition sessions/samplers clone a pointer,
    /// never the O(#clusters) table.
    pps: Option<Arc<AliasTable>>,
    /// Maximum number of triples a single stage-1 draw can annotate
    /// (`m` for TWCS, the largest cluster for whole-cluster designs) —
    /// an input to the certified cluster lookahead's growth bound.
    max_draw_size: u64,
}

impl PreparedDesign {
    /// Prepares the design against a KG (builds the PPS table when the
    /// design needs one, and records the worst-case draw size for the
    /// certified lookahead).
    pub fn new<K: KnowledgeGraph + ?Sized>(kg: &K, design: SamplingDesign) -> Self {
        let pps = match design {
            SamplingDesign::Twcs { .. } | SamplingDesign::Wcs => {
                Some(Arc::new(pps_by_size_table(kg)))
            }
            SamplingDesign::Srs | SamplingDesign::Scs => None,
        };
        let max_cluster = || {
            (0..kg.num_clusters())
                .map(|c| kg.cluster_size(ClusterId(c)))
                .max()
                .unwrap_or(1)
        };
        let max_draw_size = match design {
            SamplingDesign::Srs => 1,
            SamplingDesign::Twcs { m } => m.max(1),
            SamplingDesign::Wcs | SamplingDesign::Scs => max_cluster(),
        };
        Self {
            design,
            pps,
            max_draw_size,
        }
    }

    /// The underlying design.
    #[must_use]
    pub fn design(&self) -> SamplingDesign {
        self.design
    }

    /// Maximum observations one stage-1 draw can add.
    #[must_use]
    pub fn max_draw_size(&self) -> u64 {
        self.max_draw_size
    }

    /// The shared PPS alias table (an `Arc` clone — pointer copy, not
    /// table copy), for the designs that have one.
    pub(crate) fn pps(&self) -> Option<Arc<AliasTable>> {
        self.pps.clone()
    }
}

/// Runs the full iterative evaluation of Figure 1.
///
/// Annotation labels are cached per triple, so a triple re-drawn by a
/// with-replacement cluster design reuses its recorded label (and costs
/// nothing extra, matching the set semantics of Eq. 12).
pub fn evaluate<K, A, R>(
    kg: &K,
    annotator: &A,
    design: SamplingDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    rng: &mut R,
) -> Result<EvalResult, IntervalError>
where
    K: KnowledgeGraph + GroundTruth,
    A: Annotator,
    R: Rng,
{
    evaluate_prepared(
        kg,
        annotator,
        &PreparedDesign::new(kg, design),
        method,
        cfg,
        rng,
    )
}

/// [`evaluate`] against a [`PreparedDesign`] (shares the PPS table
/// across repetitions via `Arc` — per-repetition setup copies a
/// pointer, never the O(#clusters) table).
///
/// Implemented as a thin driver over the poll-based
/// [`EvaluationSession`]: poll one unit, annotate its triples with the
/// in-process annotator on the session's own RNG stream (preserving the
/// historical sample-then-annotate interleaving seed for seed), submit,
/// repeat until the session stops.
pub fn evaluate_prepared<K, A, R>(
    kg: &K,
    annotator: &A,
    prepared: &PreparedDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    rng: &mut R,
) -> Result<EvalResult, IntervalError>
where
    K: KnowledgeGraph + GroundTruth,
    A: Annotator,
    R: Rng,
{
    let mut session = EvaluationSession::from_prepared(kg, prepared, method, cfg, rng);
    let mut request = AnnotationRequest::default();
    let mut labels: Vec<bool> = Vec::new();
    loop {
        match session.next_request_into(1, &mut request) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(unwrap_interval_error(e)),
        }
        labels.clear();
        for st in &request.triples {
            let truth = kg.is_correct(st.triple);
            labels.push(annotator.annotate(truth, session.rng_mut()));
        }
        if let Err(e) = session.submit(&labels) {
            return Err(unwrap_interval_error(e));
        }
    }
    Ok(session
        .into_result()
        .expect("a stopped session has a result"))
}

/// The closed-loop driver obeys the session protocol by construction,
/// so the only session error it can surface is a solver failure.
fn unwrap_interval_error(e: SessionError) -> IntervalError {
    match e {
        SessionError::Interval(err) => err,
        other => unreachable!("closed-loop driver violated the session protocol: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::OracleAnnotator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run(
        kg: &kgae_graph::CompactKg,
        design: SamplingDesign,
        method: IntervalMethod,
        seed: u64,
    ) -> EvalResult {
        let mut rng = SmallRng::seed_from_u64(seed);
        evaluate(
            kg,
            &OracleAnnotator,
            design,
            &method,
            &EvalConfig::default(),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn srs_converges_and_respects_moe() {
        let kg = kgae_graph::datasets::nell();
        let r = run(&kg, SamplingDesign::Srs, IntervalMethod::Wilson, 11);
        assert!(r.converged);
        assert!(r.interval.moe() <= 0.05 + 1e-12);
        assert!(r.annotated_triples >= 30);
        assert!((r.mu_hat - 0.91).abs() < 0.15, "μ̂ = {}", r.mu_hat);
        // SRS never re-draws: observations equal distinct triples.
        assert_eq!(r.observations, r.annotated_triples);
        assert_eq!(r.stage1_draws, 0);
    }

    #[test]
    fn minimum_sample_floor_is_respected() {
        // YAGO is 99% accurate: everything halts at/near the floor, never
        // below it.
        let kg = kgae_graph::datasets::yago();
        for seed in 0..20 {
            let r = run(&kg, SamplingDesign::Srs, IntervalMethod::Wald, seed);
            assert!(r.annotated_triples >= 30, "halted below the floor");
        }
    }

    #[test]
    fn example_1_wald_zero_width_halts_exist() {
        // On NELL ~6-8% of Wald/SRS runs halt at exactly n = 30 with
        // μ̂ = 1.0 and a zero-width interval (paper Example 1).
        let kg = kgae_graph::datasets::nell();
        let mut zero_width = 0;
        let reps = 200;
        for seed in 0..reps {
            let r = run(&kg, SamplingDesign::Srs, IntervalMethod::Wald, seed);
            if r.interval.width() == 0.0 && r.annotated_triples == 30 {
                zero_width += 1;
                assert_eq!(r.mu_hat, 1.0);
            }
        }
        let rate = zero_width as f64 / reps as f64;
        assert!(
            (0.01..0.20).contains(&rate),
            "zero-width halt rate = {rate}"
        );
    }

    #[test]
    fn twcs_converges_with_cluster_estimator() {
        let kg = kgae_graph::datasets::dbpedia();
        let r = run(
            &kg,
            SamplingDesign::Twcs { m: 3 },
            IntervalMethod::ahpd_default(),
            5,
        );
        assert!(r.converged);
        assert!(r.interval.moe() <= 0.05 + 1e-12);
        assert!(r.stage1_draws >= 2);
        assert!((r.mu_hat - 0.85).abs() < 0.2, "μ̂ = {}", r.mu_hat);
        // Entity amortization: fewer entities than triples.
        assert!(r.annotated_entities <= r.annotated_triples);
    }

    #[test]
    fn twcs_costs_less_per_triple_than_srs() {
        let kg = kgae_graph::datasets::factbench();
        let srs = run(&kg, SamplingDesign::Srs, IntervalMethod::Wilson, 42);
        let twcs = run(
            &kg,
            SamplingDesign::Twcs { m: 3 },
            IntervalMethod::Wilson,
            42,
        );
        let srs_per = srs.cost_seconds / srs.annotated_triples as f64;
        let twcs_per = twcs.cost_seconds / twcs.annotated_triples as f64;
        assert!(
            twcs_per < srs_per,
            "TWCS {twcs_per:.1}s/triple vs SRS {srs_per:.1}s/triple"
        );
    }

    #[test]
    fn wcs_and_scs_run_to_convergence() {
        let kg = kgae_graph::datasets::nell();
        for design in [SamplingDesign::Wcs, SamplingDesign::Scs] {
            let r = run(&kg, design, IntervalMethod::Wilson, 3);
            assert!(r.converged, "{}", design.name());
            assert!(r.interval.moe() <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn budget_cap_reports_non_convergence() {
        let kg = kgae_graph::datasets::factbench();
        let cfg = EvalConfig {
            max_observations: Some(50),
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let r = evaluate(
            &kg,
            &OracleAnnotator,
            SamplingDesign::Srs,
            &IntervalMethod::Wilson,
            &cfg,
            &mut rng,
        )
        .unwrap();
        // FACTBENCH at μ=0.54 needs ~378 triples; 50 cannot converge.
        assert!(!r.converged);
        assert!(r.observations >= 50);
    }

    #[test]
    fn cost_budget_exhaustion_reports_non_convergence() {
        // §6.5: a budget too small for convergence terminates the audit
        // prematurely but still yields an estimate and interval.
        let kg = kgae_graph::datasets::factbench();
        let cfg = EvalConfig {
            max_cost_seconds: Some(3_600.0), // one annotator-hour
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let r = evaluate(
            &kg,
            &OracleAnnotator,
            SamplingDesign::Srs,
            &IntervalMethod::ahpd_default(),
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert!(!r.converged);
        assert!(r.cost_seconds >= 3_600.0);
        assert!(r.cost_seconds < 3_700.0, "overshoot: {}", r.cost_seconds);
        assert!(r.interval.moe() > 0.05);
    }

    #[test]
    fn exhausting_a_tiny_kg_yields_the_exact_accuracy() {
        // 40-triple KG at μ = 0.5 can never reach MoE ≤ 0.05 by sampling;
        // the framework annotates everything and returns μ exactly.
        let kg = kgae_graph::datasets::syn_scaled(40, 10, 0.5, 123);
        let mut rng = SmallRng::seed_from_u64(1);
        let r = evaluate(
            &kg,
            &OracleAnnotator,
            SamplingDesign::Srs,
            &IntervalMethod::Wilson,
            &EvalConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(r.converged);
        assert_eq!(r.annotated_triples, 40);
        assert_eq!(r.interval.width(), 0.0);
        // Hashed labels: compare against the realized accuracy of the 40
        // labels, not the nominal generation rate.
        assert!((r.mu_hat - kg.measure_accuracy()).abs() < 1e-12);
    }

    #[test]
    fn designs_report_names() {
        assert_eq!(SamplingDesign::Srs.name(), "SRS");
        assert_eq!(SamplingDesign::Twcs { m: 3 }.name(), "TWCS(m=3)");
        assert_eq!(SamplingDesign::Wcs.name(), "WCS");
        assert_eq!(SamplingDesign::Scs.name(), "SCS");
    }

    #[test]
    fn design_and_method_wire_names_round_trip() {
        let designs = [
            SamplingDesign::Srs,
            SamplingDesign::Twcs { m: 5 },
            SamplingDesign::Wcs,
            SamplingDesign::Scs,
        ];
        for d in designs {
            assert_eq!(d.canonical_name().parse::<SamplingDesign>().unwrap(), d);
        }
        assert!("pps".parse::<SamplingDesign>().is_err());

        use kgae_intervals::BetaPrior;
        let methods = [
            IntervalMethod::Wald,
            IntervalMethod::Wilson,
            IntervalMethod::Et(BetaPrior::KERMAN),
            IntervalMethod::Hpd(BetaPrior::UNIFORM),
            IntervalMethod::ahpd_default(),
        ];
        for m in methods {
            assert_eq!(m.canonical_name().parse::<IntervalMethod>().unwrap(), m);
        }
        assert_eq!(
            "et".parse::<IntervalMethod>().unwrap(),
            IntervalMethod::Et(BetaPrior::JEFFREYS)
        );
        for bad in ["", "waldo", "et[", "et[beta(80,20)]", "hpd[kermann]"] {
            assert!(bad.parse::<IntervalMethod>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let kg = kgae_graph::datasets::dbpedia();
        let a = run(
            &kg,
            SamplingDesign::Twcs { m: 3 },
            IntervalMethod::ahpd_default(),
            77,
        );
        let b = run(
            &kg,
            SamplingDesign::Twcs { m: 3 },
            IntervalMethod::ahpd_default(),
            77,
        );
        assert_eq!(a, b);
    }
}
