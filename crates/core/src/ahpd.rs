//! The adaptive HPD (aHPD) algorithm — Algorithm 1 of the paper.
//!
//! aHPD removes the prior-selection problem (§4.4): no single
//! uninformative prior is most efficient across the whole accuracy space
//! (Kerman wins in the extremes, Uniform in the center, Jeffreys
//! nowhere), and the region the estimate will land in is unknowable in
//! advance. So the algorithm runs *all* candidate priors concurrently,
//! builds one `1-α` HPD interval per prior at every iteration, and lets
//! the smallest interval drive the stopping rule — the most efficient
//! outcome among the competing solutions, chosen post hoc.
//!
//! This module implements the per-iteration interval selection (Algorithm
//! 1 lines 10–24); the enclosing sampling loop (lines 5–25) lives in
//! [`crate::framework`].

use crate::state::{DesignKind, SampleState};
use kgae_intervals::{hpd_interval_warm, BetaPrior, Interval, IntervalError};
use kgae_stats::dist::Beta;

/// Result of one aHPD interval selection.
#[derive(Debug, Clone, PartialEq)]
pub struct AHpdSelection {
    /// The smallest `1-α` HPD interval across the candidate priors
    /// (Algorithm 1, line 23).
    pub interval: Interval,
    /// Index (into the priors slice) of the winning prior.
    pub winner: usize,
    /// The competing intervals, one per prior, for diagnostics.
    pub candidates: Vec<Interval>,
}

/// Algorithm 1, lines 10–24: compute the design-effect-adjusted posterior
/// for each prior, build each `1-α` HPD interval (the limiting cases
/// Eq. 10/11 are dispatched inside [`kgae_intervals::hpd_interval`] by
/// posterior shape,
/// which subsumes the `τ = n` / `τ = 0` branches of lines 15–18), and
/// select the smallest.
///
/// # Errors
///
/// Propagates interval-construction failures; with at least one valid
/// prior and one annotation these do not occur in practice.
///
/// # Panics
///
/// Panics if `priors` is empty or the state holds no annotations.
pub fn ahpd_select(
    state: &SampleState,
    alpha: f64,
    priors: &[BetaPrior],
) -> Result<AHpdSelection, IntervalError> {
    ahpd_select_warm(state, alpha, priors, &mut vec![None; priors.len()])
}

/// [`ahpd_select`] with per-prior warm starts carried across the
/// iterative framework's successive calls (pure constant-factor speedup;
/// the HPD optimum is unique, so results are unchanged).
pub fn ahpd_select_warm(
    state: &SampleState,
    alpha: f64,
    priors: &[BetaPrior],
    warm: &mut Vec<Option<(f64, f64)>>,
) -> Result<AHpdSelection, IntervalError> {
    assert!(!priors.is_empty(), "aHPD needs at least one prior");
    assert!(state.n() > 0, "aHPD needs at least one annotation");

    // Lines 10–12: annotation outcome (exact integer counts under SRS,
    // design-effect-corrected effective counts under cluster designs).
    let posteriors = posteriors_for_state(state, priors)?;
    ahpd_select_posteriors(&posteriors, alpha, warm)
}

/// Per-prior posteriors for the current sample: the conjugate update of
/// Algorithm 1 line 14, with the design-effect correction of line 12
/// applied only where a complex design requires it. SRS uses the exact
/// integer counts so the posterior parameters (and the cached
/// normalization constants maintained incrementally by the framework)
/// are reproducible to the bit.
pub(crate) fn posteriors_for_state(
    state: &SampleState,
    priors: &[BetaPrior],
) -> Result<Vec<Beta>, IntervalError> {
    match state.kind() {
        DesignKind::Srs => Ok(priors
            .iter()
            .map(|p| p.posterior(state.tau(), state.n()))
            .collect()),
        DesignKind::Cluster => {
            let eff = state.effective();
            priors
                .iter()
                .map(|p| p.posterior_effective(eff.mu, eff.n_eff).map_err(Into::into))
                .collect()
        }
    }
}

/// Algorithm 1 lines 14–24 against precomputed posteriors: build each
/// `1-α` HPD interval and select the smallest. Exposed to the framework
/// so incrementally-maintained posteriors skip reconstruction entirely.
pub(crate) fn ahpd_select_posteriors(
    posteriors: &[Beta],
    alpha: f64,
    warm: &mut Vec<Option<(f64, f64)>>,
) -> Result<AHpdSelection, IntervalError> {
    assert!(!posteriors.is_empty(), "aHPD needs at least one prior");
    warm.resize(posteriors.len(), None);

    let mut candidates = Vec::with_capacity(posteriors.len());
    for (i, posterior) in posteriors.iter().enumerate() {
        let interval = match hpd_interval_warm(posterior, alpha, warm[i]) {
            Ok(interval) => {
                warm[i] = Some((interval.lower(), interval.upper()));
                interval
            }
            // A sub-uniform prior with (near-)zero effective evidence
            // yields a U-shaped posterior with no single HPD interval.
            // That candidate carries no usable information this round:
            // give it the full-range sentinel (width 1, MoE 0.5) so it
            // cannot win nor stop the loop, and let better-conditioned
            // priors compete.
            Err(IntervalError::UShapedPosterior { .. }) => Interval::new(0.0, 1.0),
            Err(e) => return Err(e),
        };
        candidates.push(interval);
    }

    // Line 23: argmin of the interval widths.
    let winner = candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.width()
                .partial_cmp(&b.width())
                .expect("interval widths are finite")
        })
        .map(|(i, _)| i)
        .expect("candidates nonempty");

    Ok(AHpdSelection {
        interval: candidates[winner],
        winner,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srs_state(tau: u64, n: u64) -> SampleState {
        let mut s = SampleState::new_srs();
        for i in 0..n {
            s.record_triple(i < tau);
        }
        s
    }

    #[test]
    fn selects_the_smallest_candidate() {
        let state = srs_state(29, 30);
        let sel = ahpd_select(&state, 0.05, &BetaPrior::UNINFORMATIVE).unwrap();
        for c in &sel.candidates {
            assert!(sel.interval.width() <= c.width() + 1e-12);
        }
        assert_eq!(sel.candidates.len(), 3);
        assert!((sel.interval.width() - sel.candidates[sel.winner].width()).abs() < 1e-15);
    }

    #[test]
    fn extreme_region_prefers_kerman() {
        // All-correct outcome: Fig. 3 says Kerman is optimal near μ = 1.
        let state = srs_state(30, 30);
        let sel = ahpd_select(&state, 0.05, &BetaPrior::UNINFORMATIVE).unwrap();
        assert_eq!(BetaPrior::UNINFORMATIVE[sel.winner].name, "Kerman");
    }

    #[test]
    fn central_region_prefers_uniform() {
        let state = srs_state(15, 30);
        let sel = ahpd_select(&state, 0.05, &BetaPrior::UNINFORMATIVE).unwrap();
        assert_eq!(BetaPrior::UNINFORMATIVE[sel.winner].name, "Uniform");
    }

    #[test]
    fn jeffreys_never_wins_over_the_tau_range() {
        for tau in 0..=30u64 {
            let state = srs_state(tau, 30);
            let sel = ahpd_select(&state, 0.05, &BetaPrior::UNINFORMATIVE).unwrap();
            assert_ne!(
                BetaPrior::UNINFORMATIVE[sel.winner].name,
                "Jeffreys",
                "Jeffreys won at τ = {tau}"
            );
        }
    }

    #[test]
    fn informative_prior_can_dominate() {
        // Paper Example 2: reliable prior knowledge shrinks the interval.
        let informative = BetaPrior::informative(90.0, 10.0).unwrap();
        let mut priors = vec![informative];
        priors.extend(BetaPrior::UNINFORMATIVE);
        let state = srs_state(27, 30);
        let sel = ahpd_select(&state, 0.05, &priors).unwrap();
        assert_eq!(sel.winner, 0, "informative prior should win");
    }

    #[test]
    fn works_with_cluster_states() {
        let mut s = SampleState::new_cluster();
        for i in 0..15 {
            let m = if i % 3 == 0 { 1.0 } else { 0.9 };
            s.record_cluster_draw(m, (m * 3.0).round() as u64, 3);
        }
        let sel = ahpd_select(&s, 0.05, &BetaPrior::UNINFORMATIVE).unwrap();
        assert!(sel.interval.lower() > 0.5);
        assert!(sel.interval.upper() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one prior")]
    fn empty_priors_panics() {
        let state = srs_state(5, 10);
        let _ = ahpd_select(&state, 0.05, &[]);
    }
}

#[cfg(test)]
mod ushape_tests {
    use super::*;
    use crate::state::SampleState;

    #[test]
    fn u_shaped_candidates_get_the_sentinel_and_never_win() {
        // Cluster state engineered so n_eff collapses to the floor of 1:
        // per-draw Hansen–Hurwitz-style estimates with huge variance.
        let mut s = SampleState::new_cluster();
        for i in 0..40 {
            let est = if i % 2 == 0 { 3.0 } else { 0.0 };
            s.record_cluster_draw(est, (est.min(1.0) * 14.0) as u64, 14);
        }
        let eff = s.effective();
        assert!(eff.n_eff >= 1.0, "n_eff floored: {}", eff.n_eff);
        // With n_eff ≈ 1 and μ̂ interior, Kerman's posterior can be
        // U-shaped while Uniform's is proper; aHPD must survive and pick
        // a proper candidate.
        let sel = ahpd_select(&s, 0.05, &BetaPrior::UNINFORMATIVE).unwrap();
        assert!(sel.interval.width() <= 1.0);
        assert!(sel.interval.lower() >= 0.0 && sel.interval.upper() <= 1.0);
    }
}
