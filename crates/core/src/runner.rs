//! Repeated-evaluation harness.
//!
//! Every number in the paper's tables is a mean ± std over 1000 repeated
//! evaluation runs; this module runs those repetitions across threads
//! (crossbeam scoped threads, deterministic per-repetition seeding) and
//! aggregates the metrics the tables report, plus diagnostics (coverage
//! of the true μ, zero-width-halt rate for Example 1).
//!
//! Scheduling is **work-stealing**: workers pull repetition indices from
//! a shared atomic counter instead of owning static chunks. Per-rep
//! wall-time is heavily skewed — a FACTBENCH rep (μ = 0.54, ~380
//! triples) costs an order of magnitude more than a YAGO rep halting at
//! the 30-triple floor — so static chunking leaves threads idle at the
//! tail. Determinism is unaffected: each repetition is seeded by
//! `base_seed + rep` regardless of which worker runs it, and results are
//! re-ordered by repetition index before aggregation.

use crate::annotator::OracleAnnotator;
use crate::framework::{evaluate_prepared, EvalConfig, EvalResult, PreparedDesign, SamplingDesign};
use crate::method::IntervalMethod;
use kgae_graph::{GroundTruth, KnowledgeGraph};
use kgae_stats::descriptive::Summary;
use kgae_stats::htest::{pooled_t_test, TTestResult};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated outcome of `reps` independent evaluation runs.
#[derive(Debug, Clone)]
pub struct RepeatedRuns {
    /// Method display name.
    pub method: String,
    /// Design display name.
    pub design: String,
    /// Distinct annotated triples per run.
    pub triples: Vec<f64>,
    /// Annotation cost in hours per run.
    pub cost_hours: Vec<f64>,
    /// Final accuracy estimates per run.
    pub mu_hats: Vec<f64>,
    /// Runs whose final interval contained the true μ.
    pub coverage_hits: u64,
    /// Runs that halted at the minimum sample with a zero-width interval
    /// (the Example 1 pathology; only Wald produces these).
    pub zero_width_halts: u64,
    /// Runs that hit the observation budget without meeting the MoE.
    pub non_converged: u64,
}

impl RepeatedRuns {
    /// `mean ± std` of the annotated-triples column.
    #[must_use]
    pub fn triples_summary(&self) -> Summary {
        Summary::from_slice(&self.triples)
    }

    /// `mean ± std` of the cost column (hours).
    #[must_use]
    pub fn cost_summary(&self) -> Summary {
        Summary::from_slice(&self.cost_hours)
    }

    /// Empirical coverage of the true accuracy by the final intervals.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.coverage_hits as f64 / self.triples.len() as f64
    }

    /// Mean absolute estimation error against the true accuracy.
    #[must_use]
    pub fn mean_abs_error(&self, mu: f64) -> f64 {
        self.mu_hats.iter().map(|m| (m - mu).abs()).sum::<f64>() / self.mu_hats.len() as f64
    }

    /// Fraction of runs exhibiting the zero-width-halt pathology.
    #[must_use]
    pub fn zero_width_rate(&self) -> f64 {
        self.zero_width_halts as f64 / self.triples.len() as f64
    }
}

/// Independent two-sample t-test between two methods' annotation costs
/// (the paper's † / ‡ significance markers, p < 0.01).
pub fn cost_t_test(a: &RepeatedRuns, b: &RepeatedRuns) -> kgae_stats::Result<TTestResult> {
    pooled_t_test(&a.cost_hours, &b.cost_hours)
}

/// Independent two-sample t-test between two methods' triple counts.
pub fn triples_t_test(a: &RepeatedRuns, b: &RepeatedRuns) -> kgae_stats::Result<TTestResult> {
    pooled_t_test(&a.triples, &b.triples)
}

/// Runs `reps` evaluations with the oracle annotator, in parallel, with
/// per-repetition deterministic seeds (`base_seed + rep`).
///
/// # Panics
///
/// Panics if any repetition fails to construct an interval — with valid
/// configs this indicates a programming error, not a data condition.
pub fn repeat_evaluation<K>(
    kg: &K,
    design: SamplingDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    reps: u64,
    base_seed: u64,
) -> RepeatedRuns
where
    K: KnowledgeGraph + GroundTruth,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(reps.max(1) as usize);
    // Build PPS tables once; every repetition on every thread shares
    // the same PreparedDesign by reference (the alias table inside is
    // Arc-shared, so even per-session setup copies a pointer at most).
    let prepared = &PreparedDesign::new(kg, design);

    // Work-stealing dispenser: each worker claims the next unclaimed
    // repetition index; skewed per-rep costs self-balance.
    let next_rep = AtomicU64::new(0);
    let mut all_results: Vec<Vec<(u64, EvalResult)>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let method = method.clone();
            let cfg = cfg.clone();
            let next_rep = &next_rep;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                loop {
                    let rep = next_rep.fetch_add(1, Ordering::Relaxed);
                    if rep >= reps {
                        break;
                    }
                    let mut rng = SmallRng::seed_from_u64(base_seed.wrapping_add(rep));
                    let r =
                        evaluate_prepared(kg, &OracleAnnotator, prepared, &method, &cfg, &mut rng)
                            .expect("evaluation must not fail under valid configuration");
                    out.push((rep, r));
                }
                out
            }));
        }
        for h in handles {
            all_results.push(h.join().expect("worker thread panicked"));
        }
    })
    .expect("crossbeam scope failed");

    // Restore repetition order so aggregates (and the per-rep vectors
    // exposed to t-tests) are independent of scheduling.
    let mut ordered: Vec<(u64, EvalResult)> = all_results.into_iter().flatten().collect();
    ordered.sort_unstable_by_key(|(rep, _)| *rep);

    let mu = kg.true_accuracy();
    let mut runs = RepeatedRuns {
        method: method.name(),
        design: design.name(),
        triples: Vec::with_capacity(reps as usize),
        cost_hours: Vec::with_capacity(reps as usize),
        mu_hats: Vec::with_capacity(reps as usize),
        coverage_hits: 0,
        zero_width_halts: 0,
        non_converged: 0,
    };
    for (_, r) in ordered {
        runs.triples.push(r.annotated_triples as f64);
        runs.cost_hours.push(r.cost_hours());
        runs.mu_hats.push(r.mu_hat);
        if r.interval.contains(mu) {
            runs.coverage_hits += 1;
        }
        // "Halted at the minimum sample" is reported by the framework
        // itself (first consultation of the stopping rule). The previous
        // detector compared `observations == min_triples`, which under
        // cluster designs silently missed floor halts whose draws
        // overshoot the 30-observation floor (observations ≠ distinct
        // triples ≠ the check schedule).
        if r.converged && r.interval.width() == 0.0 && r.halted_at_floor {
            runs.zero_width_halts += 1;
        }
        if !r.converged {
            runs.non_converged += 1;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_runs_aggregate_consistently() {
        let kg = kgae_graph::datasets::nell();
        let runs = repeat_evaluation(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::Wilson,
            &EvalConfig::default(),
            40,
            7,
        );
        assert_eq!(runs.triples.len(), 40);
        assert_eq!(runs.cost_hours.len(), 40);
        assert_eq!(runs.non_converged, 0);
        let s = runs.triples_summary();
        assert!(s.mean >= 30.0);
        // Estimates unbiased: mean μ̂ close to 0.91.
        let mean_mu = runs.mu_hats.iter().sum::<f64>() / runs.mu_hats.len() as f64;
        assert!((mean_mu - 0.91).abs() < 0.05, "mean μ̂ = {mean_mu}");
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let kg = kgae_graph::datasets::yago();
        let a = repeat_evaluation(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::ahpd_default(),
            &EvalConfig::default(),
            24,
            99,
        );
        let b = repeat_evaluation(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::ahpd_default(),
            &EvalConfig::default(),
            24,
            99,
        );
        // Per-rep seeding makes results independent of thread scheduling,
        // but chunk order could vary; sorted vectors must be identical.
        let mut ta = a.triples.clone();
        let mut tb = b.triples.clone();
        ta.sort_by(f64::total_cmp);
        tb.sort_by(f64::total_cmp);
        assert_eq!(ta, tb);
    }

    #[test]
    fn t_tests_between_methods() {
        let kg = kgae_graph::datasets::nell();
        let wald = repeat_evaluation(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::Wald,
            &EvalConfig::default(),
            30,
            1,
        );
        let same = repeat_evaluation(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::Wald,
            &EvalConfig::default(),
            30,
            1,
        );
        let t = cost_t_test(&wald, &same).unwrap();
        assert!(!t.significant_at(0.01), "identical runs must not differ");
        let t2 = triples_t_test(&wald, &same).unwrap();
        assert!((t2.t).abs() < 1e-9);
    }

    #[test]
    fn zero_width_halt_detector_counts_cluster_floor_halts() {
        // Regression: the old detector compared `observations ==
        // min_triples`, but cluster draws land in batches, so a run that
        // halts at its *first* stopping check usually holds 31–32
        // observations and was silently missed. YAGO (μ = 0.99) under
        // TWCS/Wald produces such floor halts with zero-width intervals
        // in a large fraction of runs.
        let kg = kgae_graph::datasets::yago();
        let reps = 60;
        let runs = repeat_evaluation(
            &kg,
            SamplingDesign::Twcs { m: 3 },
            &IntervalMethod::Wald,
            &EvalConfig::default(),
            reps,
            11,
        );
        assert!(
            runs.zero_width_halts > 0,
            "no zero-width floor halts detected on YAGO/TWCS/Wald"
        );

        // Demonstrate the miscount directly: among the individual runs,
        // floor halts with observations ≠ min_triples exist — exactly
        // the runs the old `observations == min_triples` test dropped.
        let cfg = EvalConfig::default();
        let prepared = crate::framework::PreparedDesign::new(&kg, SamplingDesign::Twcs { m: 3 });
        let mut overshooting_floor_halts = 0u64;
        for rep in 0..reps {
            let mut rng = SmallRng::seed_from_u64(11u64.wrapping_add(rep));
            let r = evaluate_prepared(
                &kg,
                &OracleAnnotator,
                &prepared,
                &IntervalMethod::Wald,
                &cfg,
                &mut rng,
            )
            .unwrap();
            if r.converged
                && r.interval.width() == 0.0
                && r.halted_at_floor
                && r.observations != cfg.min_triples
            {
                overshooting_floor_halts += 1;
            }
        }
        assert!(
            overshooting_floor_halts > 0,
            "expected floor halts whose observations overshoot min_triples"
        );
    }

    #[test]
    fn coverage_is_high_for_wilson() {
        let kg = kgae_graph::datasets::dbpedia();
        let runs = repeat_evaluation(
            &kg,
            SamplingDesign::Srs,
            &IntervalMethod::Wilson,
            &EvalConfig::default(),
            60,
            5,
        );
        assert!(runs.coverage() > 0.85, "coverage = {}", runs.coverage());
    }
}
