//! Annotation models.
//!
//! The paper's framework obtains correctness labels from human annotators
//! (phase 2 of Figure 1). The reproduction simulates them as transforms of
//! the gold label: a perfect oracle (what the paper's experiments assume,
//! since their datasets *are* the gold labels), a noisy single annotator,
//! and the majority-vote panel of 3–5 annotators discussed in §6.5.

use rand::Rng;

/// A (possibly imperfect) annotator producing a correctness label given
/// the gold label.
pub trait Annotator: Send + Sync {
    /// Produces the label recorded for a triple whose gold label is
    /// `truth`.
    fn annotate<R: Rng + ?Sized>(&self, truth: bool, rng: &mut R) -> bool;

    /// How many human judgments one recorded label costs (1 for a single
    /// annotator, `k` for a majority-vote panel). Scales the cost model.
    fn judgments_per_label(&self) -> u64 {
        1
    }
}

/// Reads the gold label verbatim — the paper's experimental setting.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleAnnotator;

impl Annotator for OracleAnnotator {
    #[inline]
    fn annotate<R: Rng + ?Sized>(&self, truth: bool, _rng: &mut R) -> bool {
        truth
    }
}

/// Flips the gold label with a fixed error probability — a single
/// imperfect crowd worker.
#[derive(Debug, Clone, Copy)]
pub struct NoisyAnnotator {
    /// Probability of recording the wrong label.
    pub error_rate: f64,
}

impl NoisyAnnotator {
    /// Creates a noisy annotator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= error_rate <= 1`.
    #[must_use]
    pub fn new(error_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error_rate {error_rate} outside [0, 1]"
        );
        Self { error_rate }
    }
}

impl Annotator for NoisyAnnotator {
    fn annotate<R: Rng + ?Sized>(&self, truth: bool, rng: &mut R) -> bool {
        if rng.gen_bool(self.error_rate) {
            !truth
        } else {
            truth
        }
    }
}

/// A panel of `k` independent noisy annotators aggregated by majority
/// vote (the real-world setting of §6.5: "3-5 annotators per fact, whose
/// annotations are aggregated to determine the final correctness label").
#[derive(Debug, Clone, Copy)]
pub struct MajorityVoteAnnotator {
    /// Panel size (odd, so ties cannot happen).
    pub panel: u64,
    /// Per-annotator error probability.
    pub error_rate: f64,
}

impl MajorityVoteAnnotator {
    /// Creates a majority-vote panel.
    ///
    /// # Panics
    ///
    /// Panics if `panel` is even or zero, or `error_rate` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(panel: u64, error_rate: f64) -> Self {
        assert!(
            panel % 2 == 1 && panel > 0,
            "panel must be odd, got {panel}"
        );
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error_rate {error_rate} outside [0, 1]"
        );
        Self { panel, error_rate }
    }
}

impl Annotator for MajorityVoteAnnotator {
    fn annotate<R: Rng + ?Sized>(&self, truth: bool, rng: &mut R) -> bool {
        let mut votes_for_truth = 0u64;
        for _ in 0..self.panel {
            let vote = if rng.gen_bool(self.error_rate) {
                !truth
            } else {
                truth
            };
            if vote == truth {
                votes_for_truth += 1;
            }
        }
        if votes_for_truth * 2 > self.panel {
            truth
        } else {
            !truth
        }
    }

    fn judgments_per_label(&self) -> u64 {
        self.panel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_is_exact() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(OracleAnnotator.annotate(true, &mut rng));
            assert!(!OracleAnnotator.annotate(false, &mut rng));
        }
        assert_eq!(OracleAnnotator.judgments_per_label(), 1);
    }

    #[test]
    fn noisy_error_rate_is_calibrated() {
        let a = NoisyAnnotator::new(0.2);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let errors = (0..n).filter(|_| !a.annotate(true, &mut rng)).count();
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn majority_vote_reduces_error() {
        // With per-annotator error 0.2, a 5-panel majority errs with
        // probability Σ_{k≥3} C(5,k) 0.2^k 0.8^{5-k} ≈ 0.0579.
        let a = MajorityVoteAnnotator::new(5, 0.2);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let errors = (0..n).filter(|_| !a.annotate(true, &mut rng)).count();
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.0579).abs() < 0.01, "rate = {rate}");
        assert_eq!(a.judgments_per_label(), 5);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_panel_rejected() {
        let _ = MajorityVoteAnnotator::new(4, 0.1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_error_rate_rejected() {
        let _ = NoisyAnnotator::new(1.5);
    }
}
