//! The defining contract of the comparative engine (acceptance
//! criterion of the multi-method refactor): a [`ComparativeSession`]
//! with primary method M produces a primary interval and stopping
//! point **bit-identical** to a standalone [`EvaluationSession`]
//! running M alone with the same seed/design/config — and every rival
//! that converges inside the shared stream reports the exact stopping
//! point and interval a standalone campaign of *that* method would
//! have reported.

use kgae_core::comparative::ComparativeSession;
use kgae_core::{
    compared_methods, AnnotationRequest, ComparativeResult, EvalConfig, EvalResult,
    EvaluationSession, IntervalMethod, PreparedDesign, SamplingDesign,
};
use kgae_graph::{CompactKg, GroundTruth};
use kgae_sampling::ComparePrimary;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn datasets() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("yago"),
        Just("nell"),
        Just("dbpedia"),
        Just("factbench"),
    ]
}

fn dataset(name: &str) -> CompactKg {
    match name {
        "yago" => kgae_graph::datasets::yago(),
        "nell" => kgae_graph::datasets::nell(),
        "dbpedia" => kgae_graph::datasets::dbpedia(),
        _ => kgae_graph::datasets::factbench(),
    }
}

fn primaries() -> impl Strategy<Value = ComparePrimary> {
    prop_oneof![
        Just(ComparePrimary::Wald),
        Just(ComparePrimary::Wilson),
        Just(ComparePrimary::Et),
        Just(ComparePrimary::AHpd),
    ]
}

fn designs() -> impl Strategy<Value = SamplingDesign> {
    // The issue's shared-stream designs; the wire fixes SRS, the core
    // engine also supports cluster streams.
    prop_oneof![
        Just(SamplingDesign::Srs),
        Just(SamplingDesign::Twcs { m: 3 })
    ]
}

fn drive_comparative(
    kg: &CompactKg,
    prepared: &PreparedDesign,
    primary: ComparePrimary,
    cfg: &EvalConfig,
    seed: u64,
) -> ComparativeResult {
    let mut session = ComparativeSession::new(kg, prepared, primary, cfg, seed);
    let mut labels = Vec::new();
    while let Some(request) = session.next_request(16).unwrap() {
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
    }
    session
        .into_result()
        .expect("stopped campaign has a result")
}

fn drive_standalone(
    kg: &CompactKg,
    prepared: &PreparedDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
) -> EvalResult {
    let mut session =
        EvaluationSession::from_prepared(kg, prepared, method, cfg, SmallRng::seed_from_u64(seed));
    let mut request = AnnotationRequest::default();
    let mut labels = Vec::new();
    while session.next_request_into(1, &mut request).unwrap() {
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
    }
    session.into_result().expect("stopped session has a result")
}

fn check_against_standalones(
    kg: &CompactKg,
    prepared: &PreparedDesign,
    primary: ComparePrimary,
    cfg: &EvalConfig,
    seed: u64,
    what: &str,
) {
    let comparative = drive_comparative(kg, prepared, primary, cfg, seed);
    let roster = compared_methods();

    // 1. The primary is bit-identical to its standalone twin.
    let standalone_primary =
        drive_standalone(kg, prepared, &roster[primary.roster_index()], cfg, seed);
    assert_eq!(
        comparative.primary, standalone_primary,
        "{what}: primary diverged from the standalone run"
    );
    let shared_total = comparative.primary.observations;

    // 2. Every rival row is the standalone counterfactual.
    for (index, method) in roster.iter().enumerate() {
        let row = &comparative.methods[index];
        assert_eq!(row.method, method.canonical_name(), "{what}: roster order");
        assert_eq!(row.primary, index == primary.roster_index());
        if row.primary {
            assert_eq!(row.stopped_at, Some(shared_total));
            continue;
        }
        let standalone = drive_standalone(kg, prepared, method, cfg, seed);
        if row.converged {
            // The rival's MoE fired inside the shared stream: its
            // counterfactual stopping point, estimate and interval must
            // be the standalone run's, bit for bit.
            assert!(
                standalone.converged,
                "{what}/{}: rival converged but the standalone did not",
                row.method
            );
            assert_eq!(
                row.stopped_at,
                Some(standalone.observations),
                "{what}/{}: counterfactual stopping point",
                row.method
            );
            assert_eq!(
                row.estimate.unwrap().to_bits(),
                standalone.mu_hat.to_bits(),
                "{what}/{}: counterfactual estimate bits",
                row.method
            );
            let interval = row.interval.unwrap();
            assert_eq!(
                (interval.lower().to_bits(), interval.upper().to_bits()),
                (
                    standalone.interval.lower().to_bits(),
                    standalone.interval.upper().to_bits()
                ),
                "{what}/{}: counterfactual interval bits",
                row.method
            );
        } else {
            // The rival did not converge inside the shared stream, so a
            // standalone run of it must stop later (or stop at the same
            // count for a non-MoE reason, e.g. both exhausted the KG).
            assert!(
                standalone.observations >= shared_total,
                "{what}/{}: standalone stopped at {} < shared total {}",
                row.method,
                standalone.observations,
                shared_total
            );
            if standalone.converged {
                assert!(
                    standalone.observations > shared_total,
                    "{what}/{}: standalone MoE fired within the shared stream \
                     but the rival row says it did not",
                    row.method
                );
            }
            assert_eq!(row.stopped_at, None);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn comparative_primary_and_counterfactuals_match_standalone_runs(
        ds in datasets(),
        design in designs(),
        primary in primaries(),
        seed in 0u64..10_000,
    ) {
        let kg = dataset(ds);
        let cfg = EvalConfig::default();
        let prepared = PreparedDesign::new(&kg, design);
        check_against_standalones(
            &kg,
            &prepared,
            primary,
            &cfg,
            seed,
            &format!("{ds}/{}/{}", design.name(), primary.canonical_name()),
        );
    }
}

#[test]
fn every_primary_pins_the_canonical_cell() {
    // Deterministic variant on the benchmark cell (SRS / NELL), every
    // primary, several seeds — quick failure isolation for the
    // property above.
    let kg = kgae_graph::datasets::nell();
    let cfg = EvalConfig::default();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    for primary in ComparePrimary::ALL {
        for seed in [0u64, 7, 101] {
            check_against_standalones(
                &kg,
                &prepared,
                primary,
                &cfg,
                seed,
                &format!("nell/srs/{}", primary.canonical_name()),
            );
        }
    }
}

#[test]
fn shared_stream_costs_a_fraction_of_independent_campaigns() {
    // The economic claim behind the engine: one shared stream prices
    // the whole comparison table at the primary's annotation cost,
    // strictly below the four independent campaigns it replaces.
    let kg = kgae_graph::datasets::nell();
    let cfg = EvalConfig::default();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    for seed in [1u64, 42] {
        let comparative = drive_comparative(&kg, &prepared, ComparePrimary::AHpd, &cfg, seed);
        let independent: u64 = compared_methods()
            .iter()
            .map(|method| drive_standalone(&kg, &prepared, method, &cfg, seed).observations)
            .sum();
        assert!(
            comparative.primary.observations < independent,
            "seed {seed}: shared stream used {} annotations vs {} across \
             four independent campaigns",
            comparative.primary.observations,
            independent
        );
    }
}

#[test]
fn budget_exhaustion_freezes_non_converged_rows() {
    // A budget far below any stopping point: the primary reports
    // BudgetExhausted and every row survives with converged rivals
    // impossible, estimate present, no stopping point.
    let kg = kgae_graph::datasets::factbench();
    let cfg = EvalConfig {
        max_observations: Some(60),
        ..EvalConfig::default()
    };
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    let result = drive_comparative(&kg, &prepared, ComparePrimary::AHpd, &cfg, 9);
    assert!(!result.primary.converged);
    assert!(result.primary.observations >= 60);
    for row in &result.methods {
        assert!(
            !row.converged,
            "{} converged under a 60-label budget",
            row.method
        );
        assert!(row.estimate.is_some());
        assert_eq!(
            row.stopped_at,
            if row.primary {
                Some(result.primary.observations)
            } else {
                None
            }
        );
    }
}
