//! The cancel-request rollback contract, for every engine kind: after
//! [`SessionEngine::cancel_request`] the engine snapshots cleanly, a
//! re-poll — on the same engine or on one resumed from that snapshot —
//! regenerates the bit-identical batch, and the campaign finishes
//! bit-identical to an uninterrupted twin. This is the property that
//! lets a draining server suspend mid-batch sessions without perturbing
//! their evaluation trajectories.

use kgae_core::{
    EngineRequest, EngineSpec, EvalConfig, IntervalMethod, PreparedDesign, SamplingDesign,
    SessionError, StratifiedConfig,
};
use kgae_graph::{CompactKg, GroundTruth, Stratification};
use kgae_sampling::ComparePrimary;

fn kg() -> CompactKg {
    kgae_graph::datasets::syn_scaled(3_000, 400, 0.8, 17)
}

fn oracle_labels(kg: &CompactKg, request: &EngineRequest) -> Vec<bool> {
    request
        .request
        .triples
        .iter()
        .map(|st| kg.is_correct(st.triple))
        .collect()
}

fn request_fingerprint(request: &EngineRequest) -> (Vec<u64>, u64, Option<u32>) {
    (
        request
            .request
            .triples
            .iter()
            .map(|st| st.triple.index())
            .collect(),
        request.request.units,
        request.stratum.as_ref().map(|(h, _)| *h),
    )
}

/// Runs the full property against one engine spec: warm up, cancel a
/// mid-campaign batch, check re-poll identity on both the original and
/// a snapshot-resumed engine, then check final-result identity against
/// an uninterrupted twin.
fn assert_cancel_exactness(spec: &EngineSpec<'_, '_>, kg: &CompactKg, batch: u64) {
    let mut engine = spec.build();
    let mut twin = spec.build();

    // Fresh engines owe nothing, so cancel must refuse.
    assert!(matches!(
        engine.cancel_request(),
        Err(SessionError::NoRequestPending)
    ));

    // Warm up a few batches, keeping the twin in lockstep.
    for _ in 0..3 {
        let request = engine.next_request(batch).unwrap().expect("still running");
        let labels = oracle_labels(kg, &request);
        engine.submit(&labels).unwrap();
        let twin_request = twin.next_request(batch).unwrap().expect("still running");
        assert_eq!(
            request_fingerprint(&request),
            request_fingerprint(&twin_request)
        );
        twin.submit(&labels).unwrap();
    }

    // Poll mid-campaign, then withdraw the batch.
    let withdrawn = engine.next_request(batch).unwrap().expect("still running");
    assert!(engine.has_pending_request());
    assert!(engine.snapshot().is_err(), "pending batch blocks snapshot");
    engine.cancel_request().unwrap();
    assert!(!engine.has_pending_request());

    // The cancelled engine snapshots cleanly, and both the original and
    // the resumed engine regenerate the withdrawn batch bit-identical.
    let bytes = engine.snapshot().expect("cancelled engine snapshots");
    let mut resumed = spec.resume(&bytes).unwrap();
    let re_polled = engine.next_request(batch).unwrap().expect("still running");
    assert_eq!(
        request_fingerprint(&withdrawn),
        request_fingerprint(&re_polled),
        "re-poll after cancel must regenerate the batch"
    );
    let resumed_poll = resumed.next_request(batch).unwrap().expect("still running");
    assert_eq!(
        request_fingerprint(&withdrawn),
        request_fingerprint(&resumed_poll),
        "resume after cancel must regenerate the batch"
    );

    // Drive the resumed engine and the never-interrupted twin to the
    // end: identical outcomes.
    let labels = oracle_labels(kg, &resumed_poll);
    resumed.submit(&labels).unwrap();
    while let Some(request) = resumed.next_request(batch).unwrap() {
        let labels = oracle_labels(kg, &request);
        resumed.submit(&labels).unwrap();
    }
    while let Some(request) = twin.next_request(batch).unwrap() {
        let labels = oracle_labels(kg, &request);
        twin.submit(&labels).unwrap();
    }
    let outcome = resumed.into_outcome().expect("stopped");
    let twin_outcome = twin.into_outcome().expect("stopped");
    assert_eq!(outcome.reason, twin_outcome.reason);
    assert_eq!(outcome.result, twin_outcome.result);
    assert_eq!(outcome.strata, twin_outcome.strata);
    assert_eq!(outcome.methods, twin_outcome.methods);
}

#[test]
fn plain_engine_cancel_is_exact() {
    let kg = kg();
    // SRS and TWCS cover both driver-state families (the displaced-entry
    // rejection table and the bounded PPS draw counter); WCS converges
    // too fast on this KG to survive the warm-up.
    for design in [SamplingDesign::Srs, SamplingDesign::Twcs { m: 3 }] {
        let prepared = PreparedDesign::new(&kg, design);
        let method = IntervalMethod::ahpd_default();
        let config = EvalConfig::default();
        let spec = EngineSpec::Plain {
            kg: &kg,
            prepared: &prepared,
            method: &method,
            config: &config,
            seed: 41,
        };
        assert_cancel_exactness(&spec, &kg, 6);
    }
}

#[test]
fn stratified_engine_cancel_is_exact() {
    let kg = kg();
    let stratification = Stratification::by_hash(&kg, 4, 9);
    let method = IntervalMethod::ahpd_default();
    let config = StratifiedConfig::default();
    let spec = EngineSpec::Stratified {
        kg: &kg,
        stratification: &stratification,
        method: &method,
        config: &config,
        seed: 23,
    };
    assert_cancel_exactness(&spec, &kg, 6);
}

#[test]
fn comparative_engine_cancel_is_exact() {
    let kg = kg();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    let config = EvalConfig::default();
    let spec = EngineSpec::Comparative {
        kg: &kg,
        prepared: &prepared,
        primary: ComparePrimary::AHpd,
        config: &config,
        seed: 37,
    };
    assert_cancel_exactness(&spec, &kg, 1);
}

#[test]
fn plain_non_cancellable_poll_refuses_cancel() {
    use kgae_core::EvaluationSession;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let kg = kg();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    let method = IntervalMethod::Wilson;
    let config = EvalConfig::default();
    let mut session = EvaluationSession::from_prepared(
        &kg,
        &prepared,
        &method,
        &config,
        SmallRng::seed_from_u64(5),
    );
    // The plain poll records no rollback point, so cancel must refuse
    // rather than rewind to a wrong state.
    let request = session.next_request(4).unwrap().unwrap();
    assert!(matches!(
        session.cancel_request(),
        Err(SessionError::SnapshotUnavailable(_))
    ));
    // The batch is still outstanding and can be submitted normally.
    let labels: Vec<bool> = request
        .triples
        .iter()
        .map(|st| kg.is_correct(st.triple))
        .collect();
    session.submit(&labels).unwrap();
}
