//! Registry-dispatched suspend/resume across every engine kind: for
//! plain × stratified × comparative engines — driven purely through the
//! object-safe `dyn SessionEngine` interface — a snapshot resumed via
//! the tag registry ([`EngineSpec::resume`]) re-snapshots to the
//! **identical bytes**, across seeds × datasets × batch sizes, and the
//! resumed engine finishes bit-identically to the uninterrupted one.

use kgae_core::engine::{peek_any_header, snapshot_engine_kind, EngineSpec, SessionEngine};
use kgae_core::{
    EvalConfig, EvalResult, IntervalMethod, PreparedDesign, SamplingDesign, StratifiedConfig,
};
use kgae_graph::stratify::Stratification;
use kgae_graph::{CompactKg, GroundTruth};
use kgae_sampling::ComparePrimary;
use proptest::prelude::*;

/// Which engine kind a generated case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    PlainSrs,
    PlainTwcs,
    Stratified,
    Comparative,
}

fn kinds() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::PlainSrs),
        Just(Kind::PlainTwcs),
        Just(Kind::Stratified),
        Just(Kind::Comparative),
    ]
}

fn datasets() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("nell"), Just("dbpedia"), Just("factbench")]
}

fn dataset(name: &str) -> CompactKg {
    match name {
        "nell" => kgae_graph::datasets::nell(),
        "dbpedia" => kgae_graph::datasets::dbpedia(),
        _ => kgae_graph::datasets::factbench(),
    }
}

/// Everything a case's `EngineSpec` borrows, built once per case.
struct Resources {
    kg: CompactKg,
    prepared: PreparedDesign,
    stratification: Stratification,
    method: IntervalMethod,
    eval_cfg: EvalConfig,
    strat_cfg: StratifiedConfig,
}

impl Resources {
    fn new(kind: Kind, ds: &str) -> Self {
        let kg = dataset(ds);
        let design = match kind {
            Kind::PlainTwcs => SamplingDesign::Twcs { m: 3 },
            _ => SamplingDesign::Srs,
        };
        let prepared = PreparedDesign::new(&kg, design);
        let stratification = Stratification::by_hash(&kg, 4, 1);
        Self {
            kg,
            prepared,
            stratification,
            method: IntervalMethod::ahpd_default(),
            eval_cfg: EvalConfig::default(),
            strat_cfg: StratifiedConfig::default(),
        }
    }

    fn spec(&self, kind: Kind, seed: u64) -> EngineSpec<'_, '_> {
        match kind {
            Kind::PlainSrs | Kind::PlainTwcs => EngineSpec::Plain {
                kg: &self.kg,
                prepared: &self.prepared,
                method: &self.method,
                config: &self.eval_cfg,
                seed,
            },
            Kind::Stratified => EngineSpec::Stratified {
                kg: &self.kg,
                stratification: &self.stratification,
                method: &self.method,
                config: &self.strat_cfg,
                seed,
            },
            Kind::Comparative => EngineSpec::Comparative {
                kg: &self.kg,
                prepared: &self.prepared,
                primary: ComparePrimary::AHpd,
                config: &self.eval_cfg,
                seed,
            },
        }
    }
}

/// Drives any engine with oracle labels for up to `batches` polls;
/// returns false once the engine stops.
fn drive(kg: &CompactKg, engine: &mut dyn SessionEngine, batches: u64, batch: u64) -> bool {
    let mut labels = Vec::new();
    for _ in 0..batches {
        let Some(polled) = engine.next_request(batch).unwrap() else {
            return false;
        };
        labels.clear();
        labels.extend(
            polled
                .request
                .triples
                .iter()
                .map(|st| kg.is_correct(st.triple)),
        );
        engine.submit(&labels).unwrap();
    }
    true
}

/// Drives an engine to completion, returning its headline result.
fn finish(kg: &CompactKg, mut engine: Box<dyn SessionEngine + '_>) -> EvalResult {
    while drive(kg, engine.as_mut(), u64::MAX, 16) {}
    engine.into_outcome().expect("engine stopped").result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_resume_via_registry_is_byte_identical_for_every_engine_kind(
        kind in kinds(),
        ds in datasets(),
        seed in 0u64..10_000,
        batch in prop_oneof![Just(1u64), Just(7), Just(32)],
        warmup in 1u64..6,
    ) {
        let resources = Resources::new(kind, ds);
        let spec = resources.spec(kind, seed);
        let mut engine = spec.build();
        if !drive(&resources.kg, engine.as_mut(), warmup, batch)
            || engine.stop_reason().is_some()
        {
            // Converged inside the warm-up (possible on easy datasets):
            // nothing left to suspend, the case is vacuous.
            return Ok(());
        }

        // snapshot → resume-via-registry → snapshot: byte-identical,
        // entirely through the dyn interface.
        let snap = engine.snapshot().unwrap();
        prop_assert_eq!(snapshot_engine_kind(&snap).unwrap(), spec.kind());
        prop_assert_eq!(peek_any_header(&snap).unwrap().kind(), spec.kind());
        let resumed = spec.resume(&snap).unwrap();
        prop_assert_eq!(resumed.snapshot().unwrap(), snap.clone());

        // And the resumed engine finishes bit-identically to the
        // uninterrupted one.
        let interrupted = finish(&resources.kg, resumed);
        let straight = finish(&resources.kg, engine);
        prop_assert_eq!(interrupted, straight);
    }
}
