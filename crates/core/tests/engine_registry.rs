//! Registry-dispatched suspend/resume across every engine kind: for
//! plain × stratified × comparative engines — driven purely through the
//! object-safe `dyn SessionEngine` interface — a snapshot resumed via
//! the tag registry ([`EngineSpec::resume`]) re-snapshots to the
//! **identical bytes**, across seeds × datasets × batch sizes, and the
//! resumed engine finishes bit-identically to the uninterrupted one.

use kgae_core::engine::{
    peek_any_header, snapshot_engine_kind, EngineKind, EngineSpec, SessionEngine,
};
use kgae_core::{
    DeltaBatch, EvalConfig, EvalResult, IntervalMethod, MonitorReport, PreparedDesign,
    SamplingDesign, StratifiedConfig,
};
use kgae_graph::stratify::Stratification;
use kgae_graph::{CompactKg, DeltaKg, GroundTruth, KnowledgeGraph};
use kgae_sampling::ComparePrimary;
use proptest::prelude::*;

/// Which engine kind a generated case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    PlainSrs,
    PlainTwcs,
    Stratified,
    Comparative,
}

fn kinds() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::PlainSrs),
        Just(Kind::PlainTwcs),
        Just(Kind::Stratified),
        Just(Kind::Comparative),
    ]
}

fn datasets() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("nell"), Just("dbpedia"), Just("factbench")]
}

fn dataset(name: &str) -> CompactKg {
    match name {
        "nell" => kgae_graph::datasets::nell(),
        "dbpedia" => kgae_graph::datasets::dbpedia(),
        _ => kgae_graph::datasets::factbench(),
    }
}

/// Everything a case's `EngineSpec` borrows, built once per case.
struct Resources {
    kg: CompactKg,
    prepared: PreparedDesign,
    stratification: Stratification,
    method: IntervalMethod,
    eval_cfg: EvalConfig,
    strat_cfg: StratifiedConfig,
}

impl Resources {
    fn new(kind: Kind, ds: &str) -> Self {
        let kg = dataset(ds);
        let design = match kind {
            Kind::PlainTwcs => SamplingDesign::Twcs { m: 3 },
            _ => SamplingDesign::Srs,
        };
        let prepared = PreparedDesign::new(&kg, design);
        let stratification = Stratification::by_hash(&kg, 4, 1);
        Self {
            kg,
            prepared,
            stratification,
            method: IntervalMethod::ahpd_default(),
            eval_cfg: EvalConfig::default(),
            strat_cfg: StratifiedConfig::default(),
        }
    }

    fn spec(&self, kind: Kind, seed: u64) -> EngineSpec<'_, '_> {
        match kind {
            Kind::PlainSrs | Kind::PlainTwcs => EngineSpec::Plain {
                kg: &self.kg,
                prepared: &self.prepared,
                method: &self.method,
                config: &self.eval_cfg,
                seed,
            },
            Kind::Stratified => EngineSpec::Stratified {
                kg: &self.kg,
                stratification: &self.stratification,
                method: &self.method,
                config: &self.strat_cfg,
                seed,
            },
            Kind::Comparative => EngineSpec::Comparative {
                kg: &self.kg,
                prepared: &self.prepared,
                primary: ComparePrimary::AHpd,
                config: &self.eval_cfg,
                seed,
            },
        }
    }
}

/// Drives any engine with oracle labels for up to `batches` polls;
/// returns false once the engine stops.
fn drive(kg: &CompactKg, engine: &mut dyn SessionEngine, batches: u64, batch: u64) -> bool {
    let mut labels = Vec::new();
    for _ in 0..batches {
        let Some(polled) = engine.next_request(batch).unwrap() else {
            return false;
        };
        labels.clear();
        labels.extend(
            polled
                .request
                .triples
                .iter()
                .map(|st| kg.is_correct(st.triple)),
        );
        engine.submit(&labels).unwrap();
    }
    true
}

/// Drives an engine to completion, returning its headline result.
fn finish(kg: &CompactKg, mut engine: Box<dyn SessionEngine + '_>) -> EvalResult {
    while drive(kg, engine.as_mut(), u64::MAX, 16) {}
    engine.into_outcome().expect("engine stopped").result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_resume_via_registry_is_byte_identical_for_every_engine_kind(
        kind in kinds(),
        ds in datasets(),
        seed in 0u64..10_000,
        batch in prop_oneof![Just(1u64), Just(7), Just(32)],
        warmup in 1u64..6,
    ) {
        let resources = Resources::new(kind, ds);
        let spec = resources.spec(kind, seed);
        let mut engine = spec.build();
        if !drive(&resources.kg, engine.as_mut(), warmup, batch)
            || engine.stop_reason().is_some()
        {
            // Converged inside the warm-up (possible on easy datasets):
            // nothing left to suspend, the case is vacuous.
            return Ok(());
        }

        // snapshot → resume-via-registry → snapshot: byte-identical,
        // entirely through the dyn interface.
        let snap = engine.snapshot().unwrap();
        prop_assert_eq!(snapshot_engine_kind(&snap).unwrap(), spec.kind());
        prop_assert_eq!(peek_any_header(&snap).unwrap().kind(), spec.kind());
        let resumed = spec.resume(&snap).unwrap();
        prop_assert_eq!(resumed.snapshot().unwrap(), snap.clone());

        // And the resumed engine finishes bit-identically to the
        // uninterrupted one.
        let interrupted = finish(&resources.kg, resumed);
        let straight = finish(&resources.kg, engine);
        prop_assert_eq!(interrupted, straight);
    }
}

/// Drives a monitor engine with oracle labels from the truth twin for
/// up to `batches` polls; returns false once the monitor reports no
/// work (it is watching — monitors never stop).
fn drive_monitor(
    truth: &DeltaKg<'_>,
    engine: &mut dyn SessionEngine,
    batches: u64,
    batch: u64,
) -> bool {
    let mut labels = Vec::new();
    for _ in 0..batches {
        let Some(polled) = engine.next_request(batch).unwrap() else {
            return false;
        };
        labels.clear();
        labels.extend(
            polled
                .request
                .triples
                .iter()
                .map(|st| truth.is_correct(st.triple)),
        );
        engine.submit(&labels).unwrap();
    }
    true
}

/// (estimate bits, interval bits, observations, triples, entities, report).
type MonitorFingerprint = (
    Option<u64>,
    Option<(u64, u64)>,
    u64,
    u64,
    u64,
    Option<MonitorReport>,
);

/// Bit-level identity of a monitor's full status view.
fn monitor_fingerprint(engine: &dyn SessionEngine) -> MonitorFingerprint {
    let view = engine.status();
    (
        view.primary.estimate.map(f64::to_bits),
        view.primary
            .interval
            .map(|i| (i.lower().to_bits(), i.upper().to_bits())),
        view.primary.observations,
        view.primary.annotated_triples,
        view.primary.cost_seconds.to_bits(),
        view.monitor,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tag-6 (monitor) suspend/resume through the registry: snapshot →
    /// resume-via-registry → snapshot is byte-identical while the
    /// initial campaign is open, while watching, and **mid-delta** —
    /// after a degrading batch has re-opened annotation — and the
    /// interrupted line converges to a bit-identical watching state.
    /// Oracle labels for the re-opened campaign come from a truth twin:
    /// a `DeltaKg::with_truth` overlay fed the same batches, so view
    /// ids resolve identically to the monitor's internal view.
    #[test]
    fn monitor_snapshots_resume_via_registry_byte_identically(
        ds in datasets(),
        seed in 0u64..10_000,
        batch in prop_oneof![Just(1u64), Just(7), Just(32)],
        warmup in 1u64..6,
        churn in 1u64..4,
    ) {
        let kg = dataset(ds);
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let spec = EngineSpec::Monitor {
            kg: &kg,
            method: &method,
            config: &cfg,
            carry_weight: 50.0,
            seed,
        };
        let mut truth = DeltaKg::with_truth(&kg, &kg);
        let mut engine = spec.build();

        // Suspend mid-initial-campaign (or just past it).
        drive_monitor(&truth, engine.as_mut(), warmup, batch);
        let snap = engine.snapshot().unwrap();
        prop_assert_eq!(snapshot_engine_kind(&snap).unwrap(), EngineKind::Monitor);
        prop_assert_eq!(peek_any_header(&snap).unwrap().kind(), EngineKind::Monitor);
        let mut resumed = spec.resume(&snap).unwrap();
        prop_assert_eq!(resumed.snapshot().unwrap(), snap);

        // Both lines converge to the same watching certificate.
        drive_monitor(&truth, engine.as_mut(), u64::MAX, batch);
        drive_monitor(&truth, resumed.as_mut(), u64::MAX, batch);
        prop_assert_eq!(
            monitor_fingerprint(engine.as_ref()),
            monitor_fingerprint(resumed.as_ref())
        );

        // The same degrading batch lands identically on both, and on
        // the truth twin.
        let n = truth.num_triples();
        let delta = DeltaBatch {
            predicate: Some("drift".into()),
            removes: (0..n * churn / 8).collect(),
            adds: vec![true; usize::try_from(n * churn / 6).unwrap()],
        };
        let on_straight = engine.apply_deltas(&delta).unwrap();
        let on_resumed = resumed.apply_deltas(&delta).unwrap();
        truth.apply(&delta.removes, &delta.adds).unwrap();
        prop_assert_eq!(on_straight, on_resumed);

        // Mid-delta suspension: snapshot the resumed line after the
        // batch (and, when annotation re-opened, part-way into the
        // carryover campaign).
        if !on_resumed.watching {
            drive_monitor(&truth, resumed.as_mut(), warmup, batch);
        }
        let snap = resumed.snapshot().unwrap();
        prop_assert_eq!(peek_any_header(&snap).unwrap().kind(), EngineKind::Monitor);
        let mut resumed_again = spec.resume(&snap).unwrap();
        prop_assert_eq!(resumed_again.snapshot().unwrap(), snap);

        // All three lines end watching with identical certificates,
        // epochs and drift rows.
        drive_monitor(&truth, engine.as_mut(), u64::MAX, batch);
        drive_monitor(&truth, resumed.as_mut(), u64::MAX, batch);
        drive_monitor(&truth, resumed_again.as_mut(), u64::MAX, batch);
        prop_assert_eq!(
            monitor_fingerprint(engine.as_ref()),
            monitor_fingerprint(resumed.as_ref())
        );
        prop_assert_eq!(
            monitor_fingerprint(engine.as_ref()),
            monitor_fingerprint(resumed_again.as_ref())
        );
    }
}
