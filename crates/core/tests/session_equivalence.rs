//! The defining contract of the poll-based engine: an
//! `EvaluationSession` driven step by step — at any batch size — halts
//! identically to the legacy closed-loop `evaluate` path. Same stopping
//! unit, same sample, same estimate, and the same interval *bits*: with
//! an oracle annotator the per-unit state updates, solver calls and RNG
//! consumption are the same sequence regardless of batching, so the
//! results must be `==`, not merely close.
//!
//! A second property pins suspend/resume: snapshotting a session
//! mid-evaluation and resuming it from bytes produces bit-identical
//! final results to the uninterrupted run.

use kgae_core::{
    evaluate, AnnotationRequest, EvalConfig, EvalResult, EvaluationSession, IntervalMethod,
    OracleAnnotator, PreparedDesign, SamplingDesign, StoppingPolicy,
};
use kgae_graph::{CompactKg, GroundTruth};
use kgae_intervals::BetaPrior;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn datasets() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("yago"),
        Just("nell"),
        Just("dbpedia"),
        Just("factbench"),
        Just("syn"),
    ]
}

fn dataset(name: &str, seed: u64) -> CompactKg {
    match name {
        "yago" => kgae_graph::datasets::yago(),
        "nell" => kgae_graph::datasets::nell(),
        "dbpedia" => kgae_graph::datasets::dbpedia(),
        "factbench" => kgae_graph::datasets::factbench(),
        _ => kgae_graph::datasets::syn_scaled(4_000, 900, 0.75, seed),
    }
}

fn designs() -> impl Strategy<Value = SamplingDesign> {
    prop_oneof![
        Just(SamplingDesign::Srs),
        Just(SamplingDesign::Twcs { m: 3 }),
        Just(SamplingDesign::Wcs),
        Just(SamplingDesign::Scs),
    ]
}

fn methods() -> impl Strategy<Value = IntervalMethod> {
    prop_oneof![
        Just(IntervalMethod::ahpd_default()),
        Just(IntervalMethod::Hpd(BetaPrior::KERMAN)),
        Just(IntervalMethod::Et(BetaPrior::JEFFREYS)),
        Just(IntervalMethod::Wilson),
        Just(IntervalMethod::Wald),
    ]
}

/// Drives a session with oracle labels at the given batch size until it
/// stops, returning the final result.
fn drive_session(
    kg: &CompactKg,
    prepared: &PreparedDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
    batch: u64,
) -> EvalResult {
    let mut session =
        EvaluationSession::from_prepared(kg, prepared, method, cfg, SmallRng::seed_from_u64(seed));
    let mut request = AnnotationRequest::default();
    let mut labels = Vec::new();
    while session.next_request_into(batch, &mut request).unwrap() {
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
    }
    session.into_result().expect("stopped session has a result")
}

/// Drives a session to completion like [`drive_session`], but suspends
/// to a snapshot and resumes from bytes after every `suspend_every`
/// submitted batches.
fn drive_session_with_suspensions(
    kg: &CompactKg,
    prepared: &PreparedDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
    batch: u64,
    suspend_every: u64,
) -> (EvalResult, u64) {
    let mut session =
        EvaluationSession::from_prepared(kg, prepared, method, cfg, SmallRng::seed_from_u64(seed));
    let mut request = AnnotationRequest::default();
    let mut labels = Vec::new();
    let mut batches = 0u64;
    let mut suspensions = 0u64;
    loop {
        if !session.next_request_into(batch, &mut request).unwrap() {
            break;
        }
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
        batches += 1;
        if batches.is_multiple_of(suspend_every) && session.stop_reason().is_none() {
            let bytes = session.snapshot().unwrap();
            // A fresh RNG proves the resumed stream comes from the
            // snapshot, not from the seed.
            session = EvaluationSession::resume(
                kg,
                prepared,
                method,
                cfg,
                SmallRng::seed_from_u64(0xDEAD_BEEF),
                &bytes,
            )
            .unwrap();
            suspensions += 1;
        }
    }
    (
        session.into_result().expect("stopped session has a result"),
        suspensions,
    )
}

fn assert_bit_identical(a: &EvalResult, b: &EvalResult, what: &str) {
    assert_eq!(a.observations, b.observations, "{what}: observations");
    assert_eq!(
        a.annotated_triples, b.annotated_triples,
        "{what}: annotated_triples"
    );
    assert_eq!(
        a.annotated_entities, b.annotated_entities,
        "{what}: annotated_entities"
    );
    assert_eq!(a.stage1_draws, b.stage1_draws, "{what}: stage1_draws");
    assert_eq!(a.converged, b.converged, "{what}: converged");
    assert_eq!(
        a.halted_at_floor, b.halted_at_floor,
        "{what}: halted_at_floor"
    );
    assert_eq!(
        a.mu_hat.to_bits(),
        b.mu_hat.to_bits(),
        "{what}: μ̂ bits ({} vs {})",
        a.mu_hat,
        b.mu_hat
    );
    assert_eq!(
        a.cost_seconds.to_bits(),
        b.cost_seconds.to_bits(),
        "{what}: cost bits"
    );
    assert_eq!(
        (a.interval.lower().to_bits(), a.interval.upper().to_bits()),
        (b.interval.lower().to_bits(), b.interval.upper().to_bits()),
        "{what}: interval bits ({} vs {})",
        a.interval,
        b.interval
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn session_halts_identically_to_legacy_at_every_batch_size(
        ds in datasets(),
        design in designs(),
        method in methods(),
        seed in 0u64..10_000,
        policy in prop_oneof![
            Just(StoppingPolicy::CertifiedLookahead),
            Just(StoppingPolicy::EveryUnit)
        ],
    ) {
        let kg = dataset(ds, seed);
        let cfg = EvalConfig { stopping: policy, ..EvalConfig::default() };
        let prepared = PreparedDesign::new(&kg, design);
        let mut rng = SmallRng::seed_from_u64(seed);
        let legacy = evaluate(&kg, &OracleAnnotator, design, &method, &cfg, &mut rng).unwrap();
        for batch in [1u64, 7, 64] {
            let sessioned = drive_session(&kg, &prepared, &method, &cfg, seed, batch);
            assert_bit_identical(
                &legacy,
                &sessioned,
                &format!("{}/{}/{ds} seed {seed} batch {batch}", method.name(), design.name()),
            );
        }
    }

    #[test]
    fn suspended_and_resumed_sessions_finish_bit_identically(
        ds in datasets(),
        design in designs(),
        method in methods(),
        seed in 0u64..10_000,
        batch in prop_oneof![Just(1u64), Just(7), Just(64)],
        suspend_every in 1u64..4,
    ) {
        let kg = dataset(ds, seed);
        let cfg = EvalConfig::default();
        let prepared = PreparedDesign::new(&kg, design);
        let uninterrupted = drive_session(&kg, &prepared, &method, &cfg, seed, batch);
        let (resumed, suspensions) = drive_session_with_suspensions(
            &kg, &prepared, &method, &cfg, seed, batch, suspend_every,
        );
        assert_bit_identical(
            &uninterrupted,
            &resumed,
            &format!(
                "{}/{}/{ds} seed {seed} batch {batch} after {suspensions} suspensions",
                method.name(),
                design.name()
            ),
        );
    }
}

#[test]
fn batched_sessions_pin_the_benchmark_cell() {
    // The canonical cell (aHPD / SRS / NELL), every batch size, 100
    // seeds: bit-identical to the legacy loop.
    let kg = kgae_graph::datasets::nell();
    let method = IntervalMethod::ahpd_default();
    let cfg = EvalConfig::default();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    for seed in 0..100 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let legacy = evaluate(
            &kg,
            &OracleAnnotator,
            SamplingDesign::Srs,
            &method,
            &cfg,
            &mut rng,
        )
        .unwrap();
        for batch in [1u64, 16, 256] {
            let sessioned = drive_session(&kg, &prepared, &method, &cfg, seed, batch);
            assert_bit_identical(&legacy, &sessioned, &format!("seed {seed} batch {batch}"));
        }
    }
}

#[test]
fn snapshot_round_trip_mid_evaluation_is_exactly_resumable() {
    // Deterministic, non-property variant for quick failure isolation:
    // suspend after every batch on a cluster design (label cache, PPS
    // table, Welford moments and warm starts all in play).
    let kg = kgae_graph::datasets::factbench();
    let method = IntervalMethod::ahpd_default();
    let cfg = EvalConfig::default();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Twcs { m: 3 });
    for seed in 0..20 {
        let uninterrupted = drive_session(&kg, &prepared, &method, &cfg, seed, 4);
        let (resumed, suspensions) =
            drive_session_with_suspensions(&kg, &prepared, &method, &cfg, seed, 4, 1);
        assert!(suspensions > 0, "seed {seed} never suspended");
        assert_bit_identical(&uninterrupted, &resumed, &format!("seed {seed}"));
    }
}

#[test]
fn snapshots_are_canonical_bytes() {
    // Identical logical state ⇒ identical snapshot bytes, independent
    // of hash-set iteration order: snapshot twice, and snapshot a
    // resumed session, and compare.
    let kg = kgae_graph::datasets::nell();
    let method = IntervalMethod::ahpd_default();
    let cfg = EvalConfig::default();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Twcs { m: 3 });
    let mut session = EvaluationSession::from_prepared(
        &kg,
        &prepared,
        &method,
        &cfg,
        SmallRng::seed_from_u64(21),
    );
    let mut request = AnnotationRequest::default();
    let mut labels = Vec::new();
    for _ in 0..6 {
        assert!(session.next_request_into(2, &mut request).unwrap());
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
    }
    let a = session.snapshot().unwrap();
    let b = session.snapshot().unwrap();
    assert_eq!(a, b, "snapshot is not deterministic");
    let resumed = EvaluationSession::resume(
        &kg,
        &prepared,
        &method,
        &cfg,
        SmallRng::seed_from_u64(0),
        &a,
    )
    .unwrap();
    assert_eq!(
        resumed.snapshot().unwrap(),
        a,
        "resume→snapshot not identity"
    );
}
