//! The defining contract of the monitor engine: a **delta-free**
//! `MonitorSession` is bit-identical to a plain `EvaluationSession`
//! under SRS with the same method/config/seed. Epoch 0 wraps the base
//! KG in a transparent `DeltaKg` view and seeds the same
//! `SmallRng::seed_from_u64(seed)` stream, so — at any batch size —
//! the monitor must serve the *same* annotation requests in the same
//! order and certify the *same* estimate and interval bits, the only
//! difference being that the monitor then watches instead of stopping.
//!
//! A second property pins the zero-cost watch path: an **empty** delta
//! batch retires nothing, never re-opens annotation, and leaves the
//! certified interval bits untouched.

use kgae_core::{
    AnnotationRequest, DeltaBatch, EvalConfig, EvalResult, EvaluationSession, IntervalMethod,
    MonitorSession, PreparedDesign, SamplingDesign, SessionEngine, SessionStatus,
};
use kgae_graph::{CompactKg, GroundTruth};
use kgae_intervals::BetaPrior;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn datasets() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("yago"),
        Just("nell"),
        Just("dbpedia"),
        Just("factbench"),
        Just("syn"),
    ]
}

fn dataset(name: &str, seed: u64) -> CompactKg {
    match name {
        "yago" => kgae_graph::datasets::yago(),
        "nell" => kgae_graph::datasets::nell(),
        "dbpedia" => kgae_graph::datasets::dbpedia(),
        "factbench" => kgae_graph::datasets::factbench(),
        _ => kgae_graph::datasets::syn_scaled(4_000, 900, 0.75, seed),
    }
}

fn methods() -> impl Strategy<Value = IntervalMethod> {
    prop_oneof![
        Just(IntervalMethod::ahpd_default()),
        Just(IntervalMethod::Hpd(BetaPrior::KERMAN)),
        Just(IntervalMethod::Et(BetaPrior::JEFFREYS)),
        Just(IntervalMethod::Wilson),
    ]
}

/// Drives a plain SRS session with oracle labels at the given batch
/// size until it stops.
fn drive_plain(
    kg: &CompactKg,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
    batch: u64,
) -> EvalResult {
    let prepared = PreparedDesign::new(kg, SamplingDesign::Srs);
    let mut session =
        EvaluationSession::from_prepared(kg, &prepared, method, cfg, SmallRng::seed_from_u64(seed));
    let mut request = AnnotationRequest::default();
    let mut labels = Vec::new();
    while session.next_request_into(batch, &mut request).unwrap() {
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
    }
    session.into_result().expect("stopped session has a result")
}

/// Drives a monitor's initial campaign with oracle labels until it
/// switches to watching, asserting along the way that every served
/// request names exactly the triples `expect` serves (when given).
fn drive_monitor<'a>(
    kg: &'a CompactKg,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
    batch: u64,
    mut expect: Option<&mut EvaluationSession<'a, SmallRng>>,
) -> MonitorSession<'a> {
    let mut monitor = MonitorSession::new(kg, method, cfg, 50.0, seed);
    let mut mirror = AnnotationRequest::default();
    let mut labels = Vec::new();
    while let Some(engine_request) = monitor.next_request(batch).unwrap() {
        assert!(
            engine_request.stratum.is_none(),
            "SRS campaigns are unstratified"
        );
        if let Some(plain) = expect.as_deref_mut() {
            assert!(
                plain.next_request_into(batch, &mut mirror).unwrap(),
                "plain session ran dry before the monitor"
            );
            let served: Vec<_> = engine_request
                .request
                .triples
                .iter()
                .map(|st| st.triple.index())
                .collect();
            let mirrored: Vec<_> = mirror.triples.iter().map(|st| st.triple.index()).collect();
            assert_eq!(served, mirrored, "request triples diverged");
        }
        labels.clear();
        labels.extend(
            engine_request
                .request
                .triples
                .iter()
                .map(|st| kg.is_correct(st.triple)),
        );
        monitor.submit(&labels).unwrap();
        if let Some(plain) = expect.as_deref_mut() {
            plain.submit(&labels).unwrap();
        }
    }
    assert!(monitor.watching(), "delta-free monitor must end watching");
    assert!(
        monitor.stop_reason().is_none(),
        "a monitor never reports a stop reason"
    );
    monitor
}

fn assert_status_matches_result(status: &SessionStatus, result: &EvalResult, what: &str) {
    assert_eq!(
        status.estimate.map(f64::to_bits),
        Some(result.mu_hat.to_bits()),
        "{what}: μ̂ bits ({:?} vs {})",
        status.estimate,
        result.mu_hat
    );
    let interval = status.interval.expect("watching monitor has an interval");
    assert_eq!(
        (interval.lower().to_bits(), interval.upper().to_bits()),
        (
            result.interval.lower().to_bits(),
            result.interval.upper().to_bits()
        ),
        "{what}: interval bits ({interval} vs {})",
        result.interval
    );
    assert_eq!(
        status.observations, result.observations,
        "{what}: observations"
    );
    assert_eq!(
        status.annotated_triples, result.annotated_triples,
        "{what}: annotated_triples"
    );
    assert_eq!(
        status.cost_seconds.to_bits(),
        result.cost_seconds.to_bits(),
        "{what}: cost bits"
    );
    assert_eq!(status.stopped, None, "{what}: monitors never stop");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn delta_free_monitor_is_bit_identical_to_plain_session(
        ds in datasets(),
        method in methods(),
        seed in 0u64..10_000,
        batch in prop_oneof![Just(1u64), Just(7), Just(64)],
    ) {
        let kg = dataset(ds, seed);
        let cfg = EvalConfig::default();
        let plain = drive_plain(&kg, &method, &cfg, seed, batch);
        let monitor = drive_monitor(&kg, &method, &cfg, seed, batch, None);
        let view = monitor.status();
        assert_status_matches_result(
            &view.primary,
            &plain,
            &format!("{}/{ds} seed {seed} batch {batch}", method.name()),
        );
        let report = view.monitor.expect("monitor views carry a report");
        prop_assert_eq!(report.epoch, 0, "delta-free monitors stay at epoch 0");
        prop_assert_eq!(report.campaigns_reopened, 0);
        prop_assert_eq!(report.retired_labels, 0);
        prop_assert!(report.watching);
        prop_assert!(report.drift.is_empty(), "no deltas, no drift rows");
    }

    #[test]
    fn empty_delta_batch_is_free(
        ds in datasets(),
        seed in 0u64..10_000,
    ) {
        let kg = dataset(ds, seed);
        let method = IntervalMethod::ahpd_default();
        let cfg = EvalConfig::default();
        let mut monitor = drive_monitor(&kg, &method, &cfg, seed, 16, None);
        let before = monitor.status().primary;
        let outcome = monitor.apply_deltas(&DeltaBatch::default()).unwrap();
        prop_assert_eq!(outcome.retired_labels, 0);
        prop_assert!(!outcome.reopened, "an empty batch must not re-open annotation");
        prop_assert!(outcome.watching);
        prop_assert_eq!(outcome.epoch, 0);
        let after = monitor.status().primary;
        prop_assert_eq!(
            after.estimate.map(f64::to_bits),
            before.estimate.map(f64::to_bits),
            "estimate moved on an empty batch"
        );
        prop_assert_eq!(after.observations, before.observations);
        prop_assert_eq!(after.annotated_triples, before.annotated_triples);
    }
}

#[test]
fn monitor_requests_mirror_the_plain_session_on_the_benchmark_cell() {
    // The canonical cell (aHPD / SRS / NELL), lockstep request-by-
    // request comparison across batch sizes and 40 seeds: the monitor
    // serves the very same triples the plain session serves, and the
    // final certificates agree to the bit.
    let kg = kgae_graph::datasets::nell();
    let method = IntervalMethod::ahpd_default();
    let cfg = EvalConfig::default();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    for seed in 0..40 {
        for batch in [1u64, 16, 256] {
            let mut plain = EvaluationSession::from_prepared(
                &kg,
                &prepared,
                &method,
                &cfg,
                SmallRng::seed_from_u64(seed),
            );
            let monitor = drive_monitor(&kg, &method, &cfg, seed, batch, Some(&mut plain));
            let result = plain.into_result().expect("mirrored session also stopped");
            assert_status_matches_result(
                &monitor.status().primary,
                &result,
                &format!("seed {seed} batch {batch}"),
            );
        }
    }
}
