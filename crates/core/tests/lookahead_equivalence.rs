//! The defining contract of the certified multi-step lookahead: across
//! seeds, datasets, and all four sampling designs, the lookahead loop
//! halts at the *same* unit, with the *same* sample and (up to solver
//! warm-start noise far below any decision threshold) the *same*
//! interval, as a reference loop that constructs and checks the interval
//! after every annotated unit (paper Figure 1, literal).

use kgae_core::{
    evaluate, EvalConfig, EvalResult, IntervalMethod, OracleAnnotator, SamplingDesign,
    StoppingPolicy,
};
use kgae_graph::CompactKg;
use kgae_intervals::BetaPrior;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn datasets() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("yago"),
        Just("nell"),
        Just("dbpedia"),
        Just("factbench"),
        Just("syn"),
    ]
}

fn dataset(name: &str, seed: u64) -> CompactKg {
    match name {
        "yago" => kgae_graph::datasets::yago(),
        "nell" => kgae_graph::datasets::nell(),
        "dbpedia" => kgae_graph::datasets::dbpedia(),
        "factbench" => kgae_graph::datasets::factbench(),
        _ => kgae_graph::datasets::syn_scaled(4_000, 900, 0.75, seed),
    }
}

fn designs() -> impl Strategy<Value = SamplingDesign> {
    prop_oneof![
        Just(SamplingDesign::Srs),
        Just(SamplingDesign::Twcs { m: 3 }),
        Just(SamplingDesign::Wcs),
        Just(SamplingDesign::Scs),
    ]
}

fn methods() -> impl Strategy<Value = IntervalMethod> {
    prop_oneof![
        Just(IntervalMethod::ahpd_default()),
        Just(IntervalMethod::Hpd(BetaPrior::KERMAN)),
        Just(IntervalMethod::Et(BetaPrior::JEFFREYS)),
        Just(IntervalMethod::Wilson),
        Just(IntervalMethod::Wald),
    ]
}

fn run(
    kg: &CompactKg,
    design: SamplingDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
) -> EvalResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    evaluate(kg, &OracleAnnotator, design, method, cfg, &mut rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lookahead_and_reference_loops_halt_identically(
        ds in datasets(),
        design in designs(),
        method in methods(),
        seed in 0u64..10_000,
        alpha in prop_oneof![Just(0.05), Just(0.10)],
    ) {
        let kg = dataset(ds, seed);
        let reference_cfg = EvalConfig {
            stopping: StoppingPolicy::EveryUnit,
            ..EvalConfig::default().with_alpha(alpha)
        };
        let lookahead_cfg = EvalConfig {
            stopping: StoppingPolicy::CertifiedLookahead,
            ..EvalConfig::default().with_alpha(alpha)
        };
        let reference = run(&kg, design, &method, &reference_cfg, seed);
        let lookahead = run(&kg, design, &method, &lookahead_cfg, seed);

        // Stopping statistics must match exactly: same sample, same
        // halting unit, same estimate, same convergence reason.
        prop_assert_eq!(
            lookahead.observations, reference.observations,
            "{} / {} / {ds}: stopped at different n", method.name(), design.name()
        );
        prop_assert_eq!(lookahead.annotated_triples, reference.annotated_triples);
        prop_assert_eq!(lookahead.annotated_entities, reference.annotated_entities);
        prop_assert_eq!(lookahead.stage1_draws, reference.stage1_draws);
        prop_assert_eq!(lookahead.converged, reference.converged);
        prop_assert_eq!(lookahead.halted_at_floor, reference.halted_at_floor);
        prop_assert!(
            lookahead.mu_hat == reference.mu_hat,
            "μ̂ differs: {} vs {}", lookahead.mu_hat, reference.mu_hat
        );
        prop_assert!(
            (lookahead.cost_seconds - reference.cost_seconds).abs() < 1e-9,
            "cost differs"
        );
        // The final intervals come from the same posterior; the only
        // admissible difference is SLSQP warm-start noise, orders of
        // magnitude below the ε-comparison that drives stopping.
        prop_assert!(
            (lookahead.interval.lower() - reference.interval.lower()).abs() < 1e-9
                && (lookahead.interval.upper() - reference.interval.upper()).abs() < 1e-9,
            "{} / {}: interval {} vs {}",
            method.name(), design.name(), lookahead.interval, reference.interval
        );
    }
}

#[test]
fn lookahead_equivalence_on_the_benchmark_cell() {
    // The A/B benchmark cell (aHPD / SRS / NELL) pinned explicitly:
    // 200 seeds, bit-identical stopping statistics.
    let kg = kgae_graph::datasets::nell();
    let method = IntervalMethod::ahpd_default();
    let reference_cfg = EvalConfig {
        stopping: StoppingPolicy::EveryUnit,
        ..EvalConfig::default()
    };
    let lookahead_cfg = EvalConfig::default();
    for seed in 0..200 {
        let a = run(&kg, SamplingDesign::Srs, &method, &reference_cfg, seed);
        let b = run(&kg, SamplingDesign::Srs, &method, &lookahead_cfg, seed);
        assert_eq!(a.observations, b.observations, "seed {seed}");
        assert_eq!(a.annotated_triples, b.annotated_triples, "seed {seed}");
        assert!(a.mu_hat == b.mu_hat, "seed {seed}");
        assert_eq!(a.converged, b.converged, "seed {seed}");
    }
}
