//! The defining contract of the shared posterior-kernel cache: it is a
//! cost lever, never a semantics lever. A campaign driven with a
//! [`KernelCache`] attached — cold, warm, or shared with concurrent
//! campaigns — must match the uncached run *bit for bit*: the same
//! per-poll status trajectory, the same snapshot bytes at every
//! suspension point, and the same final result. The cache memoizes
//! exact solver outputs keyed by the full method configuration, so a
//! hit returns the identical f64 bits a fresh solve would produce;
//! these tests pin that claim across all four engine kinds.
//!
//! A final stress property shares one cache between N threads driving
//! interleaved campaigns and checks every result against an
//! isolated-cache baseline, plus the counter invariant
//! `hits + misses == lookups`.

use kgae_core::comparative::ComparativeSession;
use kgae_core::{
    AnnotationRequest, ComparativeResult, ComparativeStatus, DeltaBatch, EvalConfig, EvalResult,
    EvaluationSession, IntervalMethod, MonitorReport, MonitorSession, PreparedDesign,
    SamplingDesign, SessionEngine, SessionStatus, StratifiedConfig, StratifiedResult,
    StratifiedSession, StratifiedStatus,
};
use kgae_graph::{CompactKg, DeltaKg, GroundTruth};
use kgae_intervals::{BetaPrior, KernelCache};
use kgae_sampling::ComparePrimary;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn dataset(name: &str) -> CompactKg {
    match name {
        "yago" => kgae_graph::datasets::yago(),
        "factbench" => kgae_graph::datasets::factbench(),
        _ => kgae_graph::datasets::nell(),
    }
}

/// Drives a plain session to completion, recording the status after
/// every submitted batch and the snapshot bytes at every third one.
fn drive_plain(
    kg: &CompactKg,
    prepared: &PreparedDesign,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
    batch: u64,
    kernel: Option<&Arc<KernelCache>>,
) -> (Vec<SessionStatus>, Vec<Vec<u8>>, EvalResult) {
    let mut session =
        EvaluationSession::from_prepared(kg, prepared, method, cfg, SmallRng::seed_from_u64(seed));
    if let Some(kernel) = kernel {
        session.set_kernel_cache(Arc::clone(kernel));
    }
    let mut request = AnnotationRequest::default();
    let mut labels = Vec::new();
    let mut statuses = Vec::new();
    let mut snapshots = Vec::new();
    let mut batches = 0u64;
    while session.next_request_into(batch, &mut request).unwrap() {
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
        statuses.push(session.status());
        batches += 1;
        if batches.is_multiple_of(3) && session.stop_reason().is_none() {
            snapshots.push(session.snapshot().unwrap());
        }
    }
    (
        statuses,
        snapshots,
        session.into_result().expect("stopped session has a result"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold pass, then a warm pass over the same memo table (all hits):
    /// both must equal the uncached run in statuses, snapshot bytes and
    /// final result, across designs, methods, datasets and seeds.
    #[test]
    fn cached_campaigns_are_bit_identical_to_uncached(
        ds in prop_oneof![Just("nell"), Just("yago"), Just("factbench")],
        design in prop_oneof![Just(SamplingDesign::Srs), Just(SamplingDesign::Twcs { m: 3 })],
        method in prop_oneof![
            Just(IntervalMethod::ahpd_default()),
            Just(IntervalMethod::Hpd(BetaPrior::KERMAN)),
            Just(IntervalMethod::Et(BetaPrior::JEFFREYS)),
            Just(IntervalMethod::Wilson),
        ],
        seed in 0u64..5_000,
        batch in prop_oneof![Just(1u64), Just(16)],
    ) {
        let kg = dataset(ds);
        let cfg = EvalConfig::default();
        let prepared = PreparedDesign::new(&kg, design);
        let uncached = drive_plain(&kg, &prepared, &method, &cfg, seed, batch, None);
        let cache = Arc::new(KernelCache::new());
        let cold = drive_plain(&kg, &prepared, &method, &cfg, seed, batch, Some(&cache));
        let warm = drive_plain(&kg, &prepared, &method, &cfg, seed, batch, Some(&cache));
        prop_assert_eq!(&uncached, &cold, "cold cache diverged");
        prop_assert_eq!(&uncached, &warm, "warm cache diverged");
    }
}

fn drive_stratified(
    kg: &CompactKg,
    strat: &kgae_graph::Stratification,
    method: &IntervalMethod,
    cfg: &StratifiedConfig,
    seed: u64,
    kernel: Option<&Arc<KernelCache>>,
) -> (Vec<StratifiedStatus>, Vec<Vec<u8>>, StratifiedResult) {
    let mut session = StratifiedSession::new(kg, strat, method, cfg, seed);
    if let Some(kernel) = kernel {
        session.set_kernel_cache(kernel);
    }
    let mut labels = Vec::new();
    let mut statuses = Vec::new();
    let mut snapshots = Vec::new();
    let mut batches = 0u64;
    while let Some(req) = session.next_request(8).unwrap() {
        labels.clear();
        labels.extend(
            req.request
                .triples
                .iter()
                .map(|st| kg.is_correct(st.triple)),
        );
        session.submit(&labels).unwrap();
        statuses.push(session.status());
        batches += 1;
        // A stopped campaign refuses to snapshot; both arms stop at
        // the same batch, so the guard is symmetric.
        if batches.is_multiple_of(3) {
            if let Ok(bytes) = session.snapshot() {
                snapshots.push(bytes);
            }
        }
    }
    (
        statuses,
        snapshots,
        session.into_result().expect("stratified result"),
    )
}

#[test]
fn stratified_campaigns_match_with_shared_cache() {
    let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
    let method = IntervalMethod::ahpd_default();
    let cfg = StratifiedConfig::default();
    // One cache across all seeds — later campaigns run warm, matching
    // how the service shares a single cache across every tenant.
    let cache = Arc::new(KernelCache::new());
    for seed in 0..6 {
        let uncached = drive_stratified(&kg, &strat, &method, &cfg, seed, None);
        let cached = drive_stratified(&kg, &strat, &method, &cfg, seed, Some(&cache));
        assert_eq!(uncached, cached, "seed {seed}");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "shared cache never hit: {stats:?}");
}

fn drive_comparative(
    kg: &CompactKg,
    prepared: &PreparedDesign,
    cfg: &EvalConfig,
    seed: u64,
    kernel: Option<&Arc<KernelCache>>,
) -> (Vec<ComparativeStatus>, Vec<Vec<u8>>, ComparativeResult) {
    let mut session = ComparativeSession::new(kg, prepared, ComparePrimary::AHpd, cfg, seed);
    if let Some(kernel) = kernel {
        session.set_kernel_cache(kernel);
    }
    let mut labels = Vec::new();
    let mut statuses = Vec::new();
    let mut snapshots = Vec::new();
    let mut batches = 0u64;
    while let Some(request) = session.next_request(4).unwrap() {
        labels.clear();
        labels.extend(request.triples.iter().map(|st| kg.is_correct(st.triple)));
        session.submit(&labels).unwrap();
        statuses.push(session.status());
        batches += 1;
        // A stopped campaign refuses to snapshot; both arms stop at
        // the same batch, so the guard is symmetric.
        if batches.is_multiple_of(3) {
            if let Ok(bytes) = session.snapshot() {
                snapshots.push(bytes);
            }
        }
    }
    (
        statuses,
        snapshots,
        session.into_result().expect("comparative result"),
    )
}

#[test]
fn comparative_campaigns_match_with_shared_cache() {
    let kg = kgae_graph::datasets::nell();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    let cfg = EvalConfig::default();
    let cache = Arc::new(KernelCache::new());
    for seed in 0..6 {
        let uncached = drive_comparative(&kg, &prepared, &cfg, seed, None);
        let cached = drive_comparative(&kg, &prepared, &cfg, seed, Some(&cache));
        assert_eq!(uncached, cached, "seed {seed}");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "shared cache never hit: {stats:?}");
}

/// Certify, absorb a removal-heavy drift, re-certify from carryover —
/// the cache must survive the campaign teardown/reopen (the monitor
/// re-attaches it to every new inner campaign) without changing a bit.
fn drive_monitor_with_drift(
    kg: &CompactKg,
    method: &IntervalMethod,
    cfg: &EvalConfig,
    seed: u64,
    kernel: Option<&Arc<KernelCache>>,
) -> (Vec<MonitorReport>, Vec<Vec<u8>>, MonitorReport) {
    let mut truth = DeltaKg::with_truth(kg, kg);
    let mut monitor = MonitorSession::new(kg, method, cfg, 50.0, seed);
    if let Some(kernel) = kernel {
        monitor.set_kernel_cache(Arc::clone(kernel));
    }
    let mut reports = Vec::new();
    let mut snapshots = Vec::new();
    let drive = |monitor: &mut MonitorSession<'_>,
                 truth: &DeltaKg<'_>,
                 reports: &mut Vec<MonitorReport>,
                 snapshots: &mut Vec<Vec<u8>>| {
        while let Some(polled) = monitor.next_request(16).unwrap() {
            let labels: Vec<bool> = polled
                .request
                .triples
                .iter()
                .map(|st| truth.is_correct(st.triple))
                .collect();
            monitor.submit(&labels).unwrap();
            reports.push(monitor.report());
            snapshots.push(monitor.snapshot().unwrap());
        }
    };
    drive(&mut monitor, &truth, &mut reports, &mut snapshots);
    let drift = DeltaBatch {
        predicate: Some("drift".into()),
        removes: (0..1100).collect(),
        adds: (0..20).map(|k| k % 10 != 0).collect(),
    };
    monitor.apply_deltas(&drift).unwrap();
    truth.apply(&drift.removes, &drift.adds).unwrap();
    drive(&mut monitor, &truth, &mut reports, &mut snapshots);
    assert!(monitor.watching(), "seed {seed}: monitor must re-certify");
    (reports, snapshots, monitor.report())
}

#[test]
fn monitor_campaigns_match_with_shared_cache_across_reopen() {
    let kg = kgae_graph::datasets::nell();
    let method = IntervalMethod::ahpd_default();
    let cfg = EvalConfig::default();
    let cache = Arc::new(KernelCache::new());
    for seed in 0..4 {
        let uncached = drive_monitor_with_drift(&kg, &method, &cfg, seed, None);
        let cached = drive_monitor_with_drift(&kg, &method, &cfg, seed, Some(&cache));
        assert_eq!(uncached, cached, "seed {seed}");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "shared cache never hit: {stats:?}");
}

#[test]
fn concurrent_campaigns_on_one_shared_cache_match_isolated_runs() {
    let kg = kgae_graph::datasets::nell();
    let method = IntervalMethod::ahpd_default();
    let cfg = EvalConfig::default();
    let prepared = PreparedDesign::new(&kg, SamplingDesign::Srs);
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 6;

    // Baseline: every campaign with its own private cache — racing
    // inserts and shard evictions from other campaigns cannot help.
    let mut baseline = Vec::new();
    for seed in 0..THREADS * PER_THREAD {
        let solo = Arc::new(KernelCache::new());
        baseline.push(drive_plain(&kg, &prepared, &method, &cfg, seed, 16, Some(&solo)).2);
    }

    let shared = Arc::new(KernelCache::new());
    let results: Vec<(u64, EvalResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (shared, kg, prepared, method, cfg) = (&shared, &kg, &prepared, &method, &cfg);
                scope.spawn(move || {
                    (0..PER_THREAD)
                        .map(|i| {
                            let seed = t * PER_THREAD + i;
                            let run =
                                drive_plain(kg, prepared, method, cfg, seed, 16, Some(shared));
                            (seed, run.2)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(results.len() as u64, THREADS * PER_THREAD);
    for (seed, result) in &results {
        assert_eq!(&baseline[*seed as usize], result, "seed {seed}");
    }
    let stats = shared.stats();
    assert_eq!(
        stats.hits + stats.misses,
        stats.lookups(),
        "lookup counters must reconcile: {stats:?}"
    );
    assert!(stats.hits > 0, "shared cache never hit: {stats:?}");
}
