//! Hand-rolled JSON: a value tree, a canonical encoder and a
//! recursive-descent parser. Deliberately serde-free — the service's
//! wire format is small and fully under our control, and the workspace
//! builds offline — but strict: the parser accepts exactly the JSON
//! grammar (RFC 8259), enforces a nesting-depth cap so adversarial
//! bodies cannot overflow the stack, and fails with positioned errors
//! instead of panicking on any input.
//!
//! Numbers are carried as `f64`. Integers are exact up to 2⁵³, far
//! beyond any triple id or observation count the service ships; the
//! encoder prints floats with Rust's shortest-round-trip formatting, so
//! `parse(encode(v)) == v` bit for bit for every finite value.

use std::fmt::Write as _;

/// Maximum nesting depth (arrays + objects) the parser accepts.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values encode as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved, so encoding is
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// An integer value (exact up to 2⁵³).
    #[must_use]
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Member of an object by key (`None` for non-objects too).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer (`None` when
    /// negative, fractional or above 2⁵³).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&v) {
            return None;
        }
        Some(v as u64)
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Inserts or replaces a key of an object. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => pairs.push((key.to_string(), value)),
            }
        }
    }

    /// Encodes the value as compact JSON. Non-finite numbers (which the
    /// service never produces on purpose) encode as `null` rather than
    /// emitting invalid JSON.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// [`Json::encode`] with two-space indentation — for artifacts a
    /// human diffs, like `BENCH_eval.json`.
    #[must_use]
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.encode_pretty_into(&mut out, 0);
        out
    }

    fn encode_pretty_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + 2 {
                        out.push(' ');
                    }
                    item.encode_pretty_into(out, indent + 2);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + 2 {
                        out.push(' ');
                    }
                    encode_string(k, out);
                    out.push_str(": ");
                    v.encode_pretty_into(out, indent + 2);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push('}');
            }
            other => other.encode_into(out),
        }
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) if v.is_finite() => {
                // Rust's float Display is shortest-round-trip.
                let _ = write!(out, "{v}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A positioned parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (one value, surrounded by optional
/// whitespace; trailing garbage is an error).
///
/// # Errors
///
/// [`ParseError`] on any deviation from the JSON grammar, nesting
/// deeper than [`MAX_DEPTH`], numbers outside the finite `f64` range,
/// or invalid `\u` escapes (including lone surrogates).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &'static [u8], msg: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", "expected null").map(|()| Json::Null),
            Some(b't') => self
                .literal(b"true", "expected true")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .literal(b"false", "expected false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes/quotes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is &str, so slices on char boundaries are
                // valid UTF-8; escapes and quotes are ASCII, keeping the
                // boundary aligned.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("string run is valid UTF-8"),
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.literal(b"\\u", "lone high surrogate").is_err() {
                        return Err(self.err("lone high surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let v: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
        if !v.is_finite() {
            return Err(self.err("number outside the finite f64 range"));
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basics() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::str("a\nbA"));
        assert_eq!(
            parse(r#"{"a":[1,2,{"b":null}],"c":""}"#).unwrap().encode(),
            r#"{"a":[1,2,{"b":null}],"c":""}"#
        );
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = parse(r#""🤔 🤔""#).unwrap();
        assert_eq!(v, Json::str("🤔 🤔"));
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn pretty_encoding_parses_back_identically() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"","d":{},"e":[]}"#).unwrap();
        let pretty = v.encode_pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_accessors() {
        let mut v = parse(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        v.set("n", Json::int(9));
        v.set("new", Json::Null);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(9));
        assert_eq!(v.get("new"), Some(&Json::Null));
        assert_eq!(Json::Num(2.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
