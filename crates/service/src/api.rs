//! Typed request/response DTOs and their JSON (de)serialization — the
//! single wire vocabulary shared by the server routes, the snapshot
//! store's meta records and the `kgae-client` crate.
//!
//! Every encoder here has a matching decoder and the pair round-trips
//! bit for bit (floats use shortest-round-trip formatting), which is
//! what lets a suspended session's cached status survive
//! meta-file → JSON → meta-file cycles unchanged.

use crate::json::Json;
use kgae_core::{
    AnnotationRequest, DeltaBatch, DeltaOutcome, DriftReport, EvalConfig, EvalResult,
    IntervalMethod, MethodReport, MonitorReport, SessionStatus, StopReason, StratifiedConfig,
    StratumReport,
};
use kgae_intervals::Interval;
use kgae_sampling::driver::DesignSpec;

/// A malformed wire payload (missing field, wrong type, unknown name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(
    /// What was wrong.
    pub String,
);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn req_str(v: &Json, key: &str) -> Result<String, WireError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| wire_err(format!("missing or non-string field {key:?}")))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| wire_err(format!("missing or non-integer field {key:?}")))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, WireError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| wire_err(format!("missing or non-numeric field {key:?}")))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, WireError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| wire_err(format!("missing or non-boolean field {key:?}")))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => field
            .as_u64()
            .map(Some)
            .ok_or_else(|| wire_err(format!("non-integer field {key:?}"))),
    }
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => field
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| wire_err(format!("non-string field {key:?}"))),
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => field
            .as_f64()
            .map(Some)
            .ok_or_else(|| wire_err(format!("non-numeric field {key:?}"))),
    }
}

// ---------------------------------------------------------------------
// Session spec
// ---------------------------------------------------------------------

/// How a stratified session partitions its dataset — the wire half of
/// [`kgae_graph::stratify::Stratification`] reconstruction. Both modes
/// are deterministic, so the exact partition (and its fingerprint,
/// which stratified snapshots embed) rebuilds from the spec alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StratifySpec {
    /// The dataset's built-in per-predicate partition (available on
    /// datasets registered with one, e.g. `nell-pred`).
    Predicate,
    /// A deterministic hash partition into `strata` buckets.
    Hash {
        /// Number of strata (`1 ≤ strata ≤ num_triples`).
        strata: u32,
        /// Partition seed.
        seed: u64,
    },
}

impl StratifySpec {
    /// Encodes the partition spec.
    #[must_use]
    pub fn to_json(self) -> Json {
        match self {
            StratifySpec::Predicate => Json::obj(vec![("by", Json::str("predicate"))]),
            StratifySpec::Hash { strata, seed } => Json::obj(vec![
                ("by", Json::str("hash")),
                ("strata", Json::int(u64::from(strata))),
                ("seed", Json::int(seed)),
            ]),
        }
    }

    /// Decodes a partition spec.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an unknown `by` mode or missing hash fields.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        match req_str(v, "by")?.as_str() {
            "predicate" => Ok(StratifySpec::Predicate),
            "hash" => {
                let strata = u32::try_from(req_u64(v, "strata")?)
                    .map_err(|_| wire_err("\"strata\" exceeds u32"))?;
                Ok(StratifySpec::Hash {
                    strata,
                    seed: opt_u64(v, "seed")?.unwrap_or(0),
                })
            }
            other => Err(wire_err(format!(
                "unknown stratify mode {other:?} (expected \"predicate\" or \"hash\")"
            ))),
        }
    }
}

/// Everything needed to (re)construct an evaluation session: the create
/// request's payload and the identity half of a stored meta record.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Session id (also the snapshot store key).
    pub id: String,
    /// Registry name of the KG under evaluation.
    pub dataset: String,
    /// Sampling design (wire grammar; `stratified:<allocation>` selects
    /// the stratified coordinator).
    pub design: DesignSpec,
    /// Interval method.
    pub method: IntervalMethod,
    /// RNG seed of the sampling stream (exact below 2⁵³ on the wire).
    pub seed: u64,
    /// Significance level α.
    pub alpha: f64,
    /// MoE stopping threshold ε (of the pooled interval for stratified
    /// sessions).
    pub epsilon: f64,
    /// Optional cap on total annotation observations (shared across
    /// strata for stratified sessions).
    pub max_observations: Option<u64>,
    /// How a stratified session partitions the dataset; ignored (and
    /// rejected on the wire) for single-design sessions. `None` with a
    /// stratified design means [`StratifySpec::Predicate`].
    pub stratify: Option<StratifySpec>,
    /// Owning tenant, for per-tenant admission quotas. `None` counts
    /// against the shared default tenant.
    pub tenant: Option<String>,
}

impl SessionSpec {
    /// The evaluation-loop configuration this spec denotes. Fields not
    /// exposed on the wire keep the paper defaults, so a spec always
    /// reconstructs the exact config its snapshots were fingerprinted
    /// with.
    #[must_use]
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            alpha: self.alpha,
            epsilon: self.epsilon,
            max_observations: self.max_observations,
            ..EvalConfig::default()
        }
    }

    /// The stratified campaign configuration this spec denotes, when
    /// the design is stratified. Like [`SessionSpec::eval_config`], the
    /// non-wire fields keep their defaults so snapshot fingerprints
    /// reconstruct exactly.
    #[must_use]
    pub fn stratified_config(&self) -> Option<StratifiedConfig> {
        match self.design {
            DesignSpec::Stratified { allocation } => Some(StratifiedConfig {
                alpha: self.alpha,
                epsilon: self.epsilon,
                allocation,
                max_observations: self.max_observations,
                ..StratifiedConfig::default()
            }),
            _ => None,
        }
    }

    /// The partition of a stratified spec ([`StratifySpec::Predicate`]
    /// when the wire field was omitted); `None` for single-design
    /// specs.
    #[must_use]
    pub fn partition(&self) -> Option<StratifySpec> {
        match self.design {
            DesignSpec::Stratified { .. } => Some(self.stratify.unwrap_or(StratifySpec::Predicate)),
            _ => None,
        }
    }

    /// Encodes the spec.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj(vec![
            ("id", Json::str(&self.id)),
            ("dataset", Json::str(&self.dataset)),
            ("design", Json::str(&self.design.canonical_name())),
            ("method", Json::str(&self.method.canonical_name())),
            ("seed", Json::int(self.seed)),
            ("alpha", Json::Num(self.alpha)),
            ("epsilon", Json::Num(self.epsilon)),
            (
                "max_observations",
                self.max_observations.map_or(Json::Null, Json::int),
            ),
        ]);
        if let Some(stratify) = self.stratify {
            doc.set("stratify", stratify.to_json());
        }
        if let Some(tenant) = &self.tenant {
            doc.set("tenant", Json::str(tenant));
        }
        doc
    }

    /// Decodes a spec from a create request or meta record. `alpha`,
    /// `epsilon` and `seed` are optional on the wire (paper defaults
    /// α = ε = 0.05, seed 0); `stratify` is only legal alongside a
    /// stratified design.
    ///
    /// # Errors
    ///
    /// [`WireError`] on missing/mistyped fields, unknown design/method
    /// names, or a `stratify` object on a non-stratified design.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        let design: DesignSpec = req_str(v, "design")?
            .parse()
            .map_err(|e| wire_err(format!("{e}")))?;
        let method: IntervalMethod = req_str(v, "method")?
            .parse()
            .map_err(|e| wire_err(format!("{e}")))?;
        let stratify = match v.get("stratify") {
            None | Some(Json::Null) => None,
            Some(field) => Some(StratifySpec::from_json(field)?),
        };
        if stratify.is_some() && !matches!(design, DesignSpec::Stratified { .. }) {
            return Err(wire_err(format!(
                "\"stratify\" requires a stratified design, got {:?}",
                design.canonical_name()
            )));
        }
        Ok(SessionSpec {
            id: req_str(v, "id")?,
            dataset: req_str(v, "dataset")?,
            design,
            method,
            seed: opt_u64(v, "seed")?.unwrap_or(0),
            alpha: opt_f64(v, "alpha")?.unwrap_or(0.05),
            epsilon: opt_f64(v, "epsilon")?.unwrap_or(0.05),
            max_observations: opt_u64(v, "max_observations")?,
            stratify,
            tenant: opt_str(v, "tenant")?,
        })
    }
}

// ---------------------------------------------------------------------
// Stop reasons, status, results
// ---------------------------------------------------------------------

/// Wire name of a stop reason.
#[must_use]
pub fn stop_reason_name(reason: StopReason) -> &'static str {
    match reason {
        StopReason::MoeSatisfied => "moe_satisfied",
        StopReason::PopulationExhausted => "population_exhausted",
        StopReason::StreamExhausted => "stream_exhausted",
        StopReason::BudgetExhausted => "budget_exhausted",
    }
}

/// Inverse of [`stop_reason_name`].
///
/// # Errors
///
/// [`WireError`] on an unknown name.
pub fn stop_reason_from_name(name: &str) -> Result<StopReason, WireError> {
    match name {
        "moe_satisfied" => Ok(StopReason::MoeSatisfied),
        "population_exhausted" => Ok(StopReason::PopulationExhausted),
        "stream_exhausted" => Ok(StopReason::StreamExhausted),
        "budget_exhausted" => Ok(StopReason::BudgetExhausted),
        other => Err(wire_err(format!("unknown stop reason {other:?}"))),
    }
}

fn interval_to_json(interval: &Interval) -> Json {
    Json::Arr(vec![
        Json::Num(interval.lower()),
        Json::Num(interval.upper()),
    ])
}

fn interval_from_json(v: &Json) -> Result<Interval, WireError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| wire_err("interval must be [lo, hi]"))?;
    match arr {
        [lo, hi] => {
            let lo = lo
                .as_f64()
                .ok_or_else(|| wire_err("non-numeric interval bound"))?;
            let hi = hi
                .as_f64()
                .ok_or_else(|| wire_err("non-numeric interval bound"))?;
            Ok(Interval::new(lo, hi))
        }
        _ => Err(wire_err("interval must have exactly two bounds")),
    }
}

/// Encodes a [`SessionStatus`].
#[must_use]
pub fn status_to_json(status: &SessionStatus) -> Json {
    Json::obj(vec![
        ("estimate", status.estimate.map_or(Json::Null, Json::Num)),
        (
            "interval",
            status
                .interval
                .as_ref()
                .map_or(Json::Null, interval_to_json),
        ),
        ("observations", Json::int(status.observations)),
        ("annotated_triples", Json::int(status.annotated_triples)),
        ("stage1_draws", Json::int(status.stage1_draws)),
        ("cost_seconds", Json::Num(status.cost_seconds)),
        (
            "stopped",
            status
                .stopped
                .map_or(Json::Null, |r| Json::str(stop_reason_name(r))),
        ),
    ])
}

/// Decodes a [`SessionStatus`].
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields.
pub fn status_from_json(v: &Json) -> Result<SessionStatus, WireError> {
    let interval = match v.get("interval") {
        None | Some(Json::Null) => None,
        Some(field) => Some(interval_from_json(field)?),
    };
    let stopped = match v.get("stopped") {
        None | Some(Json::Null) => None,
        Some(field) => Some(stop_reason_from_name(
            field
                .as_str()
                .ok_or_else(|| wire_err("non-string stop reason"))?,
        )?),
    };
    Ok(SessionStatus {
        estimate: opt_f64(v, "estimate")?,
        interval,
        observations: req_u64(v, "observations")?,
        annotated_triples: req_u64(v, "annotated_triples")?,
        stage1_draws: req_u64(v, "stage1_draws")?,
        cost_seconds: req_f64(v, "cost_seconds")?,
        stopped,
    })
}

/// Encodes an [`EvalResult`].
#[must_use]
pub fn result_to_json(result: &EvalResult) -> Json {
    Json::obj(vec![
        ("mu_hat", Json::Num(result.mu_hat)),
        ("interval", interval_to_json(&result.interval)),
        ("annotated_triples", Json::int(result.annotated_triples)),
        ("annotated_entities", Json::int(result.annotated_entities)),
        ("observations", Json::int(result.observations)),
        ("stage1_draws", Json::int(result.stage1_draws)),
        ("cost_seconds", Json::Num(result.cost_seconds)),
        ("converged", Json::Bool(result.converged)),
        ("halted_at_floor", Json::Bool(result.halted_at_floor)),
    ])
}

/// Decodes an [`EvalResult`].
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields.
pub fn result_from_json(v: &Json) -> Result<EvalResult, WireError> {
    Ok(EvalResult {
        mu_hat: req_f64(v, "mu_hat")?,
        interval: interval_from_json(
            v.get("interval")
                .ok_or_else(|| wire_err("missing field \"interval\""))?,
        )?,
        annotated_triples: req_u64(v, "annotated_triples")?,
        annotated_entities: req_u64(v, "annotated_entities")?,
        observations: req_u64(v, "observations")?,
        stage1_draws: req_u64(v, "stage1_draws")?,
        cost_seconds: req_f64(v, "cost_seconds")?,
        converged: req_bool(v, "converged")?,
        halted_at_floor: req_bool(v, "halted_at_floor")?,
    })
}

// ---------------------------------------------------------------------
// Per-stratum rows
// ---------------------------------------------------------------------

/// Encodes one stratum row of a stratified session's status.
#[must_use]
pub fn stratum_report_to_json(report: &StratumReport) -> Json {
    Json::obj(vec![
        ("name", Json::str(&report.name)),
        ("weight", Json::Num(report.weight)),
        ("size", Json::int(report.size)),
        ("census", Json::Bool(report.census)),
        ("status", status_to_json(&report.status)),
    ])
}

/// Decodes one stratum row.
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields.
pub fn stratum_report_from_json(v: &Json) -> Result<StratumReport, WireError> {
    Ok(StratumReport {
        name: req_str(v, "name")?,
        weight: req_f64(v, "weight")?,
        size: req_u64(v, "size")?,
        census: req_bool(v, "census")?,
        status: status_from_json(
            v.get("status")
                .ok_or_else(|| wire_err("stratum row without a status"))?,
        )?,
    })
}

/// Encodes the per-stratum rows of a stratified session.
#[must_use]
pub fn strata_to_json(strata: &[StratumReport]) -> Json {
    Json::Arr(strata.iter().map(stratum_report_to_json).collect())
}

/// Decodes per-stratum rows.
///
/// # Errors
///
/// [`WireError`] on a non-array value or malformed rows.
pub fn strata_from_json(v: &Json) -> Result<Vec<StratumReport>, WireError> {
    v.as_arr()
        .ok_or_else(|| wire_err("\"strata\" must be an array"))?
        .iter()
        .map(stratum_report_from_json)
        .collect()
}

// ---------------------------------------------------------------------
// Per-method rows (comparative sessions)
// ---------------------------------------------------------------------

/// Encodes one method row of a comparative session's status.
#[must_use]
pub fn method_report_to_json(report: &MethodReport) -> Json {
    Json::obj(vec![
        ("method", Json::str(&report.method)),
        ("primary", Json::Bool(report.primary)),
        ("converged", Json::Bool(report.converged)),
        (
            "stopped_at",
            report.stopped_at.map_or(Json::Null, Json::int),
        ),
        ("estimate", report.estimate.map_or(Json::Null, Json::Num)),
        (
            "interval",
            report
                .interval
                .as_ref()
                .map_or(Json::Null, interval_to_json),
        ),
    ])
}

/// Decodes one method row.
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields.
pub fn method_report_from_json(v: &Json) -> Result<MethodReport, WireError> {
    let interval = match v.get("interval") {
        None | Some(Json::Null) => None,
        Some(field) => Some(interval_from_json(field)?),
    };
    Ok(MethodReport {
        method: req_str(v, "method")?,
        primary: req_bool(v, "primary")?,
        converged: req_bool(v, "converged")?,
        stopped_at: opt_u64(v, "stopped_at")?,
        estimate: opt_f64(v, "estimate")?,
        interval,
    })
}

/// Encodes the per-method rows of a comparative session.
#[must_use]
pub fn methods_to_json(methods: &[MethodReport]) -> Json {
    Json::Arr(methods.iter().map(method_report_to_json).collect())
}

/// Decodes per-method rows.
///
/// # Errors
///
/// [`WireError`] on a non-array value or malformed rows.
pub fn methods_from_json(v: &Json) -> Result<Vec<MethodReport>, WireError> {
    v.as_arr()
        .ok_or_else(|| wire_err("\"methods\" must be an array"))?
        .iter()
        .map(method_report_from_json)
        .collect()
}

// ---------------------------------------------------------------------
// Monitor sessions: drift rows, reports, delta batches
// ---------------------------------------------------------------------

/// Encodes one per-predicate drift row of a monitor session's status.
#[must_use]
pub fn drift_report_to_json(report: &DriftReport) -> Json {
    Json::obj(vec![
        ("predicate", Json::str(&report.predicate)),
        ("adds", Json::int(report.adds)),
        ("removes", Json::int(report.removes)),
        ("retired_labels", Json::int(report.retired_labels)),
        ("alarm", Json::Bool(report.alarm)),
    ])
}

/// Decodes one drift row.
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields.
pub fn drift_report_from_json(v: &Json) -> Result<DriftReport, WireError> {
    Ok(DriftReport {
        predicate: req_str(v, "predicate")?,
        adds: req_u64(v, "adds")?,
        removes: req_u64(v, "removes")?,
        retired_labels: req_u64(v, "retired_labels")?,
        alarm: req_bool(v, "alarm")?,
    })
}

/// Encodes the monitoring report of a monitor session's status.
#[must_use]
pub fn monitor_report_to_json(report: &MonitorReport) -> Json {
    Json::obj(vec![
        ("epoch", Json::int(report.epoch)),
        ("campaigns_reopened", Json::int(report.campaigns_reopened)),
        ("retired_labels", Json::int(report.retired_labels)),
        ("watching", Json::Bool(report.watching)),
        (
            "drift",
            Json::Arr(report.drift.iter().map(drift_report_to_json).collect()),
        ),
    ])
}

/// Decodes a monitoring report.
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields or malformed drift rows.
pub fn monitor_report_from_json(v: &Json) -> Result<MonitorReport, WireError> {
    let drift = v
        .get("drift")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("missing or non-array field \"drift\""))?
        .iter()
        .map(drift_report_from_json)
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(MonitorReport {
        epoch: req_u64(v, "epoch")?,
        campaigns_reopened: req_u64(v, "campaigns_reopened")?,
        retired_labels: req_u64(v, "retired_labels")?,
        watching: req_bool(v, "watching")?,
        drift,
    })
}

/// Encodes a delta batch (client side). Additions carry only their
/// simulated ground truth (`correct`), which the estimator never reads
/// — it exists so the oracle annotator of a later re-opened campaign
/// can label the triple.
#[must_use]
pub fn delta_batch_to_json(batch: &DeltaBatch) -> Json {
    let mut doc = Json::obj(vec![
        (
            "removes",
            Json::Arr(batch.removes.iter().copied().map(Json::int).collect()),
        ),
        (
            "adds",
            Json::Arr(
                batch
                    .adds
                    .iter()
                    .map(|&correct| Json::obj(vec![("correct", Json::Bool(correct))]))
                    .collect(),
            ),
        ),
    ]);
    if let Some(predicate) = &batch.predicate {
        doc.set("predicate", Json::str(predicate));
    }
    doc
}

/// Decodes a delta batch from a `POST .../deltas` body. Both `removes`
/// and `adds` may be omitted (treated as empty); `removes` must be
/// current dense triple ids, `adds` objects with a boolean `correct`.
///
/// # Errors
///
/// [`WireError`] on mistyped fields.
pub fn delta_batch_from_json(v: &Json) -> Result<DeltaBatch, WireError> {
    let removes = match v.get("removes") {
        None | Some(Json::Null) => Vec::new(),
        Some(field) => field
            .as_arr()
            .ok_or_else(|| wire_err("\"removes\" must be an array of triple ids"))?
            .iter()
            .map(|id| {
                id.as_u64()
                    .ok_or_else(|| wire_err("non-integer triple id in \"removes\""))
            })
            .collect::<Result<Vec<_>, WireError>>()?,
    };
    let adds = match v.get("adds") {
        None | Some(Json::Null) => Vec::new(),
        Some(field) => field
            .as_arr()
            .ok_or_else(|| wire_err("\"adds\" must be an array of objects"))?
            .iter()
            .map(|entry| req_bool(entry, "correct"))
            .collect::<Result<Vec<_>, WireError>>()?,
    };
    Ok(DeltaBatch {
        predicate: opt_str(v, "predicate")?,
        removes,
        adds,
    })
}

/// Encodes the outcome of an applied delta batch.
#[must_use]
pub fn delta_outcome_to_json(outcome: &DeltaOutcome) -> Json {
    Json::obj(vec![
        ("retired_labels", Json::int(outcome.retired_labels)),
        ("reopened", Json::Bool(outcome.reopened)),
        ("epoch", Json::int(outcome.epoch)),
        ("watching", Json::Bool(outcome.watching)),
    ])
}

/// Decodes a delta outcome (client side).
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields.
pub fn delta_outcome_from_json(v: &Json) -> Result<DeltaOutcome, WireError> {
    Ok(DeltaOutcome {
        retired_labels: req_u64(v, "retired_labels")?,
        reopened: req_bool(v, "reopened")?,
        epoch: req_u64(v, "epoch")?,
        watching: req_bool(v, "watching")?,
    })
}

// ---------------------------------------------------------------------
// Annotation requests
// ---------------------------------------------------------------------

/// One triple of an annotation request, as shipped to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleRef {
    /// Dense triple id within the dataset.
    pub triple: u64,
    /// The entity cluster owning the triple (annotation context).
    pub cluster: u32,
}

/// The stratum a stratified batch belongs to, as shipped to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStratum {
    /// Stratum index.
    pub index: u32,
    /// Stratum name (predicate, hash bucket, ...).
    pub name: String,
}

/// The wire form of a poll for labels: either the batch to annotate or
/// the news that the session has stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// `true` when the session has stopped and no labels are owed.
    pub done: bool,
    /// Stage-1 units covered by this batch.
    pub units: u64,
    /// Fencing seq to echo on the label submission (absent when done).
    pub seq: Option<u64>,
    /// The stratum this batch samples (stratified sessions only).
    pub stratum: Option<WireStratum>,
    /// Triples to label, in submission order.
    pub triples: Vec<TripleRef>,
}

/// Encodes a poll outcome (`None` = the session has stopped). `seq` is
/// the batch's fencing token, echoed back on submission; `stratum`
/// addresses the batch for stratified sessions.
#[must_use]
pub fn request_to_json(
    request: Option<&AnnotationRequest>,
    seq: Option<u64>,
    stratum: Option<&WireStratum>,
) -> Json {
    match request {
        None => Json::obj(vec![
            ("done", Json::Bool(true)),
            ("units", Json::int(0)),
            ("triples", Json::Arr(Vec::new())),
        ]),
        Some(req) => {
            let mut doc = Json::obj(vec![
                ("done", Json::Bool(false)),
                ("units", Json::int(req.units)),
                ("seq", seq.map_or(Json::Null, Json::int)),
                (
                    "triples",
                    Json::Arr(
                        req.triples
                            .iter()
                            .map(|st| {
                                Json::obj(vec![
                                    ("triple", Json::int(st.triple.index())),
                                    ("cluster", Json::int(u64::from(st.cluster.index()))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            if let Some(stratum) = stratum {
                doc.set(
                    "stratum",
                    Json::obj(vec![
                        ("index", Json::int(u64::from(stratum.index))),
                        ("name", Json::str(&stratum.name)),
                    ]),
                );
            }
            doc
        }
    }
}

/// Decodes a poll outcome (client side).
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields.
pub fn request_from_json(v: &Json) -> Result<WireRequest, WireError> {
    let triples = v
        .get("triples")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("missing or non-array field \"triples\""))?
        .iter()
        .map(|t| {
            Ok(TripleRef {
                triple: req_u64(t, "triple")?,
                cluster: u32::try_from(req_u64(t, "cluster")?)
                    .map_err(|_| wire_err("cluster id exceeds u32"))?,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let stratum = match v.get("stratum") {
        None | Some(Json::Null) => None,
        Some(field) => Some(WireStratum {
            index: u32::try_from(req_u64(field, "index")?)
                .map_err(|_| wire_err("stratum index exceeds u32"))?,
            name: req_str(field, "name")?,
        }),
    };
    Ok(WireRequest {
        done: req_bool(v, "done")?,
        units: req_u64(v, "units")?,
        seq: opt_u64(v, "seq")?,
        stratum,
        triples,
    })
}

/// Decodes a label-submission body into the engine's label vector plus
/// the optional fencing seq echoed from the poll.
///
/// # Errors
///
/// [`WireError`] when `labels` is missing or contains non-booleans.
pub fn labels_from_json(v: &Json) -> Result<(Vec<bool>, Option<u64>), WireError> {
    let labels = v
        .get("labels")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("missing or non-array field \"labels\""))?
        .iter()
        .map(|l| l.as_bool().ok_or_else(|| wire_err("non-boolean label")))
        .collect::<Result<Vec<bool>, WireError>>()?;
    Ok((labels, opt_u64(v, "seq")?))
}

/// The standard error body.
#[must_use]
pub fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::str(message))]).encode()
}

/// An error body with a stable machine-readable `code` field, so
/// clients branch on the code instead of parsing prose.
#[must_use]
pub fn error_body_coded(message: &str, code: &str) -> String {
    Json::obj(vec![
        ("error", Json::str(message)),
        ("code", Json::str(code)),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn spec_round_trips_with_defaults() {
        let body = json::parse(
            r#"{"id":"c1","dataset":"nell","design":"twcs:3","method":"ahpd","seed":9}"#,
        )
        .unwrap();
        let spec = SessionSpec::from_json(&body).unwrap();
        assert_eq!(spec.design, DesignSpec::Twcs { m: 3 });
        assert_eq!(spec.alpha, 0.05);
        assert_eq!(spec.epsilon, 0.05);
        assert_eq!(spec.max_observations, None);
        assert_eq!(spec.stratify, None);
        assert_eq!(spec.partition(), None);
        let round = SessionSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
        for bad in [
            r#"{"dataset":"nell","design":"srs","method":"ahpd"}"#,
            r#"{"id":"x","dataset":"nell","design":"pps","method":"ahpd"}"#,
            r#"{"id":"x","dataset":"nell","design":"srs","method":"bayes"}"#,
            r#"{"id":"x","dataset":"nell","design":"srs","method":"ahpd","seed":-3}"#,
            // stratify without a stratified design
            r#"{"id":"x","dataset":"nell","design":"srs","method":"ahpd","stratify":{"by":"predicate"}}"#,
            // unknown stratify mode
            r#"{"id":"x","dataset":"nell","design":"stratified","method":"ahpd","stratify":{"by":"zipf"}}"#,
        ] {
            let v = json::parse(bad).unwrap();
            assert!(SessionSpec::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn stratified_specs_round_trip_and_derive_configs() {
        use kgae_sampling::AllocationPolicy;
        let body = json::parse(
            r#"{"id":"s1","dataset":"nell-pred","design":"stratified:proportional",
                "method":"ahpd","epsilon":0.03,
                "stratify":{"by":"hash","strata":6,"seed":4}}"#,
        )
        .unwrap();
        let spec = SessionSpec::from_json(&body).unwrap();
        assert_eq!(
            spec.design,
            DesignSpec::Stratified {
                allocation: AllocationPolicy::Proportional
            }
        );
        assert_eq!(
            spec.partition(),
            Some(StratifySpec::Hash { strata: 6, seed: 4 })
        );
        let cfg = spec.stratified_config().unwrap();
        assert_eq!(cfg.allocation, AllocationPolicy::Proportional);
        assert_eq!(cfg.epsilon, 0.03);
        let round = SessionSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);

        // Omitted stratify defaults to the predicate partition.
        let body = json::parse(
            r#"{"id":"s2","dataset":"nell-pred","design":"stratified","method":"ahpd"}"#,
        )
        .unwrap();
        let spec = SessionSpec::from_json(&body).unwrap();
        assert_eq!(spec.stratify, None);
        assert_eq!(spec.partition(), Some(StratifySpec::Predicate));
        assert!(spec.stratified_config().is_some());
    }

    #[test]
    fn strata_rows_round_trip_bit_for_bit() {
        let rows = vec![
            StratumReport {
                name: "athleteplaysforteam".into(),
                weight: 0.298_387_096_774_193_55,
                size: 555,
                census: false,
                status: SessionStatus {
                    estimate: Some(0.971_428_571_428_571_4),
                    interval: Some(Interval::new(0.901, 0.992_3)),
                    observations: 35,
                    annotated_triples: 35,
                    stage1_draws: 0,
                    cost_seconds: 1_592.5,
                    stopped: None,
                },
            },
            StratumReport {
                name: "teamhomestadium".into(),
                weight: 0.06,
                size: 4,
                census: true,
                status: SessionStatus {
                    estimate: Some(0.5),
                    interval: Some(Interval::new(0.5, 0.5)),
                    observations: 4,
                    annotated_triples: 4,
                    stage1_draws: 0,
                    cost_seconds: 230.0,
                    stopped: Some(StopReason::PopulationExhausted),
                },
            },
        ];
        let round = strata_from_json(&strata_to_json(&rows)).unwrap();
        assert_eq!(round, rows);
        assert!(strata_from_json(&Json::str("nope")).is_err());
    }

    #[test]
    fn method_rows_round_trip_bit_for_bit() {
        let rows = vec![
            MethodReport {
                method: "wald".into(),
                primary: false,
                converged: true,
                stopped_at: Some(132),
                estimate: Some(0.916_666_666_666_666_7),
                interval: Some(Interval::new(0.869_4, 0.963_9)),
            },
            MethodReport {
                method: "ahpd".into(),
                primary: true,
                converged: false,
                stopped_at: None,
                estimate: None,
                interval: None,
            },
        ];
        let round = methods_from_json(&methods_to_json(&rows)).unwrap();
        assert_eq!(round, rows);
        assert!(methods_from_json(&Json::str("nope")).is_err());
    }

    #[test]
    fn status_and_result_round_trip_bit_for_bit() {
        let status = SessionStatus {
            estimate: Some(0.912_345_678_901_234_5),
            interval: Some(Interval::new(0.871, 0.953_000_000_000_000_1)),
            observations: 123,
            annotated_triples: 120,
            stage1_draws: 41,
            cost_seconds: 5_432.25,
            stopped: Some(StopReason::MoeSatisfied),
        };
        let round = status_from_json(&status_to_json(&status)).unwrap();
        assert_eq!(round, status);

        let empty = SessionStatus {
            estimate: None,
            interval: None,
            observations: 0,
            annotated_triples: 0,
            stage1_draws: 0,
            cost_seconds: 0.0,
            stopped: None,
        };
        assert_eq!(status_from_json(&status_to_json(&empty)).unwrap(), empty);

        let result = EvalResult {
            mu_hat: 0.907_123,
            interval: Interval::new(0.86, 0.955),
            annotated_triples: 130,
            annotated_entities: 60,
            observations: 140,
            stage1_draws: 47,
            cost_seconds: 6_000.5,
            converged: true,
            halted_at_floor: false,
        };
        assert_eq!(result_from_json(&result_to_json(&result)).unwrap(), result);
    }

    #[test]
    fn labels_and_requests_decode() {
        let v = json::parse(r#"{"labels":[true,false,true],"seq":4}"#).unwrap();
        assert_eq!(
            labels_from_json(&v).unwrap(),
            (vec![true, false, true], Some(4))
        );
        let v = json::parse(r#"{"labels":[]}"#).unwrap();
        assert_eq!(labels_from_json(&v).unwrap(), (vec![], None));
        let bad = json::parse(r#"{"labels":[1]}"#).unwrap();
        assert!(labels_from_json(&bad).is_err());

        let wire = request_from_json(&request_to_json(None, None, None)).unwrap();
        assert!(wire.done);
        assert_eq!(wire.seq, None);
        assert_eq!(wire.stratum, None);
        assert!(wire.triples.is_empty());

        // A stratified batch carries its stratum address.
        let request = AnnotationRequest {
            triples: Vec::new(),
            units: 2,
        };
        let stratum = WireStratum {
            index: 3,
            name: "coachesteam".into(),
        };
        let wire =
            request_from_json(&request_to_json(Some(&request), Some(9), Some(&stratum))).unwrap();
        assert!(!wire.done);
        assert_eq!(wire.seq, Some(9));
        assert_eq!(wire.stratum, Some(stratum));
    }
}
