//! Hand-rolled observability primitives: an atomic metrics registry
//! with a Prometheus text encoder, plus structured per-request logs.
//!
//! Everything here is std-only. Counters, gauges, and fixed-bucket
//! latency histograms are plain [`AtomicU64`]s — recording a request is
//! a handful of relaxed atomic adds on the worker thread, cheap enough
//! to leave on in production. One [`Metrics`] registry is shared
//! (`Arc`) between the reactor, the [`crate::manager`], the
//! [`crate::store`], and the [`crate::janitor`]; `GET /metrics` encodes
//! it on demand in the Prometheus text exposition format
//! (`text/plain; version=0.0.4`).
//!
//! Two design choices matter for exact reconciliation (the
//! `service_load` metrics leg asserts scraped counters against
//! client-side ground truth):
//!
//! * A request's own counter is bumped **after** its response body is
//!   built, so a `/metrics` scrape reports exactly the requests that
//!   completed before it — the scrape never counts itself.
//! * Session-state gauges are not incrementally maintained; the scrape
//!   asks the manager for a point-in-time census
//!   ([`crate::SessionManager::census`]), so the gauges can never
//!   drift from the truth.
//!
//! Histogram bucket bounds are in microseconds internally (request
//! service times live in the µs–ms range) but encoded with `le` labels
//! in seconds, per Prometheus convention. The `_sum` is accumulated in
//! **nanoseconds** and encoded as seconds, so even a stream of sub-µs
//! `healthz` hits produces a nonzero sum — CI asserts that.

use crate::json::Json;
use kgae_intervals::KernelCacheStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::SystemTime;

/// The route classes the server answers, mirroring
/// `kgae_service::server`'s dispatch. `Other` collects everything that
/// falls through to 404 (and any unroutable method/path pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `GET /v1/datasets`.
    Datasets,
    /// `GET /v1/sessions`.
    SessionsList,
    /// `POST /v1/sessions`.
    SessionCreate,
    /// `GET /v1/sessions/{id}`.
    SessionStatus,
    /// `DELETE /v1/sessions/{id}`.
    SessionDelete,
    /// `POST /v1/sessions/{id}/next`.
    Next,
    /// `POST /v1/sessions/{id}/labels`.
    Labels,
    /// `POST /v1/sessions/{id}/suspend`.
    Suspend,
    /// `POST /v1/sessions/{id}/resume`.
    Resume,
    /// `POST /v1/sessions/{id}/evict`.
    Evict,
    /// `GET /v1/sessions/{id}/snapshot`.
    Snapshot,
    /// `POST /v1/sessions/{id}/deltas`.
    Deltas,
    /// Anything else.
    Other,
}

/// Every route, in the order metric families are encoded.
pub const ROUTES: [Route; 15] = [
    Route::Healthz,
    Route::Metrics,
    Route::Datasets,
    Route::SessionsList,
    Route::SessionCreate,
    Route::SessionStatus,
    Route::SessionDelete,
    Route::Next,
    Route::Labels,
    Route::Suspend,
    Route::Resume,
    Route::Evict,
    Route::Snapshot,
    Route::Deltas,
    Route::Other,
];

impl Route {
    /// The `route` label value.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Datasets => "datasets",
            Route::SessionsList => "sessions_list",
            Route::SessionCreate => "session_create",
            Route::SessionStatus => "session_status",
            Route::SessionDelete => "session_delete",
            Route::Next => "next",
            Route::Labels => "labels",
            Route::Suspend => "suspend",
            Route::Resume => "resume",
            Route::Evict => "evict",
            Route::Snapshot => "snapshot",
            Route::Deltas => "deltas",
            Route::Other => "other",
        }
    }

    /// Classifies a request line into a route class. Mirrors the
    /// server's dispatch exactly: a pair this returns `Other` for is a
    /// pair the server answers 404.
    #[must_use]
    pub fn classify(method: &str, path: &str) -> Route {
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => Route::Healthz,
            ("GET", ["metrics"]) => Route::Metrics,
            ("GET", ["v1", "datasets"]) => Route::Datasets,
            ("GET", ["v1", "sessions"]) => Route::SessionsList,
            ("POST", ["v1", "sessions"]) => Route::SessionCreate,
            ("GET", ["v1", "sessions", _]) => Route::SessionStatus,
            ("DELETE", ["v1", "sessions", _]) => Route::SessionDelete,
            ("POST", ["v1", "sessions", _, "next"]) => Route::Next,
            ("POST", ["v1", "sessions", _, "labels"]) => Route::Labels,
            ("POST", ["v1", "sessions", _, "suspend"]) => Route::Suspend,
            ("POST", ["v1", "sessions", _, "resume"]) => Route::Resume,
            ("POST", ["v1", "sessions", _, "evict"]) => Route::Evict,
            ("GET", ["v1", "sessions", _, "snapshot"]) => Route::Snapshot,
            ("POST", ["v1", "sessions", _, "deltas"]) => Route::Deltas,
            _ => Route::Other,
        }
    }

    fn index(self) -> usize {
        ROUTES
            .iter()
            .position(|&r| r == self)
            .expect("route listed")
    }
}

/// The session id segment of a `/v1/sessions/{id}[/...]` path, for log
/// lines. `None` for every other path shape.
#[must_use]
pub fn session_id_of(path: &str) -> Option<&str> {
    let mut segments = path.split('/').filter(|s| !s.is_empty());
    match (segments.next(), segments.next(), segments.next()) {
        (Some("v1"), Some("sessions"), Some(id)) => Some(id),
        _ => None,
    }
}

/// Response statuses with their own counter slot; anything else lands
/// in the trailing `"other"` slot.
const STATUS_CODES: [u16; 10] = [200, 201, 400, 404, 409, 410, 413, 429, 500, 503];
const STATUS_SLOTS: usize = STATUS_CODES.len() + 1;

fn status_slot(status: u16) -> usize {
    STATUS_CODES
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUS_CODES.len())
}

fn status_label(slot: usize) -> String {
    match STATUS_CODES.get(slot) {
        Some(code) => code.to_string(),
        None => "other".into(),
    }
}

/// Histogram bucket upper bounds, in microseconds. The encoder emits
/// them as seconds (`le` labels from [`LE_LABELS`]); the final `+Inf`
/// bucket is implicit in the extra slot.
pub const BUCKET_BOUNDS_MICROS: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// The `le` label values matching [`BUCKET_BOUNDS_MICROS`], in seconds,
/// plus the trailing `+Inf`.
pub const LE_LABELS: [&str; 13] = [
    "0.00005", "0.0001", "0.00025", "0.0005", "0.001", "0.0025", "0.005", "0.01", "0.025", "0.05",
    "0.1", "0.25", "+Inf",
];

/// A fixed-bucket latency histogram. Buckets store per-bucket (not
/// cumulative) counts; the encoder cumulates. The sum is kept in
/// nanoseconds so sub-microsecond observations still move it.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_MICROS.len() + 1],
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// Records one observation of `nanos` nanoseconds.
    pub fn observe_nanos(&self, nanos: u64) {
        let micros = nanos / 1_000;
        let slot = BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKET_BOUNDS_MICROS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        // A clock too coarse to see the request still saw a request.
        self.sum_nanos.fetch_add(nanos.max(1), Ordering::Relaxed);
    }

    /// Total observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations, in nanoseconds.
    #[must_use]
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }
}

/// One shard's session occupancy at scrape time, split by lifecycle
/// state. Produced by [`crate::SessionManager::census`]; `evicted`
/// counts store records whose id hashes to this shard but which are in
/// memory nowhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSessions {
    /// Sessions live in memory with a running engine.
    pub live: u64,
    /// Sessions suspended in memory (dormant stub + snapshot on disk).
    pub suspended: u64,
    /// Sessions finished but still held in memory.
    pub finished: u64,
    /// Sessions existing only in the store.
    pub evicted: u64,
}

/// The service-wide metrics registry. One instance is shared by every
/// layer; all mutation is relaxed-atomic and wait-free.
#[derive(Debug)]
pub struct Metrics {
    requests: Vec<[AtomicU64; STATUS_SLOTS]>,
    response_bytes: Vec<AtomicU64>,
    latency: Vec<Histogram>,
    /// Connections currently registered in the reactor slab.
    pub(crate) connections_open: AtomicU64,
    /// High-water mark of the reactor slab length.
    pub(crate) slab_high_water: AtomicU64,
    /// Connections reaped by the timer wheel for idleness.
    pub(crate) timer_reaps: AtomicU64,
    /// Times the reactor's self-pipe waker fired.
    pub(crate) waker_wakeups: AtomicU64,
    /// Payload bytes durably written (counted after `fsync` succeeds).
    pub(crate) store_bytes_written: AtomicU64,
    /// Successful `fsync` calls in the snapshot store.
    pub(crate) store_fsyncs: AtomicU64,
    /// Records quarantined at runtime (corruption found in service).
    pub(crate) store_quarantined: AtomicU64,
    /// Records quarantined by the recovery sweep at store open.
    pub(crate) store_recovery_quarantined: AtomicU64,
    /// Sessions created.
    pub(crate) sessions_created: AtomicU64,
    /// Live sessions suspended to disk.
    pub(crate) sessions_suspended: AtomicU64,
    /// Suspended/evicted sessions rehydrated.
    pub(crate) sessions_resumed: AtomicU64,
    /// Sessions dropped from memory (state persisted first).
    pub(crate) sessions_evicted: AtomicU64,
    /// Sessions that reached a terminal engine state.
    pub(crate) sessions_finished: AtomicU64,
    /// Sessions deleted everywhere.
    pub(crate) sessions_deleted: AtomicU64,
    /// Monitor campaigns re-opened by interval degradation after a
    /// delta batch.
    pub(crate) monitor_campaigns_reopened: AtomicU64,
    /// Monitor ledger labels retired because their triples were
    /// removed.
    pub(crate) monitor_labels_retired: AtomicU64,
    /// Creates refused 429 over quota.
    pub(crate) quota_refusals: AtomicU64,
    /// Requests refused 503 while draining.
    pub(crate) draining_refusals: AtomicU64,
    /// Janitor ticks completed.
    pub(crate) janitor_ticks: AtomicU64,
    /// Idle live sessions the janitor aged to disk.
    pub(crate) janitor_aged_suspended: AtomicU64,
    /// Idle dormant/finished sessions the janitor dropped from memory.
    pub(crate) janitor_aged_evicted: AtomicU64,
    /// Stale temp files the janitor removed.
    pub(crate) janitor_gc_tmp: AtomicU64,
    /// Orphaned snapshots (no meta) the janitor removed.
    pub(crate) janitor_gc_orphan_snaps: AtomicU64,
    /// Stray snapshots of finished sessions the janitor compacted away.
    pub(crate) janitor_compacted: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh registry with every series at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            requests: (0..ROUTES.len())
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            response_bytes: (0..ROUTES.len()).map(|_| AtomicU64::new(0)).collect(),
            latency: (0..ROUTES.len()).map(|_| Histogram::default()).collect(),
            connections_open: AtomicU64::new(0),
            slab_high_water: AtomicU64::new(0),
            timer_reaps: AtomicU64::new(0),
            waker_wakeups: AtomicU64::new(0),
            store_bytes_written: AtomicU64::new(0),
            store_fsyncs: AtomicU64::new(0),
            store_quarantined: AtomicU64::new(0),
            store_recovery_quarantined: AtomicU64::new(0),
            sessions_created: AtomicU64::new(0),
            sessions_suspended: AtomicU64::new(0),
            sessions_resumed: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_finished: AtomicU64::new(0),
            sessions_deleted: AtomicU64::new(0),
            monitor_campaigns_reopened: AtomicU64::new(0),
            monitor_labels_retired: AtomicU64::new(0),
            quota_refusals: AtomicU64::new(0),
            draining_refusals: AtomicU64::new(0),
            janitor_ticks: AtomicU64::new(0),
            janitor_aged_suspended: AtomicU64::new(0),
            janitor_aged_evicted: AtomicU64::new(0),
            janitor_gc_tmp: AtomicU64::new(0),
            janitor_gc_orphan_snaps: AtomicU64::new(0),
            janitor_compacted: AtomicU64::new(0),
        }
    }

    /// Records one completed request: counter, latency histogram, and
    /// response-byte counter for its route. Called by the reactor's
    /// worker **after** the response is built, so a `/metrics` scrape
    /// never includes itself.
    pub fn record_request(&self, route: Route, status: u16, nanos: u64, response_bytes: u64) {
        let r = route.index();
        self.requests[r][status_slot(status)].fetch_add(1, Ordering::Relaxed);
        self.response_bytes[r].fetch_add(response_bytes, Ordering::Relaxed);
        self.latency[r].observe_nanos(nanos);
    }

    /// Total requests recorded across every route and status.
    #[must_use]
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Encodes the registry in the Prometheus text exposition format.
    /// `census` supplies the point-in-time per-shard session gauges
    /// (pass `&[]` to omit them, e.g. in unit tests without a manager);
    /// `kernel` supplies the shared posterior-kernel cache counters
    /// (`None` omits the `kgae_kernel_cache_*` family). The kernel
    /// series are derived from one [`KernelCacheStats`] snapshot, so
    /// `hits + misses == lookups` reconciles exactly in every scrape.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn encode(&self, census: &[ShardSessions], kernel: Option<&KernelCacheStats>) -> String {
        let mut out = String::with_capacity(8 * 1024);
        self.encode_requests(&mut out);
        self.encode_latency(&mut out);
        encode_sessions(&mut out, census);
        if let Some(stats) = kernel {
            encode_kernel_cache(&mut out, stats);
        }
        let counters: [(&str, &str, u64); 24] = [
            (
                "kgae_reactor_connections_open",
                "gauge Connections currently registered in the reactor slab.",
                self.connections_open.load(Ordering::Relaxed),
            ),
            (
                "kgae_reactor_slab_high_water",
                "gauge High-water mark of the reactor connection slab.",
                self.slab_high_water.load(Ordering::Relaxed),
            ),
            (
                "kgae_reactor_timer_reaps_total",
                "counter Idle connections reaped by the timer wheel.",
                self.timer_reaps.load(Ordering::Relaxed),
            ),
            (
                "kgae_reactor_waker_wakeups_total",
                "counter Self-pipe waker firings observed by the event loop.",
                self.waker_wakeups.load(Ordering::Relaxed),
            ),
            (
                "kgae_store_bytes_written_total",
                "counter Payload bytes durably written by the snapshot store.",
                self.store_bytes_written.load(Ordering::Relaxed),
            ),
            (
                "kgae_store_fsyncs_total",
                "counter Successful fsync calls in the snapshot store.",
                self.store_fsyncs.load(Ordering::Relaxed),
            ),
            (
                "kgae_store_quarantined_total",
                "counter Records quarantined at runtime for corruption.",
                self.store_quarantined.load(Ordering::Relaxed),
            ),
            (
                "kgae_store_recovery_quarantined_total",
                "counter Records quarantined by the recovery sweep at open.",
                self.store_recovery_quarantined.load(Ordering::Relaxed),
            ),
            (
                "kgae_sessions_created_total",
                "counter Sessions created.",
                self.sessions_created.load(Ordering::Relaxed),
            ),
            (
                "kgae_sessions_suspended_total",
                "counter Live sessions suspended to disk.",
                self.sessions_suspended.load(Ordering::Relaxed),
            ),
            (
                "kgae_sessions_resumed_total",
                "counter Suspended or evicted sessions rehydrated.",
                self.sessions_resumed.load(Ordering::Relaxed),
            ),
            (
                "kgae_sessions_evicted_total",
                "counter Sessions dropped from memory with state persisted.",
                self.sessions_evicted.load(Ordering::Relaxed),
            ),
            (
                "kgae_sessions_finished_total",
                "counter Sessions that reached a terminal engine state.",
                self.sessions_finished.load(Ordering::Relaxed),
            ),
            (
                "kgae_sessions_deleted_total",
                "counter Sessions deleted from memory and store.",
                self.sessions_deleted.load(Ordering::Relaxed),
            ),
            (
                "kgae_monitor_campaigns_reopened_total",
                "counter Monitor campaigns re-opened by interval degradation.",
                self.monitor_campaigns_reopened.load(Ordering::Relaxed),
            ),
            (
                "kgae_monitor_labels_retired_total",
                "counter Monitor ledger labels retired by triple removals.",
                self.monitor_labels_retired.load(Ordering::Relaxed),
            ),
            (
                "kgae_quota_refusals_total",
                "counter Creates refused 429 over a session quota.",
                self.quota_refusals.load(Ordering::Relaxed),
            ),
            (
                "kgae_draining_refusals_total",
                "counter Requests refused 503 while the server drains.",
                self.draining_refusals.load(Ordering::Relaxed),
            ),
            (
                "kgae_faults_injected_total",
                "counter Failpoints that fired (fault-injection builds).",
                crate::fault::injections(),
            ),
            (
                "kgae_janitor_ticks_total",
                "counter Janitor maintenance ticks completed.",
                self.janitor_ticks.load(Ordering::Relaxed),
            ),
            (
                "kgae_janitor_aged_suspended_total",
                "counter Idle live sessions the janitor suspended to disk.",
                self.janitor_aged_suspended.load(Ordering::Relaxed),
            ),
            (
                "kgae_janitor_aged_evicted_total",
                "counter Idle in-memory sessions the janitor evicted.",
                self.janitor_aged_evicted.load(Ordering::Relaxed),
            ),
            (
                "kgae_janitor_gc_files_total",
                "counter Stale temp and orphaned snapshot files removed.",
                self.janitor_gc_tmp.load(Ordering::Relaxed)
                    + self.janitor_gc_orphan_snaps.load(Ordering::Relaxed),
            ),
            (
                "kgae_janitor_compacted_total",
                "counter Stray snapshots of finished sessions compacted away.",
                self.janitor_compacted.load(Ordering::Relaxed),
            ),
        ];
        for (name, kind_help, value) in counters {
            let (kind, help) = kind_help.split_once(' ').expect("kind help");
            push_header(&mut out, name, kind, help);
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    fn encode_requests(&self, out: &mut String) {
        push_header(
            out,
            "kgae_requests_total",
            "counter",
            "Requests handled, by route and response status.",
        );
        for (r, route) in ROUTES.iter().enumerate() {
            for slot in 0..STATUS_SLOTS {
                let value = self.requests[r][slot].load(Ordering::Relaxed);
                if value == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "kgae_requests_total{{route=\"{}\",status=\"{}\"}} {value}\n",
                    escape_label_value(route.name()),
                    status_label(slot),
                ));
            }
        }
        push_header(
            out,
            "kgae_response_bytes_total",
            "counter",
            "Response body bytes written, by route.",
        );
        for (r, route) in ROUTES.iter().enumerate() {
            let value = self.response_bytes[r].load(Ordering::Relaxed);
            if value == 0 {
                continue;
            }
            out.push_str(&format!(
                "kgae_response_bytes_total{{route=\"{}\"}} {value}\n",
                escape_label_value(route.name()),
            ));
        }
    }

    fn encode_latency(&self, out: &mut String) {
        push_header(
            out,
            "kgae_request_duration_seconds",
            "histogram",
            "Request service time measured in the reactor worker.",
        );
        for (r, route) in ROUTES.iter().enumerate() {
            let hist = &self.latency[r];
            if hist.count() == 0 {
                continue;
            }
            let route = escape_label_value(route.name());
            let mut cumulative = 0u64;
            for (slot, le) in LE_LABELS.iter().enumerate() {
                cumulative += hist.buckets[slot].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "kgae_request_duration_seconds_bucket{{route=\"{route}\",le=\"{le}\"}} \
                     {cumulative}\n",
                ));
            }
            out.push_str(&format!(
                "kgae_request_duration_seconds_sum{{route=\"{route}\"}} {}\n",
                format_seconds(hist.sum_nanos()),
            ));
            out.push_str(&format!(
                "kgae_request_duration_seconds_count{{route=\"{route}\"}} {cumulative}\n",
            ));
        }
    }
}

fn encode_sessions(out: &mut String, census: &[ShardSessions]) {
    push_header(
        out,
        "kgae_sessions",
        "gauge",
        "Sessions by shard and lifecycle state at scrape time.",
    );
    for (shard, counts) in census.iter().enumerate() {
        for (state, value) in [
            ("live", counts.live),
            ("suspended", counts.suspended),
            ("finished", counts.finished),
            ("evicted", counts.evicted),
        ] {
            out.push_str(&format!(
                "kgae_sessions{{shard=\"{shard}\",state=\"{state}\"}} {value}\n",
            ));
        }
    }
}

/// The shared posterior-kernel cache family. All six series come from
/// the same stats snapshot and `lookups` is emitted as `hits + misses`,
/// so the scrape-level reconciliation
/// `hits_total + misses_total == lookups_total` holds exactly — any
/// drift means an encoder bug, not scrape timing.
fn encode_kernel_cache(out: &mut String, stats: &KernelCacheStats) {
    let series: [(&str, &str, u64); 6] = [
        (
            "kgae_kernel_cache_lookups_total",
            "counter Posterior-kernel solves requested (hits + misses).",
            stats.lookups(),
        ),
        (
            "kgae_kernel_cache_hits_total",
            "counter Posterior-kernel solves answered from the memo table.",
            stats.hits,
        ),
        (
            "kgae_kernel_cache_misses_total",
            "counter Posterior-kernel solves that ran the solver.",
            stats.misses,
        ),
        (
            "kgae_kernel_cache_evictions_total",
            "counter Memoized kernel entries dropped by shard-clearing evictions.",
            stats.evictions,
        ),
        (
            "kgae_kernel_cache_insertions_total",
            "counter Kernel entries inserted into the memo table.",
            stats.insertions,
        ),
        (
            "kgae_kernel_cache_entries",
            "gauge Kernel entries resident at scrape time.",
            stats.entries,
        ),
    ];
    for (name, kind_help, value) in series {
        let (kind, help) = kind_help.split_once(' ').expect("kind help");
        push_header(out, name, kind, help);
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
}

fn push_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} {kind}\n",
        escape_help(help)
    ));
}

/// Nanoseconds → decimal seconds with nine fractional digits, without
/// a trip through floating point (keeps the encoding exact and stable).
fn format_seconds(nanos: u64) -> String {
    let mut s = format!("{}.{:09}", nanos / 1_000_000_000, nanos % 1_000_000_000);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Structured request logs
// ---------------------------------------------------------------------

/// Output shape of the request log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// One JSON object per line (machine-readable).
    Json,
    /// One human-readable line.
    Text,
}

impl LogFormat {
    /// Parses `"json"` / `"text"`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "json" => Some(LogFormat::Json),
            "text" => Some(LogFormat::Text),
            _ => None,
        }
    }
}

/// Log verbosity floor. A request line's own level derives from its
/// status: 5xx → `error`, 4xx → `warn`, everything else → `info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No request lines at all.
    Off,
    /// Only 5xx responses.
    Error,
    /// 4xx and 5xx responses.
    Warn,
    /// Every request.
    Info,
}

impl LogLevel {
    /// Parses `"off"` / `"error"` / `"warn"` / `"info"`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            _ => None,
        }
    }

    fn of_status(status: u16) -> Self {
        match status {
            500.. => LogLevel::Error,
            400..=499 => LogLevel::Warn,
            _ => LogLevel::Info,
        }
    }

    fn name(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
        }
    }
}

/// One request's log record.
#[derive(Debug, Clone)]
pub struct LogEntry<'a> {
    /// Milliseconds since the Unix epoch.
    pub unix_millis: u64,
    /// Route class name (see [`Route::name`]).
    pub route: &'a str,
    /// Tenant, when the request names one (session creates).
    pub tenant: Option<&'a str>,
    /// Session id, when the path names one.
    pub session: Option<&'a str>,
    /// Response status.
    pub status: u16,
    /// Response body bytes.
    pub bytes: u64,
    /// Service time in microseconds.
    pub micros: u64,
    /// Executing worker's id.
    pub worker: usize,
}

/// A per-request structured log writing one line per request to
/// stderr. Construction picks format and level once; emission is a
/// single buffered write, atomic per line.
#[derive(Debug)]
pub struct RequestLog {
    format: LogFormat,
    level: LogLevel,
}

impl RequestLog {
    /// A log with the given shape and verbosity floor.
    #[must_use]
    pub fn new(format: LogFormat, level: LogLevel) -> Self {
        Self { format, level }
    }

    /// Whether a request with this status would emit a line — callers
    /// use it to skip building the entry entirely.
    #[must_use]
    pub fn would_log(&self, status: u16) -> bool {
        self.level != LogLevel::Off && LogLevel::of_status(status) <= self.level
    }

    /// Emits one line for `entry` if its level clears the floor.
    pub fn record(&self, entry: &LogEntry<'_>) {
        if !self.would_log(entry.status) {
            return;
        }
        eprintln!("{}", render_entry(entry, self.format));
    }
}

/// Renders a log entry in the given format (the pure core of
/// [`RequestLog::record`], pinned by unit tests).
#[must_use]
pub fn render_entry(entry: &LogEntry<'_>, format: LogFormat) -> String {
    let ts = iso8601_millis(entry.unix_millis);
    let level = LogLevel::of_status(entry.status);
    match format {
        LogFormat::Json => Json::obj(vec![
            ("ts", Json::Str(ts)),
            ("level", Json::str(level.name())),
            ("route", Json::str(entry.route)),
            ("tenant", entry.tenant.map_or(Json::Null, Json::str)),
            ("session", entry.session.map_or(Json::Null, Json::str)),
            ("status", Json::int(u64::from(entry.status))),
            ("bytes", Json::int(entry.bytes)),
            ("micros", Json::int(entry.micros)),
            ("worker", Json::int(entry.worker as u64)),
        ])
        .encode(),
        LogFormat::Text => format!(
            "{ts} {} {} session={} tenant={} status={} bytes={} micros={} worker={}",
            level.name().to_uppercase(),
            entry.route,
            entry.session.unwrap_or("-"),
            entry.tenant.unwrap_or("-"),
            entry.status,
            entry.bytes,
            entry.micros,
            entry.worker,
        ),
    }
}

/// Milliseconds since the Unix epoch, now.
#[must_use]
pub fn unix_millis_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Proleptic-Gregorian civil date from days since 1970-01-01
/// (Hinnant's `civil_from_days`, std has no calendar).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    (if m <= 2 { y + 1 } else { y }, m as u32, d as u32)
}

/// `2026-08-08T12:34:56.789Z`-style UTC timestamp from epoch millis.
#[must_use]
pub fn iso8601_millis(unix_millis: u64) -> String {
    let secs = (unix_millis / 1_000) as i64;
    let millis = unix_millis % 1_000;
    let (year, month, day) = civil_from_days(secs.div_euclid(86_400));
    let tod = secs.rem_euclid(86_400);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3_600,
        (tod / 60) % 60,
        tod % 60,
    )
}

/// A small, stable id for the calling worker thread, assigned on first
/// use — log lines carry it so one worker's requests can be followed.
#[must_use]
pub fn worker_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ID: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_mirrors_the_server_dispatch() {
        for (method, path, expect) in [
            ("GET", "/healthz", Route::Healthz),
            ("GET", "/metrics", Route::Metrics),
            ("GET", "/v1/datasets", Route::Datasets),
            ("GET", "/v1/sessions", Route::SessionsList),
            ("POST", "/v1/sessions", Route::SessionCreate),
            ("GET", "/v1/sessions/abc", Route::SessionStatus),
            ("DELETE", "/v1/sessions/abc", Route::SessionDelete),
            ("POST", "/v1/sessions/abc/next", Route::Next),
            ("POST", "/v1/sessions/abc/labels", Route::Labels),
            ("POST", "/v1/sessions/abc/suspend", Route::Suspend),
            ("POST", "/v1/sessions/abc/resume", Route::Resume),
            ("POST", "/v1/sessions/abc/evict", Route::Evict),
            ("GET", "/v1/sessions/abc/snapshot", Route::Snapshot),
            ("POST", "/v1/sessions/abc/deltas", Route::Deltas),
            ("GET", "/v1/sessions/abc/deltas", Route::Other),
            ("POST", "/healthz", Route::Other),
            ("GET", "/v1/sessions/abc/nope", Route::Other),
            ("PUT", "/v1/sessions", Route::Other),
        ] {
            assert_eq!(Route::classify(method, path), expect, "{method} {path}");
        }
        assert_eq!(session_id_of("/v1/sessions/abc/next"), Some("abc"));
        assert_eq!(session_id_of("/v1/sessions"), None);
        assert_eq!(session_id_of("/healthz"), None);
    }

    #[test]
    fn text_grammar_help_type_and_series_lines() {
        let metrics = Metrics::new();
        metrics.record_request(Route::Healthz, 200, 1_500, 64);
        metrics.record_request(Route::Healthz, 200, 700_000, 64);
        metrics.record_request(Route::SessionCreate, 429, 9_000, 80);
        let census = [ShardSessions {
            live: 2,
            suspended: 1,
            finished: 0,
            evicted: 3,
        }];
        let kernel = kgae_intervals::KernelCacheStats {
            hits: 7,
            misses: 3,
            evictions: 1,
            insertions: 3,
            entries: 2,
        };
        let text = metrics.encode(&census, Some(&kernel));
        // Every series line's family has HELP and TYPE lines, in that
        // order, before the first sample.
        let mut seen_families: Vec<&str> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let family = rest.split(' ').next().unwrap();
                assert!(!seen_families.contains(&family), "duplicate HELP {family}");
                seen_families.push(family);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let family = parts.next().unwrap();
                assert_eq!(
                    seen_families.last(),
                    Some(&family),
                    "TYPE must follow its HELP"
                );
                let kind = parts.next().unwrap();
                assert!(["counter", "gauge", "histogram"].contains(&kind), "{kind}");
            } else {
                assert!(!line.is_empty(), "no blank lines in the exposition");
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                let family = series.split('{').next().unwrap();
                let base = family
                    .strip_suffix("_bucket")
                    .or_else(|| family.strip_suffix("_sum"))
                    .or_else(|| family.strip_suffix("_count"))
                    .filter(|base| seen_families.contains(base))
                    .unwrap_or(family);
                assert!(seen_families.contains(&base), "sample before HELP: {line}");
                value.parse::<f64>().expect("numeric value");
            }
        }
        assert!(text.contains("kgae_requests_total{route=\"healthz\",status=\"200\"} 2\n"));
        assert!(text.contains("kgae_requests_total{route=\"session_create\",status=\"429\"} 1\n"));
        assert!(text.contains("kgae_sessions{shard=\"0\",state=\"live\"} 2\n"));
        assert!(text.contains("kgae_sessions{shard=\"0\",state=\"evicted\"} 3\n"));
        // The kernel-cache families are present and the lookup counter is
        // derived as hits + misses, so the exposition reconciles exactly.
        assert!(text.contains("kgae_kernel_cache_lookups_total 10\n"));
        assert!(text.contains("kgae_kernel_cache_hits_total 7\n"));
        assert!(text.contains("kgae_kernel_cache_misses_total 3\n"));
        assert!(text.contains("kgae_kernel_cache_evictions_total 1\n"));
        assert!(text.contains("kgae_kernel_cache_insertions_total 3\n"));
        assert!(text.contains("kgae_kernel_cache_entries 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_count_matches_inf() {
        let metrics = Metrics::new();
        // 1.5µs, 700µs, and one past the last bound (300ms).
        metrics.record_request(Route::Next, 200, 1_500, 10);
        metrics.record_request(Route::Next, 200, 700_000_000, 10);
        metrics.record_request(Route::Next, 200, 300_000_000, 10);
        let text = metrics.encode(&[], None);
        let mut last = 0u64;
        let mut inf = None;
        let mut count = None;
        for line in text.lines() {
            if line.starts_with("kgae_request_duration_seconds_bucket{route=\"next\"") {
                let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(value >= last, "buckets must be cumulative: {line}");
                last = value;
                if line.contains("le=\"+Inf\"") {
                    inf = Some(value);
                }
            }
            if line.starts_with("kgae_request_duration_seconds_count{route=\"next\"") {
                count = Some(line.rsplit(' ').next().unwrap().parse::<u64>().unwrap());
            }
        }
        assert_eq!(inf, Some(3), "+Inf bucket holds every observation");
        assert_eq!(count, inf, "_count equals the +Inf bucket");
        // Sum is encoded in seconds from a nanosecond accumulator.
        assert!(
            text.contains("kgae_request_duration_seconds_sum{route=\"next\"} 1.0000015\n"),
            "{text}"
        );
    }

    #[test]
    fn sub_microsecond_observations_still_move_the_sum() {
        let hist = Histogram::default();
        hist.observe_nanos(0);
        assert_eq!(hist.count(), 1);
        assert!(hist.sum_nanos() >= 1, "zero-duration requests still count");
    }

    #[test]
    fn label_escaping_is_pinned() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(
            escape_label_value("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd",
            "backslash, quote, newline"
        );
        assert_eq!(escape_help("x\\y\nz\"q"), "x\\\\y\\nz\"q");
    }

    #[test]
    fn format_seconds_is_exact_decimal() {
        assert_eq!(format_seconds(0), "0.0");
        assert_eq!(format_seconds(1), "0.000000001");
        assert_eq!(format_seconds(1_500), "0.0000015");
        assert_eq!(format_seconds(2_000_000_000), "2.0");
        assert_eq!(format_seconds(1_234_567_890), "1.23456789");
    }

    #[test]
    fn log_lines_render_both_formats() {
        let entry = LogEntry {
            unix_millis: 1_754_611_200_123, // 2025-08-08T00:00:00.123Z
            route: "next",
            tenant: Some("acme"),
            session: Some("s-1"),
            status: 200,
            bytes: 512,
            micros: 830,
            worker: 3,
        };
        let json = render_entry(&entry, LogFormat::Json);
        let doc = crate::json::parse(&json).expect("log line parses as JSON");
        assert_eq!(doc.get("route").and_then(Json::as_str), Some("next"));
        assert_eq!(doc.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(doc.get("tenant").and_then(Json::as_str), Some("acme"));
        assert_eq!(
            doc.get("ts").and_then(Json::as_str),
            Some("2025-08-08T00:00:00.123Z")
        );
        let text = render_entry(&entry, LogFormat::Text);
        assert!(
            text.starts_with("2025-08-08T00:00:00.123Z INFO next "),
            "{text}"
        );
        assert!(text.contains("status=200"), "{text}");
        // 4xx renders at warn, 5xx at error.
        let warn = render_entry(
            &LogEntry {
                status: 404,
                tenant: None,
                session: None,
                ..entry.clone()
            },
            LogFormat::Text,
        );
        assert!(warn.contains(" WARN "), "{warn}");
        assert!(warn.contains("session=- tenant=-"), "{warn}");
    }

    #[test]
    fn level_floor_filters_by_status() {
        let info = RequestLog::new(LogFormat::Json, LogLevel::Info);
        let warn = RequestLog::new(LogFormat::Json, LogLevel::Warn);
        let error = RequestLog::new(LogFormat::Json, LogLevel::Error);
        let off = RequestLog::new(LogFormat::Json, LogLevel::Off);
        for status in [200, 201] {
            assert!(info.would_log(status));
            assert!(!warn.would_log(status));
        }
        for status in [404, 429] {
            assert!(info.would_log(status) && warn.would_log(status));
            assert!(!error.would_log(status));
        }
        assert!(error.would_log(500));
        for status in [200, 404, 500] {
            assert!(!off.would_log(status));
        }
    }

    #[test]
    fn iso8601_handles_epoch_and_leap_years() {
        assert_eq!(iso8601_millis(0), "1970-01-01T00:00:00.000Z");
        // 2024-02-29T12:00:00Z — a leap day.
        assert_eq!(
            iso8601_millis(1_709_208_000_000),
            "2024-02-29T12:00:00.000Z"
        );
    }
}
