//! A fixed-size worker pool over scoped threads — the vendored
//! `crossbeam` scope pattern already used by the repetition runner,
//! repurposed for connection handling.
//!
//! Jobs arrive on an [`std::sync::mpsc`] channel guarded by a mutex
//! (the classic shared-receiver pool). Scoped spawning keeps the pool
//! borrow-friendly: handlers can capture the non-`'static`
//! [`crate::manager::SessionManager`] directly instead of threading
//! `Arc`s through every layer.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

/// Runs `workers` scoped threads that drain `jobs` until the sending
/// side disconnects, applying `handler` to each job. Returns once every
/// queued job has been handled and all workers exited.
///
/// A panicking handler poisons nothing: each job is pulled with the
/// receiver lock released before handling, and a worker panic
/// propagates out of the scope (crashing loudly rather than silently
/// shrinking the pool).
pub fn run_pool<T, F>(workers: usize, jobs: Receiver<T>, handler: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let workers = workers.max(1);
    let jobs = Mutex::new(jobs);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|_| loop {
                let job = match jobs.lock().expect("pool receiver lock").recv() {
                    Ok(job) => job,
                    Err(_) => return, // channel closed and drained
                };
                handler(job);
            }));
        }
        for handle in handles {
            handle.join().expect("pool worker panicked");
        }
    })
    .expect("pool scope");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn all_jobs_are_handled_exactly_once() {
        let (tx, rx) = channel();
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        for i in 1..=1000u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        run_pool(8, rx, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 1000);
        assert_eq!(sum.into_inner(), 500_500);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let (tx, rx) = channel();
        tx.send(7u64).unwrap();
        drop(tx);
        let seen = AtomicU64::new(0);
        run_pool(0, rx, |i| {
            seen.store(i, Ordering::Relaxed);
        });
        assert_eq!(seen.into_inner(), 7);
    }
}
