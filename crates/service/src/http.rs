//! Minimal HTTP/1.1 over `std::net`: exactly the subset the session
//! service speaks — `GET`/`POST`/`DELETE`, JSON bodies with
//! `Content-Length`, and keep-alive connection reuse. Both directions
//! live here so the server ([`crate::server`]) and the `kgae-client`
//! crate parse the wire identically.
//!
//! Two request decoders share the grammar:
//!
//! * [`read_request`] — the blocking decoder over a [`BufRead`] stream,
//!   used by tests and as the behavioral reference.
//! * [`RequestParser`] — the **resumable** decoder the readiness
//!   reactor ([`crate::reactor`]) drives: it consumes whatever bytes
//!   have arrived, carries partial request-line/header/body state
//!   across readiness events, and enforces every limit incrementally.
//!   Feeding it the same bytes in any split produces the same requests
//!   and the same errors as the blocking decoder (property-tested).
//!
//! Hard limits protect the server from hostile peers: 8 KiB per line,
//! 100 headers, 8 MiB bodies. Anything outside the subset (chunked
//! transfer encoding, upgrades) is rejected loudly rather than
//! half-supported.

use std::io::{BufRead, Read, Write};

/// Maximum length of the request line or any header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per message.
pub const MAX_HEADERS: usize = 100;
/// Maximum body size in bytes (snapshot hex dumps stay well below).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// Why reading an HTTP message failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a message started — the
    /// normal end of a keep-alive session.
    Closed,
    /// The socket's read timeout fired before the first byte of a new
    /// message. No data was consumed, so the caller may keep waiting
    /// (servers use short timeouts as shutdown-check ticks) or close
    /// the idle connection.
    IdleTimeout,
    /// Transport failure mid-message.
    Io(std::io::Error),
    /// The bytes are not the HTTP subset this module speaks. The
    /// payload is a human-readable reason.
    Malformed(&'static str),
    /// A line, header count or body exceeded its hard limit.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::IdleTimeout => write!(f, "idle timeout before a new message"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
            HttpError::Malformed(why) => write!(f, "malformed HTTP message: {why}"),
            HttpError::TooLarge(what) => write!(f, "HTTP message too large: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// An incoming request, decoded.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Absolute path, without query string.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// A decoded response (client side).
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// Seconds from the `Retry-After` header, when the server sent one
    /// (quota and drain refusals do).
    pub retry_after: Option<u64>,
}

fn read_line<R: BufRead>(reader: &mut R, first: bool) -> Result<String, HttpError> {
    let mut line = Vec::with_capacity(64);
    loop {
        let n = match reader
            .by_ref()
            .take((MAX_LINE - line.len()) as u64)
            .read_until(b'\n', &mut line)
        {
            Ok(n) => n,
            // A timeout before any byte of a *new* message leaves the
            // stream positioned cleanly; report it as idleness rather
            // than a transport failure. Mid-message timeouts cannot be
            // resynchronized and stay hard errors.
            Err(e)
                if first
                    && line.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
            {
                return Err(HttpError::IdleTimeout)
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            return if line.is_empty() && first {
                Err(HttpError::Closed)
            } else {
                Err(HttpError::Malformed("unterminated line"))
            };
        }
        if line.last() == Some(&b'\n') {
            break;
        }
        if line.len() >= MAX_LINE {
            return Err(HttpError::TooLarge("line exceeds MAX_LINE"));
        }
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 line"))
}

/// The headers this module interprets, decoded from one header block.
#[derive(Debug, Default)]
struct HeaderBlock {
    content_length: usize,
    close: bool,
    keep: bool,
    retry_after: Option<u64>,
}

/// Folds one non-empty header line into the block — the single header
/// grammar both the blocking and the resumable decoder apply.
fn apply_header_line(headers: &mut HeaderBlock, line: &str) -> Result<(), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::Malformed("header line without ':'"));
    };
    let name = name.trim().to_ascii_lowercase();
    let value = value.trim();
    match name.as_str() {
        "content-length" => {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
            if n > MAX_BODY {
                return Err(HttpError::TooLarge("body exceeds MAX_BODY"));
            }
            headers.content_length = n;
        }
        "transfer-encoding" => {
            return Err(HttpError::Malformed(
                "Transfer-Encoding is not supported; send Content-Length",
            ));
        }
        "connection" => {
            for token in value.split(',') {
                match token.trim().to_ascii_lowercase().as_str() {
                    "close" => headers.close = true,
                    "keep-alive" => headers.keep = true,
                    _ => {}
                }
            }
        }
        // Seconds form only (the HTTP-date form is not worth a
        // date parser here); unparseable values are ignored rather
        // than fatal — the header is advisory.
        "retry-after" => headers.retry_after = value.parse().ok(),
        _ => {}
    }
    Ok(())
}

fn read_headers<R: BufRead>(reader: &mut R) -> Result<HeaderBlock, HttpError> {
    let mut headers = HeaderBlock::default();
    for count in 0.. {
        if count > MAX_HEADERS {
            return Err(HttpError::TooLarge("more than MAX_HEADERS headers"));
        }
        let line = read_line(reader, false)?;
        if line.is_empty() {
            return Ok(headers);
        }
        apply_header_line(&mut headers, &line)?;
    }
    unreachable!("loop returns or errors")
}

fn read_body<R: BufRead>(reader: &mut R, len: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::Malformed("body shorter than Content-Length")
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(body)
}

/// Reads one request from a connection. [`HttpError::Closed`] means the
/// peer ended the keep-alive session cleanly before a new request.
///
/// # Errors
///
/// See [`HttpError`].
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let line = read_line(reader, true)?;
    let (method, path, http11) = parse_request_line(&line)?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, headers.content_length)?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive: request_keep_alive(http11, &headers),
    })
}

/// Decodes `METHOD target HTTP/1.x` — shared by both request decoders.
/// Returns the upper-cased method, the query-stripped absolute path,
/// and whether the version was HTTP/1.1.
fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("request line without a target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("request line without a version"))?;
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed("unsupported HTTP version")),
    };
    let path = target.split('?').next().unwrap_or(target);
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("request target must be absolute"));
    }
    Ok((method.to_ascii_uppercase(), path.to_string(), http11))
}

/// The keep-alive decision both request decoders share: HTTP/1.1
/// defaults open unless `Connection: close`; HTTP/1.0 defaults closed
/// unless `Connection: keep-alive`.
fn request_keep_alive(http11: bool, headers: &HeaderBlock) -> bool {
    if http11 {
        !headers.close
    } else {
        headers.keep
    }
}

/// How a [`RequestParser::feed`] call left the parser.
#[derive(Debug)]
pub enum Parsed {
    /// The fed bytes were consumed (possibly into partial state) and
    /// no request completed yet — wait for more readiness.
    NeedMore,
    /// A complete request was decoded. Bytes after it were **not**
    /// consumed (see the `usize` in [`RequestParser::feed`]'s return) —
    /// they belong to the next pipelined request.
    Complete(Request),
}

/// Which message section [`RequestParser`] is accumulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParseState {
    RequestLine,
    Headers,
    Body,
}

/// The resumable request decoder: one instance per connection, fed
/// whatever bytes each readiness event delivered. Grammar, limits and
/// error texts are byte-for-byte those of [`read_request`] — the two
/// share `parse_request_line` and `apply_header_line`, and the
/// `http_incremental` property suite pins the equivalence across
/// arbitrary byte splits.
///
/// After [`Parsed::Complete`] the parser has reset itself and is ready
/// for the next pipelined request on the same connection. After any
/// `Err` the connection is poisoned — close it (exactly what the
/// blocking server did).
#[derive(Debug)]
pub struct RequestParser {
    state: ParseState,
    line: Vec<u8>,
    method: String,
    path: String,
    http11: bool,
    headers: HeaderBlock,
    header_lines: usize,
    body: Vec<u8>,
    started: bool,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser positioned before the first byte of a request.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: ParseState::RequestLine,
            line: Vec::with_capacity(64),
            method: String::new(),
            path: String::new(),
            http11: false,
            headers: HeaderBlock::default(),
            header_lines: 0,
            body: Vec::new(),
            started: false,
        }
    }

    /// Whether the parser sits between messages — no byte of a new
    /// request has been consumed. The reactor's keep-alive reaper only
    /// closes connections in this state or stalled ones; a connection
    /// actively streaming a body keeps refreshing its deadline.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        !self.started
    }

    /// Consumes bytes from `input`, advancing the partial-message
    /// state. Returns how many bytes were consumed and whether a
    /// request completed; on completion, unconsumed bytes belong to
    /// the next pipelined request — feed them to the (now reset)
    /// parser again.
    ///
    /// # Errors
    ///
    /// Exactly the [`read_request`] errors for the same byte stream:
    /// `Malformed` for grammar violations, `TooLarge` for exceeded
    /// limits. `Closed`/`IdleTimeout`/`Io` never originate here — they
    /// are transport-level conditions (see [`RequestParser::eof`]).
    pub fn feed(&mut self, input: &[u8]) -> Result<(usize, Parsed), HttpError> {
        let mut consumed = 0;
        while consumed < input.len() {
            match self.state {
                ParseState::RequestLine | ParseState::Headers => {
                    let byte = input[consumed];
                    consumed += 1;
                    self.started = true;
                    self.line.push(byte);
                    if byte == b'\n' {
                        if self.take_line()? {
                            return Ok((consumed, Parsed::Complete(self.complete())));
                        }
                    } else if self.line.len() >= MAX_LINE {
                        return Err(HttpError::TooLarge("line exceeds MAX_LINE"));
                    }
                }
                ParseState::Body => {
                    let want = self.headers.content_length - self.body.len();
                    let take = want.min(input.len() - consumed);
                    self.body
                        .extend_from_slice(&input[consumed..consumed + take]);
                    consumed += take;
                    if self.body.len() == self.headers.content_length {
                        return Ok((consumed, Parsed::Complete(self.complete())));
                    }
                }
            }
        }
        Ok((consumed, Parsed::NeedMore))
    }

    /// Finishes the just-terminated line in `self.line`. Returns `true`
    /// when the whole message is complete (headers ended with no body
    /// owed).
    fn take_line(&mut self) -> Result<bool, HttpError> {
        // Same trailing-terminator trim as the blocking read_line.
        while matches!(self.line.last(), Some(b'\n' | b'\r')) {
            self.line.pop();
        }
        let line = std::str::from_utf8(&self.line)
            .map_err(|_| HttpError::Malformed("non-UTF-8 line"))?
            .to_string();
        self.line.clear();
        match self.state {
            ParseState::RequestLine => {
                let (method, path, http11) = parse_request_line(&line)?;
                self.method = method;
                self.path = path;
                self.http11 = http11;
                self.state = ParseState::Headers;
                Ok(false)
            }
            ParseState::Headers => {
                if line.is_empty() {
                    if self.headers.content_length == 0 {
                        return Ok(true);
                    }
                    self.state = ParseState::Body;
                    self.body.reserve(self.headers.content_length);
                    return Ok(false);
                }
                self.header_lines += 1;
                // Order matters for equivalence with `read_headers`:
                // the blocking loop applies a just-read line *before*
                // its next-iteration count check, so a malformed
                // 101st header reports Malformed, not TooLarge.
                apply_header_line(&mut self.headers, &line)?;
                if self.header_lines > MAX_HEADERS {
                    return Err(HttpError::TooLarge("more than MAX_HEADERS headers"));
                }
                Ok(false)
            }
            ParseState::Body => unreachable!("body bytes are not line-framed"),
        }
    }

    /// Assembles the finished request and resets for the next one.
    fn complete(&mut self) -> Request {
        let request = Request {
            method: std::mem::take(&mut self.method),
            path: std::mem::take(&mut self.path),
            body: std::mem::take(&mut self.body),
            keep_alive: request_keep_alive(self.http11, &self.headers),
        };
        self.state = ParseState::RequestLine;
        self.line.clear();
        self.http11 = false;
        self.headers = HeaderBlock::default();
        self.header_lines = 0;
        self.started = false;
        request
    }

    /// The error an end-of-stream at the current position means — the
    /// same taxonomy the blocking decoder reports: a clean
    /// [`HttpError::Closed`] between messages, `Malformed` when the
    /// peer died mid-message.
    #[must_use]
    pub fn eof(&self) -> HttpError {
        if !self.started {
            HttpError::Closed
        } else if self.state == ParseState::Body {
            HttpError::Malformed("body shorter than Content-Length")
        } else {
            HttpError::Malformed("unterminated line")
        }
    }
}

/// Reads one response from a connection (client side).
///
/// # Errors
///
/// See [`HttpError`].
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, HttpError> {
    let line = read_line(reader, true)?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("empty status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("unparseable status code"))?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, headers.content_length)?;
    let http11 = version == "HTTP/1.1";
    Ok(Response {
        status,
        body,
        keep_alive: if http11 { !headers.close } else { headers.keep },
        retry_after: headers.retry_after,
    })
}

/// The standard reason phrase for the status codes the service emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a complete JSON response to bytes — status line, standard
/// headers, any `extra` headers, and the body. Split out from
/// [`write_response_with`] so callers that need byte-level control of
/// the transmit (fault-injection harnesses writing torn prefixes) share
/// the exact production formatting.
#[must_use]
pub fn format_response(
    status: u16,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, String)],
) -> Vec<u8> {
    format_response_with(status, body, keep_alive, "application/json", extra)
}

/// [`format_response`] with an explicit `Content-Type` — the `/metrics`
/// route answers `text/plain; version=0.0.4` (the Prometheus text
/// exposition type) while everything else stays JSON.
#[must_use]
pub fn format_response_with(
    status: u16,
    body: &str,
    keep_alive: bool,
    content_type: &str,
    extra: &[(&str, String)],
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason_phrase(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    out.into_bytes()
}

/// Writes a JSON response with extra headers (e.g. `Retry-After`).
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, String)],
) -> std::io::Result<()> {
    writer.write_all(&format_response(status, body, keep_alive, extra))?;
    writer.flush()
}

/// Writes a JSON response.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, body, keep_alive, &[])
}

/// Writes a JSON request (client side). `body` may be empty (`GET`).
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: kgae\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len(),
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trip() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/sessions", r#"{"id":"a"}"#).unwrap();
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sessions");
        assert_eq!(req.body, br#"{"id":"a"}"#);
        assert!(req.keep_alive);
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 201, r#"{"ok":true}"#, true).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, br#"{"ok":true}"#);
        assert!(resp.keep_alive);
    }

    #[test]
    fn retry_after_round_trips_and_bad_values_are_ignored() {
        let mut wire = Vec::new();
        write_response_with(
            &mut wire,
            429,
            r#"{"error":"quota"}"#,
            true,
            &[("Retry-After", "7".to_string())],
        )
        .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(7));

        let resp = read_response(&mut BufReader::new(
            &b"HTTP/1.1 200 OK\r\nRetry-After: soon\r\nContent-Length: 0\r\n\r\n"[..],
        ))
        .unwrap();
        assert_eq!(resp.retry_after, None);
    }

    #[test]
    fn clean_close_is_distinguished_from_garbage() {
        assert!(matches!(
            read_request(&mut BufReader::new(&b""[..])),
            Err(HttpError::Closed)
        ));
        assert!(matches!(
            read_request(&mut BufReader::new(&b"BLARGH\r\n\r\n"[..])),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request(&mut BufReader::new(
                &b"GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"[..]
            )),
            Err(HttpError::Malformed(_) | HttpError::TooLarge(_))
        ));
        assert!(matches!(
            read_request(&mut BufReader::new(
                &b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..]
            )),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_lines_are_rejected() {
        let mut wire = Vec::from(&b"GET /"[..]);
        wire.extend(std::iter::repeat_n(b'a', MAX_LINE * 2));
        wire.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(
            read_request(&mut BufReader::new(&wire[..])),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn http10_defaults_to_close() {
        let wire = b"GET / HTTP/1.0\r\n\r\n";
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert!(!req.keep_alive);
        let wire = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert!(!req.keep_alive);
    }
}
