//! The snapshot store: dormant sessions as files.
//!
//! A suspended evaluation campaign is a few KB of PR-2 snapshot bytes
//! plus a small JSON meta record (its spec and last observed status).
//! Spilling idle sessions here is what lets one server host millions of
//! dormant campaigns: RAM holds only the live ones, disk holds the
//! rest, and rehydration is lazy — a session is re-validated (snapshot
//! fingerprints and all) and rebuilt only when traffic returns for it.
//!
//! Layout: one directory, two files per session —
//! `<id>.meta.json` (spec + cached status) and `<id>.snap` (snapshot
//! bytes; absent for sessions that finished before eviction). Session
//! ids are restricted to a filename-safe alphabet at the API boundary
//! and re-checked here, so ids can never traverse paths. Writes go
//! through a temp file + rename, so a crashed write never corrupts an
//! existing record.

use std::io;
use std::path::{Path, PathBuf};

/// Maximum length of a session id.
pub const MAX_ID_LEN: usize = 64;

/// Whether `id` is a valid session id: 1–[`MAX_ID_LEN`] characters from
/// `[A-Za-z0-9._-]`, not starting with a dot. The alphabet doubles as
/// the store's filename contract.
#[must_use]
pub fn valid_session_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Lower-case hex encoding (snapshot bytes on the wire).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble"));
    }
    out
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex characters.
#[must_use]
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// A dormant session's on-disk record.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSession {
    /// The meta JSON document (spec + cached status), verbatim.
    pub meta: String,
    /// Snapshot bytes, when the session was suspended mid-flight
    /// (`None` for sessions that finished before eviction).
    pub snapshot: Option<Vec<u8>>,
}

/// A directory of dormant sessions.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn meta_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.meta.json"))
    }

    fn snap_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.snap"))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Appended (not substituted) extension: distinct target files
        // always get distinct temp files.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Persists a session record, replacing any previous one. With
    /// `snapshot: None` a stale `.snap` file from an earlier suspension
    /// is removed, keeping the record's two files consistent.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an invalid id; otherwise filesystem errors.
    pub fn save(&self, id: &str, meta: &str, snapshot: Option<&[u8]>) -> io::Result<()> {
        if !valid_session_id(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid session id {id:?}"),
            ));
        }
        match snapshot {
            Some(bytes) => self.write_atomic(&self.snap_path(id), bytes)?,
            None => match std::fs::remove_file(self.snap_path(id)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            },
        }
        self.write_atomic(&self.meta_path(id), meta.as_bytes())
    }

    /// Loads a session record; `Ok(None)` when the id is unknown.
    ///
    /// # Errors
    ///
    /// Filesystem errors other than a missing record.
    pub fn load(&self, id: &str) -> io::Result<Option<StoredSession>> {
        if !valid_session_id(id) {
            return Ok(None);
        }
        let meta = match std::fs::read_to_string(self.meta_path(id)) {
            Ok(meta) => meta,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let snapshot = match std::fs::read(self.snap_path(id)) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        Ok(Some(StoredSession { meta, snapshot }))
    }

    /// Whether a record exists for `id`.
    #[must_use]
    pub fn contains(&self, id: &str) -> bool {
        valid_session_id(id) && self.meta_path(id).exists()
    }

    /// Removes a session record (idempotent).
    ///
    /// # Errors
    ///
    /// Filesystem errors other than a missing record.
    pub fn remove(&self, id: &str) -> io::Result<()> {
        if !valid_session_id(id) {
            return Ok(());
        }
        for path in [self.meta_path(id), self.snap_path(id)] {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Ids of every stored session, sorted.
    ///
    /// # Errors
    ///
    /// Directory-read failures.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name.strip_suffix(".meta.json") {
                if valid_session_id(id) {
                    ids.push(id.to_string());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kgae-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn id_validation_blocks_path_tricks() {
        assert!(valid_session_id("campaign-07.retry_2"));
        assert!(valid_session_id("A"));
        for bad in ["", ".", "..", ".hidden", "a/b", "a\\b", "a b", "caf\u{e9}"] {
            assert!(!valid_session_id(bad), "{bad:?}");
        }
        assert!(!valid_session_id(&"x".repeat(MAX_ID_LEN + 1)));
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn save_load_remove_round_trip() {
        let store = SnapshotStore::open(temp_dir("roundtrip")).unwrap();
        assert_eq!(store.load("s1").unwrap(), None);
        store
            .save("s1", r#"{"state":"suspended"}"#, Some(&[1, 2, 3]))
            .unwrap();
        let rec = store.load("s1").unwrap().unwrap();
        assert_eq!(rec.meta, r#"{"state":"suspended"}"#);
        assert_eq!(rec.snapshot.as_deref(), Some(&[1u8, 2, 3][..]));
        // Re-saving without a snapshot clears the stale .snap file.
        store.save("s1", r#"{"state":"finished"}"#, None).unwrap();
        let rec = store.load("s1").unwrap().unwrap();
        assert_eq!(rec.snapshot, None);
        store.save("s2", "{}", None).unwrap();
        assert_eq!(store.list().unwrap(), vec!["s1".to_string(), "s2".into()]);
        assert!(store.contains("s1"));
        store.remove("s1").unwrap();
        store.remove("s1").unwrap(); // idempotent
        assert!(!store.contains("s1"));
        assert_eq!(store.list().unwrap(), vec!["s2".to_string()]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn invalid_ids_never_touch_the_filesystem() {
        let store = SnapshotStore::open(temp_dir("invalid")).unwrap();
        assert!(store.save("../escape", "{}", None).is_err());
        assert_eq!(store.load("../escape").unwrap(), None);
        assert!(!store.contains("../escape"));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
