//! The snapshot store: dormant sessions as files.
//!
//! A suspended evaluation campaign is a few KB of PR-2 snapshot bytes
//! plus a small JSON meta record (its spec and last observed status).
//! Spilling idle sessions here is what lets one server host millions of
//! dormant campaigns: RAM holds only the live ones, disk holds the
//! rest, and rehydration is lazy — a session is re-validated (snapshot
//! fingerprints and all) and rebuilt only when traffic returns for it.
//!
//! Layout: one directory, two files per session —
//! `<id>.meta.json` (spec + cached status) and `<id>.snap` (snapshot
//! bytes; absent for sessions that finished before eviction). Session
//! ids are restricted to a filename-safe alphabet at the API boundary
//! and re-checked here, so ids can never traverse paths. `quarantine`
//! and any id ending in `.tmp` are reserved (they would collide with
//! the recovery machinery below) and rejected at the same boundary.
//!
//! # Crash safety
//!
//! Writes go through a temp file that is fsynced and then renamed into
//! place, so a crashed write never corrupts an existing record — the
//! worst a crash leaves behind is an orphaned `<name>.tmp`. [`open`]
//! therefore runs a **recovery sweep** before serving any traffic:
//!
//! 1. Every orphaned `.tmp` is *promoted* (renamed into place) when its
//!    rename target is missing and its content validates — the crash
//!    hit between fsync and rename, the write is complete; otherwise it
//!    is *discarded* — either the committed target already exists and
//!    wins, or the temp is torn.
//! 2. Every surviving record is validated: meta records must parse as
//!    JSON naming the right id and a known state; snapshots must carry
//!    a well-formed header. Records that fail — and suspended records
//!    missing their snapshot, and snapshots missing their meta — are
//!    moved into a `quarantine/` subdirectory (never deleted, never
//!    panicked over) with a `.reason` note for the operator.
//!
//! The sweep's [`RecoveryReport`] lists what was promoted, discarded,
//! quarantined and recovered; `kgae-serve` logs it at startup. Ids
//! found in `quarantine/` persist across restarts via
//! [`SnapshotStore::quarantined_ids`], so the manager can answer `410
//! Gone` for them instead of `404`.
//!
//! [`open`]: SnapshotStore::open

use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::fault;
use crate::metrics::Metrics;

/// Maximum length of a session id.
pub const MAX_ID_LEN: usize = 64;

/// Name of the store subdirectory holding quarantined records.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Whether `id` is a valid session id: 1–[`MAX_ID_LEN`] characters from
/// `[A-Za-z0-9._-]`, not starting with a dot, and not one of the
/// store's reserved names (`quarantine`, anything ending in `.tmp`).
/// The alphabet doubles as the store's filename contract.
#[must_use]
pub fn valid_session_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && !id.starts_with('.')
        && id != QUARANTINE_DIR
        && !id.ends_with(".tmp")
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Lower-case hex encoding (snapshot bytes on the wire).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble"));
    }
    out
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex characters.
#[must_use]
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// A dormant session's on-disk record.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSession {
    /// The meta JSON document (spec + cached status), verbatim.
    pub meta: String,
    /// Snapshot bytes, when the session was suspended mid-flight
    /// (`None` for sessions that finished before eviction).
    pub snapshot: Option<Vec<u8>>,
}

/// What the startup recovery sweep did (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// File names of orphaned `.tmp` writes completed by promotion.
    pub promoted: Vec<String>,
    /// File names of orphaned `.tmp` writes discarded (target already
    /// committed, or the temp content was torn).
    pub discarded: Vec<String>,
    /// `(session id, reason)` for every record moved to `quarantine/`
    /// by this sweep.
    pub quarantined: Vec<(String, String)>,
    /// Ids of every session that survived the sweep intact.
    pub recovered: Vec<String>,
}

impl RecoveryReport {
    /// Whether the sweep found nothing to repair.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.promoted.is_empty() && self.discarded.is_empty() && self.quarantined.is_empty()
    }
}

/// A directory of dormant sessions.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    recovery: RecoveryReport,
    /// Durability counters (bytes written, fsyncs, quarantines); absent
    /// until [`SnapshotStore::set_metrics`] attaches a registry.
    metrics: Option<Arc<Metrics>>,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`, running the
    /// recovery sweep described in the module docs before returning.
    /// The sweep's findings are kept on the store
    /// ([`SnapshotStore::recovery_report`]).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and sweep I/O failures. A corrupt
    /// *record* is never an error — it is quarantined — but an
    /// unreadable *directory* is.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        std::fs::create_dir_all(dir.join(QUARANTINE_DIR))?;
        let mut store = Self {
            dir,
            recovery: RecoveryReport::default(),
            metrics: None,
        };
        store.recovery = store.recover()?;
        Ok(store)
    }

    /// Attaches a metrics registry: subsequent writes count bytes and
    /// fsyncs, quarantines count records, and whatever the recovery
    /// sweep already quarantined is credited up front.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        metrics
            .store_recovery_quarantined
            .fetch_add(self.recovery.quarantined.len() as u64, Ordering::Relaxed);
        self.metrics = Some(metrics);
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the recovery sweep found when this store was opened.
    #[must_use]
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    pub(crate) fn meta_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.meta.json"))
    }

    pub(crate) fn snap_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.snap"))
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8], site: &'static str) -> io::Result<()> {
        // Appended (not substituted) extension: distinct target files
        // always get distinct temp files.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut file = std::fs::File::create(&tmp)?;
        #[cfg(feature = "fault-injection")]
        match fault::check(site) {
            Some(fault::FaultAction::Crash) => std::process::abort(),
            Some(fault::FaultAction::Torn(n)) => {
                // Persist a prefix, make sure it reaches disk, then die
                // — the strongest torn-write a crash can leave behind.
                let _ = file.write_all(&bytes[..n.min(bytes.len())]);
                let _ = file.sync_all();
                std::process::abort();
            }
            Some(fault::FaultAction::Err) => return Err(fault::injected_error()),
            Some(fault::FaultAction::Drop) | None => {}
        }
        #[cfg(not(feature = "fault-injection"))]
        let _ = site;
        file.write_all(bytes)?;
        // fsync before rename: otherwise a power cut can commit the
        // rename but not the data, turning an atomic write into a
        // torn one.
        file.sync_all()?;
        drop(file);
        if let Some(metrics) = &self.metrics {
            // Counted only after the sync succeeded: the counters
            // promise durable bytes, not attempted ones.
            metrics
                .store_bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            metrics.store_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        match fault::check(fault::site::STORE_RENAME) {
            Some(fault::FaultAction::Crash) => std::process::abort(),
            Some(fault::FaultAction::Err) => {
                #[cfg(feature = "fault-injection")]
                return Err(fault::injected_error());
            }
            _ => {}
        }
        std::fs::rename(&tmp, path)
    }

    /// Persists a session record, replacing any previous one. With
    /// `snapshot: None` a stale `.snap` file from an earlier suspension
    /// is removed, keeping the record's two files consistent.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an invalid id; otherwise filesystem errors.
    pub fn save(&self, id: &str, meta: &str, snapshot: Option<&[u8]>) -> io::Result<()> {
        if !valid_session_id(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid session id {id:?}"),
            ));
        }
        match snapshot {
            Some(bytes) => {
                self.write_atomic(&self.snap_path(id), bytes, fault::site::STORE_SNAP_WRITE)?;
            }
            None => match std::fs::remove_file(self.snap_path(id)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            },
        }
        self.write_atomic(
            &self.meta_path(id),
            meta.as_bytes(),
            fault::site::STORE_META_WRITE,
        )
    }

    /// Loads a session record; `Ok(None)` when the id is unknown.
    ///
    /// # Errors
    ///
    /// Filesystem errors other than a missing record.
    pub fn load(&self, id: &str) -> io::Result<Option<StoredSession>> {
        if !valid_session_id(id) {
            return Ok(None);
        }
        match fault::check(fault::site::STORE_READ) {
            Some(fault::FaultAction::Crash) => std::process::abort(),
            #[cfg(feature = "fault-injection")]
            Some(fault::FaultAction::Err) => return Err(fault::injected_error()),
            _ => {}
        }
        let meta = match std::fs::read_to_string(self.meta_path(id)) {
            Ok(meta) => meta,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let snapshot = match std::fs::read(self.snap_path(id)) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        Ok(Some(StoredSession { meta, snapshot }))
    }

    /// Whether a record exists for `id`.
    #[must_use]
    pub fn contains(&self, id: &str) -> bool {
        valid_session_id(id) && self.meta_path(id).exists()
    }

    /// Removes a session record (idempotent).
    ///
    /// # Errors
    ///
    /// Filesystem errors other than a missing record.
    pub fn remove(&self, id: &str) -> io::Result<()> {
        if !valid_session_id(id) {
            return Ok(());
        }
        for path in [self.meta_path(id), self.snap_path(id)] {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Ids of every stored session, sorted.
    ///
    /// # Errors
    ///
    /// Directory-read failures.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name.strip_suffix(".meta.json") {
                if valid_session_id(id) {
                    ids.push(id.to_string());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Moves a session's record files into `quarantine/`, replacing any
    /// older quarantined copy, and writes a `<id>.reason` note. Used by
    /// the recovery sweep and by the manager when a record turns out to
    /// be corrupt at rehydration time. Idempotent; a partial record
    /// (meta or snap missing) quarantines whatever exists.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an invalid id; otherwise filesystem errors.
    pub fn quarantine(&self, id: &str, reason: &str) -> io::Result<()> {
        if !valid_session_id(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid session id {id:?}"),
            ));
        }
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir)?;
        for (path, name) in [
            (self.meta_path(id), format!("{id}.meta.json")),
            (self.snap_path(id), format!("{id}.snap")),
        ] {
            match std::fs::rename(&path, qdir.join(name)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        std::fs::write(qdir.join(format!("{id}.reason")), format!("{reason}\n"))?;
        if let Some(metrics) = &self.metrics {
            metrics.store_quarantined.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Ids with records in `quarantine/`, sorted — persists across
    /// restarts, so a restarted server keeps answering `410 Gone` for
    /// them.
    ///
    /// # Errors
    ///
    /// Directory-read failures.
    pub fn quarantined_ids(&self) -> io::Result<Vec<String>> {
        let mut ids = BTreeSet::new();
        let entries = match std::fs::read_dir(self.quarantine_dir()) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let id = name
                .strip_suffix(".meta.json")
                .or_else(|| name.strip_suffix(".snap"))
                .or_else(|| name.strip_suffix(".reason"));
            if let Some(id) = id {
                if valid_session_id(id) {
                    ids.insert(id.to_string());
                }
            }
        }
        Ok(ids.into_iter().collect())
    }

    // -----------------------------------------------------------------
    // Recovery sweep
    // -----------------------------------------------------------------

    /// Whether `bytes` is a plausible committed file named `name`:
    /// meta records must be JSON naming the right id and a known state,
    /// snapshots must carry a well-formed fingerprinted header.
    fn content_valid(name: &str, bytes: &[u8]) -> bool {
        if let Some(id) = name.strip_suffix(".meta.json") {
            return meta_plausible(id, bytes);
        }
        if name.strip_suffix(".snap").is_some() {
            return kgae_core::peek_any_header(bytes).is_ok();
        }
        false
    }

    /// Pass 1: finish or discard orphaned `.tmp` files.
    fn sweep_tmp_files(&self, report: &mut RecoveryReport) -> io::Result<()> {
        let mut tmp_files = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if name.ends_with(".tmp") {
                    tmp_files.push(name.to_string());
                }
            }
        }
        tmp_files.sort();
        for name in tmp_files {
            let tmp = self.dir.join(&name);
            let target_name = name.strip_suffix(".tmp").expect("filtered above");
            let target = self.dir.join(target_name);
            // When the rename target exists the committed state wins;
            // otherwise promote iff the temp content is a complete,
            // valid record (the crash hit between fsync and rename).
            let promote = !target_name.is_empty()
                && !target.exists()
                && std::fs::read(&tmp)
                    .map(|bytes| Self::content_valid(target_name, &bytes))
                    .unwrap_or(false);
            if promote {
                std::fs::rename(&tmp, &target)?;
                report.promoted.push(target_name.to_string());
            } else {
                std::fs::remove_file(&tmp)?;
                report.discarded.push(name);
            }
        }
        Ok(())
    }

    /// Pass 2: validate every surviving record, quarantining the broken
    /// ones.
    fn sweep_records(&self, report: &mut RecoveryReport) -> io::Result<()> {
        let mut metas = BTreeSet::new();
        let mut snaps = BTreeSet::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name.strip_suffix(".meta.json") {
                if valid_session_id(id) {
                    metas.insert(id.to_string());
                }
            } else if let Some(id) = name.strip_suffix(".snap") {
                if valid_session_id(id) {
                    snaps.insert(id.to_string());
                }
            }
        }
        let condemn = |id: &str, reason: &str, report: &mut RecoveryReport| -> io::Result<()> {
            self.quarantine(id, reason)?;
            report
                .quarantined
                .push((id.to_string(), reason.to_string()));
            Ok(())
        };
        for id in snaps.difference(&metas) {
            condemn(id, "snapshot without a meta record", report)?;
        }
        'meta: for id in &metas {
            let meta = std::fs::read(self.meta_path(id))?;
            let Some(state) = meta_state(id, &meta) else {
                condemn(id, "unreadable meta record", report)?;
                continue;
            };
            match (state, snaps.contains(id)) {
                (MetaState::Suspended, false) => {
                    condemn(id, "suspended session missing its snapshot", report)?;
                    continue;
                }
                (MetaState::Suspended, true) => {
                    let snap = std::fs::read(self.snap_path(id))?;
                    if let Err(e) = kgae_core::peek_any_header(&snap) {
                        condemn(id, &format!("corrupt or truncated snapshot: {e}"), report)?;
                        continue 'meta;
                    }
                }
                // A finished record needs no snapshot; a stray one
                // (crash between snap removal and meta write) is
                // harmless and ignored at load time.
                (MetaState::Finished, _) => {}
            }
            report.recovered.push(id.clone());
        }
        Ok(())
    }

    fn recover(&self) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        self.sweep_tmp_files(&mut report)?;
        self.sweep_records(&mut report)?;
        report.recovered.sort();
        Ok(report)
    }
}

/// The two states a persisted meta record can be in. (The manager never
/// persists a running session.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MetaState {
    Suspended,
    Finished,
}

/// Structural validation of a meta record at the store level: JSON,
/// names `id`, carries a known state. Full spec decoding stays with
/// the manager — rehydration re-checks everything and quarantines on
/// failure; the sweep only needs to catch torn or foreign files.
pub(crate) fn meta_state(id: &str, bytes: &[u8]) -> Option<MetaState> {
    let text = std::str::from_utf8(bytes).ok()?;
    let doc = crate::json::parse(text).ok()?;
    let spec_id = doc.get("spec")?.get("id")?.as_str()?;
    if spec_id != id {
        return None;
    }
    match doc.get("state")?.as_str()? {
        "suspended" => Some(MetaState::Suspended),
        "finished" => Some(MetaState::Finished),
        _ => None,
    }
}

fn meta_plausible(id: &str, bytes: &[u8]) -> bool {
    meta_state(id, bytes).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kgae-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta_for(id: &str, state: &str) -> String {
        format!(r#"{{"spec":{{"id":"{id}"}},"state":"{state}"}}"#)
    }

    /// A structurally valid snapshot: round-trip one through a real
    /// engine so `peek_any_header` accepts it.
    fn real_snapshot() -> Vec<u8> {
        use kgae_graph::GroundTruth;
        use rand::SeedableRng;
        let kg = kgae_graph::datasets::syn_scaled(256, 16, 0.8, 11);
        let mut session = kgae_core::EvaluationSession::new(
            &kg,
            kgae_core::SamplingDesign::Srs,
            &kgae_core::IntervalMethod::Wilson,
            &kgae_core::EvalConfig::default(),
            rand::rngs::SmallRng::seed_from_u64(3),
        );
        let request = session.next_request(8).expect("request").expect("batch");
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        session.submit(&labels).expect("submit");
        session.snapshot().expect("snapshot")
    }

    #[test]
    fn id_validation_blocks_path_tricks_and_reserved_names() {
        assert!(valid_session_id("campaign-07.retry_2"));
        assert!(valid_session_id("A"));
        assert!(
            valid_session_id("quarantine2"),
            "only the exact name is reserved"
        );
        for bad in ["", ".", "..", ".hidden", "a/b", "a\\b", "a b", "caf\u{e9}"] {
            assert!(!valid_session_id(bad), "{bad:?}");
        }
        for reserved in ["quarantine", "x.tmp", "a.meta.json.tmp", ".tmp"] {
            assert!(!valid_session_id(reserved), "{reserved:?}");
        }
        assert!(!valid_session_id(&"x".repeat(MAX_ID_LEN + 1)));
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn save_load_remove_round_trip() {
        let store = SnapshotStore::open(temp_dir("roundtrip")).unwrap();
        assert_eq!(store.load("s1").unwrap(), None);
        store
            .save("s1", r#"{"state":"suspended"}"#, Some(&[1, 2, 3]))
            .unwrap();
        let rec = store.load("s1").unwrap().unwrap();
        assert_eq!(rec.meta, r#"{"state":"suspended"}"#);
        assert_eq!(rec.snapshot.as_deref(), Some(&[1u8, 2, 3][..]));
        // Re-saving without a snapshot clears the stale .snap file.
        store.save("s1", r#"{"state":"finished"}"#, None).unwrap();
        let rec = store.load("s1").unwrap().unwrap();
        assert_eq!(rec.snapshot, None);
        store.save("s2", "{}", None).unwrap();
        assert_eq!(store.list().unwrap(), vec!["s1".to_string(), "s2".into()]);
        assert!(store.contains("s1"));
        store.remove("s1").unwrap();
        store.remove("s1").unwrap(); // idempotent
        assert!(!store.contains("s1"));
        assert_eq!(store.list().unwrap(), vec!["s2".to_string()]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn invalid_ids_never_touch_the_filesystem() {
        let store = SnapshotStore::open(temp_dir("invalid")).unwrap();
        assert!(store.save("../escape", "{}", None).is_err());
        assert_eq!(store.load("../escape").unwrap(), None);
        assert!(!store.contains("../escape"));
        assert!(store.save("quarantine", "{}", None).is_err());
        assert!(store.save("x.tmp", "{}", None).is_err());
        assert!(store.quarantine("../escape", "r").is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn recovery_promotes_complete_orphan_tmp_writes() {
        let dir = temp_dir("promote");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = real_snapshot();
        // Crash between fsync and rename: full, valid temp files with
        // no committed target.
        std::fs::write(dir.join("s1.meta.json.tmp"), meta_for("s1", "suspended")).unwrap();
        std::fs::write(dir.join("s1.snap.tmp"), &snap).unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        let report = store.recovery_report();
        assert_eq!(
            report.promoted,
            vec!["s1.meta.json".to_string(), "s1.snap".into()]
        );
        assert_eq!(report.recovered, vec!["s1".to_string()]);
        assert!(report.quarantined.is_empty());
        let rec = store.load("s1").unwrap().unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&snap[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_discards_tmp_when_target_committed_or_torn() {
        let dir = temp_dir("discard");
        std::fs::create_dir_all(&dir).unwrap();
        // Committed meta wins over a lingering temp.
        std::fs::write(dir.join("s1.meta.json"), meta_for("s1", "finished")).unwrap();
        std::fs::write(dir.join("s1.meta.json.tmp"), meta_for("s1", "suspended")).unwrap();
        // Torn snapshot temp with no target: discarded, not promoted.
        std::fs::write(dir.join("s2.snap.tmp"), &real_snapshot()[..5]).unwrap();
        // A stray tmp with no recognizable target shape.
        std::fs::write(dir.join("junk.tmp"), b"?").unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        let report = store.recovery_report();
        assert!(report.promoted.is_empty());
        assert_eq!(
            report.discarded,
            vec![
                "junk.tmp".to_string(),
                "s1.meta.json.tmp".into(),
                "s2.snap.tmp".into()
            ]
        );
        assert_eq!(report.recovered, vec!["s1".to_string()]);
        let rec = store.load("s1").unwrap().unwrap();
        assert_eq!(rec.meta, meta_for("s1", "finished"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_quarantines_corrupt_and_partial_records() {
        let dir = temp_dir("quarantine");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = real_snapshot();
        // Intact suspended record survives.
        std::fs::write(dir.join("ok.meta.json"), meta_for("ok", "suspended")).unwrap();
        std::fs::write(dir.join("ok.snap"), &snap).unwrap();
        // Truncated snapshot.
        std::fs::write(dir.join("torn.meta.json"), meta_for("torn", "suspended")).unwrap();
        std::fs::write(dir.join("torn.snap"), &snap[..3]).unwrap();
        // Suspended meta without any snapshot.
        std::fs::write(dir.join("lost.meta.json"), meta_for("lost", "suspended")).unwrap();
        // Snapshot without a meta record.
        std::fs::write(dir.join("orphan.snap"), &snap).unwrap();
        // Meta that is not even JSON.
        std::fs::write(dir.join("garbled.meta.json"), b"\xff\xfe{{{").unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        let report = store.recovery_report().clone();
        assert_eq!(report.recovered, vec!["ok".to_string()]);
        let ids: Vec<&str> = report
            .quarantined
            .iter()
            .map(|(id, _)| id.as_str())
            .collect();
        assert_eq!(ids, vec!["orphan", "garbled", "lost", "torn"]);
        assert_eq!(
            store.quarantined_ids().unwrap(),
            vec![
                "garbled".to_string(),
                "lost".into(),
                "orphan".into(),
                "torn".into()
            ]
        );
        // Quarantined records are out of the index but preserved on
        // disk, with a reason note.
        assert_eq!(store.list().unwrap(), vec!["ok".to_string()]);
        assert!(dir.join(QUARANTINE_DIR).join("torn.snap").exists());
        let reason = std::fs::read_to_string(dir.join(QUARANTINE_DIR).join("torn.reason")).unwrap();
        assert!(reason.contains("snapshot"), "{reason:?}");
        // Re-opening is stable: nothing more to repair, quarantine
        // ids persist.
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.recovery_report().is_clean());
        assert_eq!(store.recovery_report().recovered, vec!["ok".to_string()]);
        assert_eq!(store.quarantined_ids().unwrap().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_state_rejects_foreign_and_mismatched_documents() {
        assert_eq!(
            meta_state("a", meta_for("a", "suspended").as_bytes()),
            Some(MetaState::Suspended)
        );
        assert_eq!(
            meta_state("a", meta_for("a", "finished").as_bytes()),
            Some(MetaState::Finished)
        );
        assert_eq!(meta_state("a", meta_for("b", "finished").as_bytes()), None);
        assert_eq!(meta_state("a", meta_for("a", "running").as_bytes()), None);
        assert_eq!(meta_state("a", b"not json"), None);
        assert_eq!(meta_state("a", b"{}"), None);
    }
}
