//! The janitor: a background maintenance worker that keeps a running
//! service tidy without operator attention.
//!
//! On a configurable tick the janitor does four jobs, every one
//! reported through the shared [`Metrics`] registry:
//!
//! 1. **TTL aging** (opt-in via [`JanitorConfig::idle_ttl`]): live
//!    sessions idle past the TTL are suspended to disk; suspended and
//!    finished sessions idle past it are evicted from memory. "Idle"
//!    is measured from the last create/poll/submit/resume — status
//!    reads don't keep a session warm, and live sessions with an
//!    outstanding annotation batch are never aged (labels are owed).
//! 2. **Temp-file GC**: stale `*.tmp` files in the store directory —
//!    crash leftovers the startup sweep didn't see — are removed.
//! 3. **Orphan GC**: `<id>.snap` files with no `<id>.meta.json` are
//!    removed.
//! 4. **Compaction**: `<id>.snap` files whose meta records a finished
//!    session are removed (a finished record is meta-only; the stray
//!    snapshot is a crash leftover).
//!
//! # Why this can't race a request
//!
//! Every store write the manager performs happens **under the session
//! id's shard lock**. The janitor takes the same lock (through
//! `SessionManager::with_session_lock`) before touching any file
//! that belongs to a session id, so it can never see — or delete — a
//! half-written record of an in-flight save. Files whose id is
//! currently in memory are left alone entirely, and every deletion
//! additionally requires the file to be older than
//! [`JanitorConfig::grace`], so even non-session debris is only
//! collected once it has provably been sitting around.
//!
//! Aging goes through the ordinary [`SessionManager::suspend`] /
//! [`SessionManager::evict`] entry points and tolerates every
//! concurrent-modification refusal (a request arriving mid-tick simply
//! wins), which is what keeps janitor interleaving invisible to
//! clients — the `manager_stress` suite asserts results stay
//! bit-identical with an aggressive janitor running.

use crate::manager::{SessionManager, SessionState};
use crate::metrics::Metrics;
use crate::store::{self, valid_session_id};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

/// Janitor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JanitorConfig {
    /// Pause between maintenance ticks.
    pub tick: Duration,
    /// Age an in-memory session to disk once idle this long. `None`
    /// disables aging (file GC and compaction still run).
    pub idle_ttl: Option<Duration>,
    /// Minimum file age before GC touches it. Guards non-session
    /// debris; session files are already guarded by the shard lock.
    pub grace: Duration,
}

impl Default for JanitorConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_secs(30),
            idle_ttl: None,
            grace: Duration::from_secs(60),
        }
    }
}

/// What one maintenance tick did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Idle live sessions suspended to disk.
    pub aged_suspended: u64,
    /// Idle suspended/finished sessions evicted from memory.
    pub aged_evicted: u64,
    /// Stale `*.tmp` files removed.
    pub gc_tmp: u64,
    /// Orphaned `.snap` files (no meta) removed.
    pub gc_orphan_snaps: u64,
    /// Stray snapshots of finished sessions removed.
    pub compacted: u64,
}

impl TickReport {
    /// Whether the tick found nothing to do.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        *self == Self::default()
    }
}

/// Stop signal shared between a running janitor and its handle.
type StopFlag = Arc<(Mutex<bool>, Condvar)>;

/// Stops a janitor loop from another thread (async-signal-unsafe;
/// call from ordinary shutdown paths, not signal handlers).
#[derive(Debug, Clone)]
pub struct JanitorHandle {
    stop: StopFlag,
}

impl JanitorHandle {
    /// Wakes the janitor loop and makes it return.
    pub fn stop(&self) {
        let (flag, condvar) = &*self.stop;
        *flag.lock().expect("janitor stop lock") = true;
        condvar.notify_all();
    }
}

/// The background maintenance worker. [`Janitor::run`] loops ticks on
/// its own thread; [`Janitor::tick`] runs exactly one maintenance pass
/// (what the deterministic tests drive).
#[derive(Debug)]
pub struct Janitor {
    config: JanitorConfig,
    metrics: Option<Arc<Metrics>>,
    stop: StopFlag,
}

impl Janitor {
    /// A janitor with the given tuning, reporting nowhere yet.
    #[must_use]
    pub fn new(config: JanitorConfig) -> Self {
        Self {
            config,
            metrics: None,
            stop: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }

    /// Attaches the shared metrics registry (builder-style); every
    /// tick then reports its counts there.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// A handle that stops [`Janitor::run`] from another thread.
    #[must_use]
    pub fn handle(&self) -> JanitorHandle {
        JanitorHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Ticks every [`JanitorConfig::tick`] until the handle stops it.
    /// The pause is condvar-based, so a stop lands immediately instead
    /// of after the current sleep.
    pub fn run(&self, manager: &SessionManager<'_>) {
        let (flag, condvar) = &*self.stop;
        loop {
            let mut stopped = flag.lock().expect("janitor stop lock");
            while !*stopped {
                let (guard, timeout) = condvar
                    .wait_timeout(stopped, self.config.tick)
                    .expect("janitor stop lock");
                stopped = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stopped {
                return;
            }
            drop(stopped);
            self.tick(manager);
        }
    }

    /// One maintenance pass: TTL aging, temp GC, orphan GC,
    /// compaction. Never fails — anything that refuses (a request
    /// racing the janitor, an unreadable file) is simply skipped and
    /// retried on a later tick.
    pub fn tick(&self, manager: &SessionManager<'_>) -> TickReport {
        let mut report = TickReport::default();
        if let Some(ttl) = self.config.idle_ttl {
            self.age_idle(manager, ttl, &mut report);
        }
        self.collect_files(manager, &mut report);
        if let Some(metrics) = &self.metrics {
            metrics.janitor_ticks.fetch_add(1, Ordering::Relaxed);
            for (counter, value) in [
                (&metrics.janitor_aged_suspended, report.aged_suspended),
                (&metrics.janitor_aged_evicted, report.aged_evicted),
                (&metrics.janitor_gc_tmp, report.gc_tmp),
                (&metrics.janitor_gc_orphan_snaps, report.gc_orphan_snaps),
                (&metrics.janitor_compacted, report.compacted),
            ] {
                counter.fetch_add(value, Ordering::Relaxed);
            }
        }
        report
    }

    /// Ages idle in-memory sessions through the ordinary suspend/evict
    /// entry points, tolerating every concurrent-modification refusal.
    fn age_idle(&self, manager: &SessionManager<'_>, ttl: Duration, report: &mut TickReport) {
        for (id, state) in manager.idle_sessions(ttl) {
            match state {
                SessionState::Running => {
                    if manager.suspend(&id).is_ok() {
                        report.aged_suspended += 1;
                    }
                }
                SessionState::Suspended | SessionState::Finished => {
                    if manager.evict(&id).is_ok() {
                        report.aged_evicted += 1;
                    }
                }
                SessionState::Evicted => {}
            }
        }
    }

    /// Sweeps the store directory for temp files, orphaned snapshots,
    /// and compactable finished-session snapshots.
    fn collect_files(&self, manager: &SessionManager<'_>, report: &mut TickReport) {
        let store = manager.store();
        let Ok(entries) = std::fs::read_dir(store.dir()) else {
            return;
        };
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|entry| entry.file_name().to_str().map(str::to_string))
            .collect();
        names.sort();
        for name in &names {
            if let Some(target) = name.strip_suffix(".tmp") {
                let path = store.dir().join(name);
                match session_id_of_file(target) {
                    // A session-shaped temp: the shard lock proves no
                    // save is in flight for this id, so it is debris.
                    Some(id) => {
                        if manager.with_session_lock(id, |_| self.remove_aged(&path)) {
                            report.gc_tmp += 1;
                        }
                    }
                    // Junk-named temp: grace period alone.
                    None => {
                        if self.remove_aged(&path) {
                            report.gc_tmp += 1;
                        }
                    }
                }
            } else if let Some(id) = name.strip_suffix(".snap") {
                if !valid_session_id(id) {
                    continue;
                }
                let has_meta = names.iter().any(|n| n == &format!("{id}.meta.json"));
                if !has_meta {
                    // Orphaned snapshot. Re-check under the shard lock
                    // (a save writes snap before meta, so the meta may
                    // have landed since the listing) and leave any
                    // in-memory session's files alone.
                    let removed = manager.with_session_lock(id, |in_memory| {
                        !in_memory
                            && !store.meta_path(id).exists()
                            && self.remove_aged(&store.snap_path(id))
                    });
                    if removed {
                        report.gc_orphan_snaps += 1;
                    }
                } else {
                    // Snapshot beside a meta record: compact it away iff
                    // the meta marks the session finished (finished
                    // records are meta-only).
                    let removed = manager.with_session_lock(id, |in_memory| {
                        if in_memory {
                            return false;
                        }
                        let finished = std::fs::read(store.meta_path(id))
                            .ok()
                            .and_then(|bytes| store::meta_state(id, &bytes))
                            == Some(store::MetaState::Finished);
                        finished && self.remove_aged(&store.snap_path(id))
                    });
                    if removed {
                        report.compacted += 1;
                    }
                }
            }
        }
    }

    /// Removes `path` if it still exists and is older than the grace
    /// period; reports whether a removal happened.
    fn remove_aged(&self, path: &Path) -> bool {
        older_than(path, self.config.grace) && std::fs::remove_file(path).is_ok()
    }
}

/// The session id a store file name (sans `.tmp`) belongs to, when it
/// is shaped like one.
fn session_id_of_file(name: &str) -> Option<&str> {
    let id = name
        .strip_suffix(".meta.json")
        .or_else(|| name.strip_suffix(".snap"))?;
    valid_session_id(id).then_some(id)
}

/// Whether `path` exists with an mtime at least `grace` in the past.
/// Unreadable metadata means "not yet" — the file is retried on a
/// later tick.
fn older_than(path: &Path, grace: Duration) -> bool {
    let Ok(meta) = std::fs::metadata(path) else {
        return false;
    };
    let Ok(modified) = meta.modified() else {
        return false;
    };
    SystemTime::now()
        .duration_since(modified)
        .is_ok_and(|age| age >= grace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_classify_as_session_records_or_junk() {
        assert_eq!(session_id_of_file("abc.meta.json"), Some("abc"));
        assert_eq!(session_id_of_file("abc.snap"), Some("abc"));
        assert_eq!(session_id_of_file("abc"), None);
        assert_eq!(session_id_of_file(".hidden.snap"), None, "invalid id");
        assert_eq!(session_id_of_file(""), None);
    }

    #[test]
    fn default_config_ages_nothing_and_waits_a_minute() {
        let config = JanitorConfig::default();
        assert_eq!(config.idle_ttl, None);
        assert_eq!(config.grace, Duration::from_secs(60));
        assert!(TickReport::default().is_idle());
    }
}
