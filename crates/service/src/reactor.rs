//! The std-only readiness reactor: one event-loop thread multiplexes
//! every connection over POSIX `poll(2)` (via the vendored [`polling`]
//! shim), and the worker pool executes only **ready, fully-parsed**
//! requests. This replaces the thread-per-connection front where one
//! pool worker owned one keep-alive connection for its lifetime —
//! connection capacity is now bounded by file descriptors, and
//! `--workers` bounds *in-flight requests* instead.
//!
//! ```text
//!                        ┌───────────────────────────────┐
//!   accept ──────────────►          reactor thread       │
//!   readable ────────────► poll(2) → read → RequestParser│──ready Job──► worker pool
//!   writable ────────────► resume partial response writes│◄──Done+wake── (route → format)
//!   timer wheel ─────────► reap idle keep-alive conns    │
//!   waker (UnixStream) ──► instant shutdown / completions│
//!                        └───────────────────────────────┘
//! ```
//!
//! Per connection the reactor holds a `Conn`: the resumable
//! [`RequestParser`] with its partial header/body state, an input
//! spillover buffer for pipelined bytes, and a write buffer with
//! partial-write resumption. Requests on one connection are strictly
//! serial (HTTP/1.1 semantics): while a request executes, the
//! connection is not polled for reads, so a flooding peer is
//! backpressured into its kernel socket buffer rather than into server
//! memory. A response is either written completely or the connection
//! dies — after any transport error mid-response the connection is
//! closed, never reused with a fresh response on top of a half-written
//! one.
//!
//! Idle keep-alive expiry lives in a hashed `TimerWheel` owned by
//! the loop: every byte of transport progress (read or write)
//! refreshes the connection's activity clock, so an *active* mid-body
//! upload is never reaped, while a connection sitting between requests
//! (or stalled mid-message) past the deadline is closed server-side.
//!
//! Shutdown is event-driven: [`crate::server::ServerHandle::shutdown`]
//! writes one byte to the waker, the loop observes the flag on the
//! same iteration, stops accepting, closes idle connections
//! immediately and lets in-flight requests finish their response
//! writes — a no-session drain completes in well under the 1 s
//! `READ_TICK` the blocking front needed just to notice the flag.

use crate::http::{self, Parsed, RequestParser};
use crate::metrics::{self, Metrics, RequestLog, Route};
use crate::{api, pool};
use polling::{PollFd, POLLIN, POLLOUT};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reactor tuning: how many request executors, how long a connection
/// may sit without transport progress before the timer wheel reaps it,
/// and where (if anywhere) to report what happened.
#[derive(Clone)]
pub(crate) struct Config {
    /// Worker threads executing ready requests — bounds in-flight
    /// requests, **not** connections.
    pub workers: usize,
    /// Keep-alive/stall deadline enforced by the timer wheel.
    pub idle_timeout: Duration,
    /// Shared metrics registry; request latency is measured around the
    /// worker's handler call and counted only once the response bytes
    /// exist (a `/metrics` scrape never counts itself).
    pub metrics: Option<Arc<Metrics>>,
    /// Structured request log (one line per executed request).
    pub log: Option<Arc<RequestLog>>,
}

/// A ready, fully-parsed request handed to the worker pool.
struct Job {
    token: usize,
    generation: u64,
    request: http::Request,
}

/// A serialized response handed back to the reactor for nonblocking
/// write. Empty `bytes` means "write nothing" (an injected connection
/// drop); `close` forces the connection shut after the flush.
struct Done {
    token: usize,
    generation: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// Read size per readiness event.
const READ_CHUNK: usize = 16 * 1024;
/// Timer-wheel granularity; idle reaping is accurate to ±one tick.
const WHEEL_TICK: Duration = Duration::from_millis(50);
/// Timer-wheel slots; deadlines beyond `WHEEL_TICK × WHEEL_SLOTS`
/// (51.2 s) cascade on wrap-around.
const WHEEL_SLOTS: usize = 1024;

/// One multiplexed connection and everything resumable about it.
struct Conn {
    stream: TcpStream,
    /// Resumable request decoder (partial line/header/body state).
    parser: RequestParser,
    /// Bytes read but not yet consumed by the parser — pipelined
    /// requests wait here while the current one executes.
    inbuf: Vec<u8>,
    /// The response being written, and how much of it already was.
    out: Vec<u8>,
    written: usize,
    /// A request is executing on the worker pool; reads pause.
    busy: bool,
    /// Close once `out` flushes (parse errors, `Connection: close`,
    /// drain, injected torn writes).
    close_after_flush: bool,
    /// The peer half-closed its write side. Responses already owed
    /// (and pipelined requests already buffered) still complete; the
    /// connection closes once nothing remains.
    read_closed: bool,
    /// Stale-event fence: slab tokens are reused, generations are not.
    generation: u64,
    /// Last transport progress (accepted / bytes read / bytes
    /// written); the timer wheel reaps against this.
    last_activity: Instant,
}

impl Conn {
    /// Poll for reads only between responses and while no request is
    /// in flight — serial HTTP semantics plus kernel-level
    /// backpressure against floods.
    fn wants_read(&self) -> bool {
        !self.busy && self.out.is_empty() && !self.read_closed
    }

    fn wants_write(&self) -> bool {
        self.written < self.out.len()
    }
}

/// A hashed timer wheel: O(1) arm, expiry amortized over ticks.
/// Entries are lazily cancelled — a fired `(token, generation)` that
/// no longer matches a live connection is simply ignored.
struct TimerWheel {
    slots: Vec<Vec<(usize, u64, Instant)>>,
    cursor: usize,
    /// Wall time of the current cursor slot's start.
    cursor_time: Instant,
    armed: usize,
}

impl TimerWheel {
    fn new(now: Instant) -> Self {
        Self {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_time: now,
            armed: 0,
        }
    }

    /// Arms `(token, generation)` to fire at `deadline` (never in the
    /// current slot: the minimum delay is one tick).
    fn arm(&mut self, deadline: Instant, token: usize, generation: u64) {
        let ahead = deadline.saturating_duration_since(self.cursor_time);
        let ticks = (ahead.as_nanos() / WHEEL_TICK.as_nanos()).max(1) as usize;
        let slot = (self.cursor + ticks.min(WHEEL_SLOTS - 1)) % WHEEL_SLOTS;
        self.slots[slot].push((token, generation, deadline));
        self.armed += 1;
    }

    /// Advances the cursor up to `now`, returning every due entry.
    /// Entries whose deadline is still ahead (cascaded long timers)
    /// are re-armed instead of fired.
    fn expired(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let mut fired = Vec::new();
        while now.saturating_duration_since(self.cursor_time) >= WHEEL_TICK {
            self.cursor_time += WHEEL_TICK;
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            let due = std::mem::take(&mut self.slots[self.cursor]);
            self.armed -= due.len();
            for (token, generation, deadline) in due {
                if deadline <= now {
                    fired.push((token, generation));
                } else {
                    self.arm(deadline, token, generation);
                }
            }
        }
        fired
    }

    /// How long `poll` may sleep before the next slot with entries is
    /// due. `None` when nothing is armed (sleep until a waker byte).
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        for ahead in 1..=WHEEL_SLOTS {
            if !self.slots[(self.cursor + ahead) % WHEEL_SLOTS].is_empty() {
                let due = self.cursor_time + WHEEL_TICK * ahead as u32;
                return Some(due.saturating_duration_since(now).max(WHEEL_TICK / 5));
            }
        }
        None
    }
}

/// The reactor front door. Owns the listener and every connection;
/// `handler` routes one decoded request to `(status, body,
/// retry_after)` on a worker thread; `begin_drain` runs exactly once,
/// on the loop iteration that observes the shutdown flag, *before* any
/// connection is torn down (so refused requests see drain 503s, not
/// resets). Returns once every connection is closed and all workers
/// have exited — the caller then runs the manager's persistence drain
/// with no request racing it.
///
/// `wake_rx`/`wake_tx` are the two ends of a `UnixStream::pair`: the
/// loop polls `wake_rx`; [`crate::server::ServerHandle::shutdown`] and
/// the workers (on completion) write a byte to `wake_tx`.
pub(crate) fn serve<F>(
    listener: TcpListener,
    wake_rx: &UnixStream,
    wake_tx: &UnixStream,
    shutdown: &AtomicBool,
    config: Config,
    begin_drain: impl FnOnce(),
    handler: F,
) where
    F: Fn(&http::Request) -> (u16, String, Option<u64>) + Sync,
{
    let (job_tx, job_rx) = channel::<Job>();
    let (done_tx, done_rx) = channel::<Done>();
    let _ = wake_tx.set_nonblocking(true);
    let worker_count = config.workers;
    let worker_metrics = config.metrics.clone();
    let worker_log = config.log.clone();
    crossbeam::scope(|scope| {
        let workers = scope.spawn(|_| {
            run_workers(
                worker_count,
                job_rx,
                &handler,
                &done_tx,
                wake_tx,
                worker_metrics.as_deref(),
                worker_log.as_deref(),
            );
        });
        event_loop(
            listener,
            wake_rx,
            shutdown,
            config,
            begin_drain,
            job_tx,
            &done_rx,
        );
        workers.join().expect("reactor worker pool");
    })
    .expect("reactor scope");
}

/// The worker side: drain ready requests, route them, serialize the
/// response, record metrics and the structured log line, hand the
/// bytes back, nudge the reactor awake.
fn run_workers<F>(
    workers: usize,
    jobs: Receiver<Job>,
    handler: &F,
    done_tx: &Sender<Done>,
    waker: &UnixStream,
    metrics_reg: Option<&Metrics>,
    log: Option<&RequestLog>,
) where
    F: Fn(&http::Request) -> (u16, String, Option<u64>) + Sync,
{
    pool::run_pool(workers, jobs, |job: Job| {
        let keep_alive = job.request.keep_alive;
        let route = Route::classify(&job.request.method, &job.request.path);
        let started = Instant::now();
        let (status, body, retry_after) = handler(&job.request);
        let mut extra: Vec<(&str, String)> = Vec::new();
        if let Some(secs) = retry_after {
            extra.push(("Retry-After", secs.to_string()));
        }
        // Everything the service answers is JSON except a successful
        // metrics scrape, which speaks the Prometheus text format.
        let content_type = if route == Route::Metrics && status == 200 {
            "text/plain; version=0.0.4"
        } else {
            "application/json"
        };
        // Failpoint `conn.write`: the response dies *after* the
        // manager already applied the operation — torn sends a prefix,
        // drop sends nothing, and either way the connection closes, so
        // the client's lost-response retry path is exercised. Same
        // site and semantics as the blocking front.
        #[cfg(feature = "fault-injection")]
        let injected = crate::fault::check(crate::fault::site::CONN_WRITE);
        #[cfg(not(feature = "fault-injection"))]
        let injected: Option<crate::fault::FaultAction> = None;
        let done = match injected {
            Some(crate::fault::FaultAction::Crash) => std::process::abort(),
            Some(crate::fault::FaultAction::Torn(n)) => {
                let mut bytes =
                    http::format_response_with(status, &body, keep_alive, content_type, &extra);
                bytes.truncate(n);
                Done {
                    token: job.token,
                    generation: job.generation,
                    bytes,
                    close: true,
                }
            }
            Some(_) => Done {
                token: job.token,
                generation: job.generation,
                bytes: Vec::new(),
                close: true,
            },
            None => Done {
                token: job.token,
                generation: job.generation,
                bytes: http::format_response_with(status, &body, keep_alive, content_type, &extra),
                close: !keep_alive,
            },
        };
        // Counted only now, with the response bytes already built: a
        // /metrics scrape observes every request but its own, so the
        // scraped totals reconcile exactly with client-side truth.
        let elapsed = started.elapsed();
        if let Some(reg) = metrics_reg {
            reg.record_request(route, status, elapsed.as_nanos() as u64, body.len() as u64);
        }
        if let Some(log) = log {
            if log.would_log(status) {
                let identity = request_identity(route, &job.request);
                log.record(&metrics::LogEntry {
                    unix_millis: metrics::unix_millis_now(),
                    route: route.name(),
                    tenant: identity.tenant.as_deref(),
                    session: identity.session.as_deref(),
                    status,
                    bytes: body.len() as u64,
                    micros: elapsed.as_micros() as u64,
                    worker: metrics::worker_id(),
                });
            }
        }
        if done_tx.send(done).is_ok() {
            // A full waker pipe already guarantees a wake-up; ignore
            // WouldBlock (and a torn-down reactor) here.
            let mut waker = waker;
            let _ = waker.write(&[1]);
        }
    });
}

/// Who a request was about, for log lines. Session ids normally sit in
/// the path; a create carries both its id and tenant in the body.
#[derive(Default)]
struct RequestIdentity {
    session: Option<String>,
    tenant: Option<String>,
}

fn request_identity(route: Route, request: &http::Request) -> RequestIdentity {
    if route == Route::SessionCreate {
        let Some(spec) = std::str::from_utf8(&request.body)
            .ok()
            .and_then(|text| crate::json::parse(text).ok())
        else {
            return RequestIdentity::default();
        };
        let field = |key: &str| spec.get(key).and_then(|v| v.as_str()).map(str::to_string);
        return RequestIdentity {
            session: field("id"),
            tenant: field("tenant"),
        };
    }
    RequestIdentity {
        session: metrics::session_id_of(&request.path).map(str::to_string),
        tenant: None,
    }
}

/// Everything the event-loop thread owns.
struct Loop {
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_generation: u64,
    wheel: TimerWheel,
    idle_timeout: Duration,
    draining: bool,
    job_tx: Option<Sender<Job>>,
    /// Gauge/counter home for connection-lifecycle observability.
    metrics: Option<Arc<Metrics>>,
}

fn event_loop(
    listener: TcpListener,
    wake_rx: &UnixStream,
    shutdown: &AtomicBool,
    config: Config,
    begin_drain: impl FnOnce(),
    job_tx: Sender<Job>,
    done_rx: &Receiver<Done>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let _ = wake_rx.set_nonblocking(true);
    let mut listener = Some(listener);
    let mut begin_drain = Some(begin_drain);
    let mut state = Loop {
        slab: Vec::new(),
        free: Vec::new(),
        live: 0,
        next_generation: 0,
        wheel: TimerWheel::new(Instant::now()),
        idle_timeout: config.idle_timeout,
        draining: false,
        job_tx: Some(job_tx),
        metrics: config.metrics.clone(),
    };
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<usize> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) && !state.draining {
            state.draining = true;
            if let Some(hook) = begin_drain.take() {
                hook();
            }
            // Stop accepting: pending backlog connections are reset.
            listener = None;
            // Idle connections close now; in-flight requests finish
            // their response write first.
            for token in 0..state.slab.len() {
                let close_now = match &mut state.slab[token] {
                    Some(conn) if conn.busy || conn.wants_write() => {
                        conn.close_after_flush = true;
                        false
                    }
                    Some(_) => true,
                    None => false,
                };
                if close_now {
                    state.close(token);
                }
            }
        }
        if state.draining && state.live == 0 {
            // Dropping the job sender lets the workers drain and exit.
            state.job_tx = None;
            return;
        }

        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        let listener_at = listener.as_ref().map(|l| {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
            fds.len() - 1
        });
        let conns_at = fds.len();
        for (token, slot) in state.slab.iter().enumerate() {
            if let Some(conn) = slot {
                let mut events = 0;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                    tokens.push(token);
                }
            }
        }

        let timeout = state.wheel.next_timeout(Instant::now());
        if polling::wait(&mut fds, timeout).is_err() {
            // poll(2) failing is unrecoverable for the loop: fall into
            // the drain path with what we hold rather than spin.
            shutdown.store(true, Ordering::SeqCst);
            continue;
        }

        if fds[0].readable() {
            if let Some(reg) = &state.metrics {
                reg.waker_wakeups.fetch_add(1, Ordering::Relaxed);
            }
            drain_waker(wake_rx);
        }
        while let Ok(done) = done_rx.try_recv() {
            state.complete(done);
        }
        if let (Some(at), Some(l)) = (listener_at, listener.as_ref()) {
            if fds[at].readable() {
                state.accept_all(l);
            }
        }
        for (i, &token) in tokens.iter().enumerate() {
            let fd = fds[conns_at + i];
            if fd.writable() && state.slab[token].is_some() {
                state.on_writable(token);
            }
            if fd.readable() && state.slab[token].is_some() {
                state.on_readable(token);
            }
        }
        let now = Instant::now();
        for (token, generation) in state.wheel.expired(now) {
            state.on_timer(token, generation, now);
        }
    }
}

fn drain_waker(wake_rx: &UnixStream) {
    let mut sink = [0u8; 256];
    let mut wake_rx = wake_rx;
    while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
}

/// What [`Loop::drive_parser`] decided about the buffered bytes.
enum ParseStep {
    Dispatch(http::Request, u64),
    Reject(u16, &'static str),
    Kill,
}

impl Loop {
    fn accept_all(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.register(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient (ECONNABORTED, EMFILE, ...): retry on the
                // next readiness round instead of spinning here.
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let now = Instant::now();
        self.next_generation += 1;
        let conn = Conn {
            stream,
            parser: RequestParser::new(),
            inbuf: Vec::new(),
            out: Vec::new(),
            written: 0,
            busy: false,
            close_after_flush: false,
            read_closed: false,
            generation: self.next_generation,
            last_activity: now,
        };
        let token = match self.free.pop() {
            Some(token) => {
                self.slab[token] = Some(conn);
                token
            }
            None => {
                self.slab.push(Some(conn));
                self.slab.len() - 1
            }
        };
        self.live += 1;
        if let Some(reg) = &self.metrics {
            reg.connections_open.fetch_add(1, Ordering::Relaxed);
            reg.slab_high_water
                .fetch_max(self.slab.len() as u64, Ordering::Relaxed);
        }
        self.wheel
            .arm(now + self.idle_timeout, token, self.next_generation);
    }

    fn close(&mut self, token: usize) {
        if self.slab[token].take().is_some() {
            self.live -= 1;
            self.free.push(token);
            if let Some(reg) = &self.metrics {
                reg.connections_open.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn on_readable(&mut self, token: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = &mut self.slab[token] else {
                return;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.drive_parser(token);
        self.check_read_closed(token);
    }

    /// Feeds buffered bytes to the resumable parser: dispatch at most
    /// one request (serial per connection), or reject the message.
    fn drive_parser(&mut self, token: usize) {
        let step = {
            let draining = self.draining;
            let Some(conn) = &mut self.slab[token] else {
                return;
            };
            if conn.busy
                || !conn.out.is_empty()
                || conn.close_after_flush
                || draining
                || conn.inbuf.is_empty()
            {
                return;
            }
            match conn.parser.feed(&conn.inbuf) {
                Ok((consumed, Parsed::NeedMore)) => {
                    conn.inbuf.drain(..consumed);
                    return;
                }
                Ok((consumed, Parsed::Complete(request))) => {
                    conn.inbuf.drain(..consumed);
                    ParseStep::Dispatch(request, conn.generation)
                }
                Err(http::HttpError::TooLarge(what)) => ParseStep::Reject(413, what),
                Err(http::HttpError::Malformed(why)) => ParseStep::Reject(400, why),
                Err(_) => ParseStep::Kill,
            }
        };
        match step {
            ParseStep::Dispatch(request, generation) => {
                // Failpoint `conn.read`: the request is discarded
                // before it reaches the manager — the client sees a
                // dead connection and must retry an operation that was
                // never applied. Same site as the blocking front.
                #[cfg(feature = "fault-injection")]
                if let Some(action) = crate::fault::check(crate::fault::site::CONN_READ) {
                    match action {
                        crate::fault::FaultAction::Crash => std::process::abort(),
                        _ => {
                            self.close(token);
                            return;
                        }
                    }
                }
                if let Some(conn) = &mut self.slab[token] {
                    conn.busy = true;
                }
                let job = Job {
                    token,
                    generation,
                    request,
                };
                let sent = self.job_tx.as_ref().is_some_and(|tx| tx.send(job).is_ok());
                if !sent {
                    self.close(token);
                }
            }
            ParseStep::Reject(status, msg) => {
                self.respond(
                    token,
                    http::format_response(status, &api::error_body(msg), false, &[]),
                    true,
                );
            }
            ParseStep::Kill => self.close(token),
        }
    }

    /// Settles a half-closed connection once nothing is owed: the
    /// parser's end-of-stream verdict is the blocking decoder's —
    /// clean [`http::HttpError::Closed`] between messages, a
    /// best-effort 400 when the peer died mid-message.
    fn check_read_closed(&mut self, token: usize) {
        let verdict = {
            let Some(conn) = &self.slab[token] else {
                return;
            };
            if !conn.read_closed || conn.busy || !conn.out.is_empty() || !conn.inbuf.is_empty() {
                return;
            }
            conn.parser.eof()
        };
        match verdict {
            http::HttpError::Malformed(why) => {
                self.respond(
                    token,
                    http::format_response(400, &api::error_body(why), false, &[]),
                    true,
                );
            }
            _ => self.close(token),
        }
    }

    /// A worker finished a request: stage the serialized response (or
    /// the injected absence of one) for nonblocking write.
    fn complete(&mut self, done: Done) {
        let injected_drop = {
            let Some(conn) = &mut self.slab[done.token] else {
                return; // connection died while the request executed
            };
            if conn.generation != done.generation {
                return; // token was reused; response belongs to a ghost
            }
            conn.busy = false;
            done.bytes.is_empty()
        };
        if injected_drop {
            // The operation was applied; the response evaporates.
            self.close(done.token);
            return;
        }
        self.respond(done.token, done.bytes, done.close);
    }

    /// Stages `bytes` as the connection's response and attempts the
    /// write immediately (most responses flush in one syscall without
    /// another poll round).
    fn respond(&mut self, token: usize, bytes: Vec<u8>, close: bool) {
        {
            let Some(conn) = &mut self.slab[token] else {
                return;
            };
            debug_assert!(conn.out.is_empty(), "one response at a time");
            conn.out = bytes;
            conn.written = 0;
            conn.close_after_flush |= close;
        }
        self.on_writable(token);
    }

    /// Resumes a partial response write; on completion either closes
    /// or re-enters keep-alive (and parses any pipelined bytes already
    /// buffered).
    fn on_writable(&mut self, token: usize) {
        enum Outcome {
            Flushed,
            Pending,
            Dead,
        }
        let outcome = {
            let Some(conn) = &mut self.slab[token] else {
                return;
            };
            loop {
                if conn.written >= conn.out.len() {
                    let _ = conn.stream.flush();
                    conn.out = Vec::new();
                    conn.written = 0;
                    conn.last_activity = Instant::now();
                    break Outcome::Flushed;
                }
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => break Outcome::Dead,
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break Outcome::Pending,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    // A half-written response cannot be resumed on a
                    // broken transport and must never be followed by
                    // another response: the connection dies here.
                    Err(_) => break Outcome::Dead,
                }
            }
        };
        match outcome {
            Outcome::Pending => {}
            Outcome::Dead => self.close(token),
            Outcome::Flushed => {
                let (close_now, deadline, generation) = {
                    let Some(conn) = &self.slab[token] else {
                        return;
                    };
                    (
                        conn.close_after_flush,
                        conn.last_activity + self.idle_timeout,
                        conn.generation,
                    )
                };
                if close_now || self.draining {
                    self.close(token);
                    return;
                }
                self.wheel.arm(deadline, token, generation);
                self.drive_parser(token);
                self.check_read_closed(token);
            }
        }
    }

    /// A timer fired for `(token, generation)`: reap if the connection
    /// has genuinely stalled, otherwise re-arm for the remainder.
    fn on_timer(&mut self, token: usize, generation: u64, now: Instant) {
        let rearm_at = {
            let Some(conn) = &self.slab[token] else {
                return;
            };
            if conn.generation != generation {
                return;
            }
            if conn.busy {
                // The server owes a response; the executor's latency
                // is not the peer's idleness. Check again in a while.
                Some(now + self.idle_timeout)
            } else {
                let deadline = conn.last_activity + self.idle_timeout;
                if now >= deadline {
                    // Idle past the keep-alive deadline, or stalled
                    // mid-message / mid-response with no transport
                    // progress for a full timeout: reclaim the fd.
                    None
                } else {
                    Some(deadline)
                }
            }
        };
        match rearm_at {
            Some(deadline) => self.wheel.arm(deadline, token, generation),
            None => {
                if let Some(reg) = &self.metrics {
                    reg.timer_reaps.fetch_add(1, Ordering::Relaxed);
                }
                self.close(token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_once_due_and_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.arm(t0 + Duration::from_millis(120), 3, 7);
        assert!(wheel.expired(t0 + Duration::from_millis(60)).is_empty());
        assert_eq!(
            wheel.expired(t0 + Duration::from_millis(200)),
            vec![(3, 7)],
            "due entries fire exactly once"
        );
        assert!(wheel.expired(t0 + Duration::from_millis(400)).is_empty());
        assert_eq!(wheel.armed, 0);
    }

    #[test]
    fn wheel_cascades_deadlines_beyond_the_span() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        let far = WHEEL_TICK * (WHEEL_SLOTS as u32 * 2);
        wheel.arm(t0 + far, 1, 1);
        // Sweeping half the horizon must re-arm (cascade), not fire.
        assert!(wheel.expired(t0 + far / 2).is_empty());
        assert_eq!(wheel.armed, 1);
        assert_eq!(wheel.expired(t0 + far + WHEEL_TICK), vec![(1, 1)]);
    }

    #[test]
    fn wheel_sleeps_toward_the_nearest_entry() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        assert_eq!(
            wheel.next_timeout(t0),
            None,
            "nothing armed: sleep on waker"
        );
        wheel.arm(t0 + Duration::from_millis(500), 0, 1);
        wheel.arm(t0 + Duration::from_millis(150), 1, 2);
        let sleep = wheel
            .next_timeout(t0)
            .expect("armed entries bound the sleep");
        assert!(
            sleep <= Duration::from_millis(200),
            "must wake near the 150 ms entry, got {sleep:?}"
        );
    }
}
