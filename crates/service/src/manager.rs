//! The multi-tenant session registry: many named evaluation campaigns,
//! few locks, tiny dormant footprint.
//!
//! A [`SessionManager`] hosts any number of named evaluation campaigns
//! — plain, stratified or comparative, every kind behind one
//! `Box<dyn SessionEngine>` — over the datasets of a shared
//! [`DatasetRegistry`]. The registry of sessions is **sharded and
//! lock-striped**: an id hashes to one of N shards, each guarded by its
//! own mutex, so concurrent traffic on different campaigns contends
//! only 1/N of the time and every operation holds exactly one shard
//! lock (no lock order, no deadlock surface).
//!
//! Sessions move through three in-memory states plus one on-disk state:
//!
//! ```text
//!   create ──► Live ──submit──► Finished
//!               │ ▲
//!       suspend │ │ resume (lazy, fingerprint-validated)
//!               ▼ │
//!           Suspended ──evict──► (disk only)   resume ◄── disk
//! ```
//!
//! A suspended session is a PR-2 binary snapshot plus a small JSON meta
//! record in the [`SnapshotStore`]; evicting it drops the last
//! in-memory bytes, so a dormant campaign costs ~KBs of disk and zero
//! RAM. Resume works from either state and re-validates the snapshot's
//! design/KG/config/method fingerprints before the session touches
//! traffic again — and restores the exact sampling/posterior
//! trajectory, bit for bit.

use crate::api::{SessionSpec, StratifySpec};
use crate::json::Json;
use crate::metrics::{Metrics, ShardSessions};
use crate::store::{valid_session_id, SnapshotStore, StoredSession};
use crate::{api, json};
use kgae_core::{
    compared_methods, AnnotationRequest, DeltaBatch, DeltaOutcome, EngineSpec, EvalConfig,
    EvalResult, IntervalMethod, MethodReport, MonitorReport, PreparedDesign, SamplingDesign,
    SessionEngine, SessionError, SessionStatus, StopReason, StratifiedConfig, StratumReport,
};
use kgae_graph::stratify::Stratification;
use kgae_graph::{CompactKg, KnowledgeGraph};
use kgae_intervals::{KernelCache, KernelCacheStats};
use kgae_sampling::driver::DesignSpec;
use kgae_sampling::ComparePrimary;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on stage-1 units a single poll may request. Cluster
/// designs sample with replacement — their unit streams never exhaust —
/// so the engine would otherwise chase an absurd batch size forever
/// while holding the session's shard lock.
pub const MAX_BATCH_UNITS: u64 = 4096;

/// Service-level failure, mapped onto HTTP status codes by the server.
#[derive(Debug)]
pub enum ServiceError {
    /// No session with this id, in memory or on disk.
    UnknownSession(String),
    /// `create` on an id that already exists.
    SessionExists(String),
    /// The spec names a dataset the registry doesn't host.
    UnknownDataset(String),
    /// The id violates the `[A-Za-z0-9._-]{1,64}` contract.
    InvalidId(String),
    /// A syntactically valid request the session cannot serve.
    BadRequest(String),
    /// The operation needs the outstanding request answered first.
    RequestOutstanding(String),
    /// The session already finished; its result is immutable.
    AlreadyFinished(String),
    /// The operation needs a suspended session (e.g. snapshot export).
    NotSuspended(String),
    /// Labels arrived with a fencing seq that no longer matches the
    /// outstanding request — another driver already advanced the
    /// session past that batch.
    StaleRequest(String),
    /// A protocol/state error surfaced by the evaluation engine.
    Session(SessionError),
    /// A stored record failed validation.
    Corrupt(String),
    /// Snapshot-store I/O failed.
    Io(std::io::Error),
    /// Admission refused: the quota scope is full. Freed by deleting a
    /// session; clients should back off for `retry_after` seconds.
    QuotaExceeded {
        /// Human description of the scope that filled up (a tenant, or
        /// the whole server).
        scope: String,
        /// The configured ceiling.
        limit: usize,
        /// Seconds a client should wait before retrying.
        retry_after: u64,
    },
    /// The stored session failed deep validation and was moved to the
    /// store's quarantine directory; its bytes are preserved for
    /// inspection but it can no longer be served.
    Quarantined(String),
    /// The server is draining for shutdown and refuses new sessions.
    Draining {
        /// Seconds a client should wait before retrying (elsewhere).
        retry_after: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            ServiceError::SessionExists(id) => write!(f, "session {id:?} already exists"),
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            ServiceError::InvalidId(id) => write!(
                f,
                "invalid session id {id:?} (1-64 characters of [A-Za-z0-9._-], \
                 not starting with a dot)"
            ),
            ServiceError::BadRequest(msg) => write!(f, "{msg}"),
            ServiceError::RequestOutstanding(id) => write!(
                f,
                "session {id:?} has an outstanding annotation request; submit its labels first"
            ),
            ServiceError::AlreadyFinished(id) => write!(f, "session {id:?} already finished"),
            ServiceError::NotSuspended(id) => write!(f, "session {id:?} is not suspended"),
            ServiceError::StaleRequest(id) => write!(
                f,
                "session {id:?}: the labels target a superseded annotation request \
                 (another driver already advanced the session); re-poll and re-label"
            ),
            ServiceError::Session(e) => write!(f, "session engine: {e}"),
            ServiceError::Corrupt(msg) => write!(f, "corrupt stored session: {msg}"),
            ServiceError::Io(e) => write!(f, "snapshot store I/O: {e}"),
            ServiceError::QuotaExceeded { scope, limit, .. } => write!(
                f,
                "{scope} is at its session quota ({limit}); delete a session or retry later"
            ),
            ServiceError::Quarantined(id) => write!(
                f,
                "session {id:?} failed validation and was quarantined; its files were \
                 preserved under the store's quarantine directory for inspection"
            ),
            ServiceError::Draining { .. } => {
                write!(
                    f,
                    "server is draining for shutdown; not accepting new sessions"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SessionError> for ServiceError {
    fn from(e: SessionError) -> Self {
        ServiceError::Session(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl ServiceError {
    /// The HTTP status code this failure maps to.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            ServiceError::UnknownSession(_) | ServiceError::UnknownDataset(_) => 404,
            ServiceError::SessionExists(_)
            | ServiceError::RequestOutstanding(_)
            | ServiceError::AlreadyFinished(_)
            | ServiceError::NotSuspended(_)
            | ServiceError::StaleRequest(_) => 409,
            ServiceError::InvalidId(_) | ServiceError::BadRequest(_) => 400,
            ServiceError::Session(e) => match e {
                SessionError::RequestPending
                | SessionError::NoRequestPending
                | SessionError::LabelCountMismatch { .. } => 409,
                _ => 500,
            },
            ServiceError::Corrupt(_) | ServiceError::Io(_) => 500,
            ServiceError::Quarantined(_) => 410,
            ServiceError::QuotaExceeded { .. } => 429,
            ServiceError::Draining { .. } => 503,
        }
    }

    /// Stable machine-readable error code, carried on the wire as the
    /// `"code"` field of an error body so clients can branch without
    /// parsing prose.
    #[must_use]
    pub fn wire_code(&self) -> &'static str {
        match self {
            ServiceError::UnknownSession(_) => "unknown_session",
            ServiceError::SessionExists(_) => "session_exists",
            ServiceError::UnknownDataset(_) => "unknown_dataset",
            ServiceError::InvalidId(_) => "invalid_id",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::RequestOutstanding(_) => "request_outstanding",
            ServiceError::AlreadyFinished(_) => "already_finished",
            ServiceError::NotSuspended(_) => "not_suspended",
            ServiceError::StaleRequest(_) => "stale_request",
            ServiceError::Session(_) => "engine",
            ServiceError::Corrupt(_) => "corrupt",
            ServiceError::Io(_) => "io",
            ServiceError::QuotaExceeded { .. } => "quota_exceeded",
            ServiceError::Quarantined(_) => "quarantined",
            ServiceError::Draining { .. } => "draining",
        }
    }

    /// The `Retry-After` value (seconds) this failure should carry, for
    /// the backpressure-shaped errors (quota, drain).
    #[must_use]
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            ServiceError::QuotaExceeded { retry_after, .. }
            | ServiceError::Draining { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

/// Outcome type of every manager operation.
pub type ServiceResult<T> = Result<T, ServiceError>;

// ---------------------------------------------------------------------
// Dataset registry
// ---------------------------------------------------------------------

/// One hosted dataset: a KG plus its optional built-in stratification
/// (the partition `stratify: {"by": "predicate"}` sessions use).
#[derive(Debug)]
pub struct DatasetEntry {
    /// Registry name.
    pub name: String,
    /// The graph.
    pub kg: CompactKg,
    /// Built-in (predicate) partition, when the dataset has one.
    pub stratification: Option<Stratification>,
}

/// The KGs a server hosts, by name. Built once at startup; sessions
/// borrow the graphs for the manager's whole lifetime.
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    entries: Vec<DatasetEntry>,
}

impl DatasetRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The four real-KG twins of paper Table 1 (YAGO, NELL, DBPEDIA,
    /// FACTBENCH) plus `nell-pred` — the NELL twin with simulated
    /// predicate structure and a built-in per-predicate stratification.
    /// All generated deterministically — every server instance hosts
    /// bit-identical graphs.
    #[must_use]
    pub fn standard() -> Self {
        let mut registry = Self::new();
        registry.insert("yago", kgae_graph::datasets::yago());
        registry.insert("nell", kgae_graph::datasets::nell());
        registry.insert("dbpedia", kgae_graph::datasets::dbpedia());
        registry.insert("factbench", kgae_graph::datasets::factbench());
        let (kg, strat) = kgae_graph::datasets::nell_by_predicate();
        registry.insert_stratified("nell-pred", kg, strat);
        registry
    }

    /// Adds (or replaces) a dataset under `name`, without a built-in
    /// stratification.
    pub fn insert(&mut self, name: &str, kg: CompactKg) {
        self.insert_entry(DatasetEntry {
            name: name.to_string(),
            kg,
            stratification: None,
        });
    }

    /// Adds (or replaces) a dataset with a built-in stratification.
    ///
    /// # Panics
    ///
    /// Panics if the stratification does not cover exactly `kg`'s
    /// triples.
    pub fn insert_stratified(&mut self, name: &str, kg: CompactKg, strat: Stratification) {
        assert_eq!(
            strat.num_triples(),
            kg.num_triples(),
            "stratification covers a different KG"
        );
        self.insert_entry(DatasetEntry {
            name: name.to_string(),
            kg,
            stratification: Some(strat),
        });
    }

    fn insert_entry(&mut self, entry: DatasetEntry) {
        match self.entries.iter_mut().find(|e| e.name == entry.name) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// The dataset named `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&CompactKg> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.kg)
    }

    /// The built-in stratification of dataset `name`, if it has one.
    #[must_use]
    pub fn stratification(&self, name: &str) -> Option<&Stratification> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| e.stratification.as_ref())
    }

    /// Hosted datasets, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[DatasetEntry] {
        &self.entries
    }
}

// ---------------------------------------------------------------------
// Session slots and views
// ---------------------------------------------------------------------

/// Where a session currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// In memory, accepting polls and labels.
    Running,
    /// Snapshot on disk, meta cached in memory.
    Suspended,
    /// On disk only — zero in-memory footprint.
    Evicted,
    /// Stopped; the final result is available.
    Finished,
}

impl SessionState {
    /// Wire name (`"running"`, `"suspended"`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SessionState::Running => "running",
            SessionState::Suspended => "suspended",
            SessionState::Evicted => "evicted",
            SessionState::Finished => "finished",
        }
    }

    /// Inverse of [`SessionState::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "running" => Some(SessionState::Running),
            "suspended" => Some(SessionState::Suspended),
            "evicted" => Some(SessionState::Evicted),
            "finished" => Some(SessionState::Finished),
            _ => None,
        }
    }
}

/// A point-in-time external view of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionView {
    /// Session id.
    pub id: String,
    /// Dataset name.
    pub dataset: String,
    /// Canonical design name (`"twcs:3"`, `"stratified:width-greedy"`).
    pub design: String,
    /// Canonical method name (`"ahpd"`).
    pub method: String,
    /// Where the session lives right now.
    pub state: SessionState,
    /// Labels currently owed on an outstanding request (0 when none).
    pub pending_labels: u64,
    /// Fencing seq of the outstanding request (`None` when no request
    /// is outstanding). Echo it on submit to guard against racing
    /// drivers.
    pub pending_seq: Option<u64>,
    /// The stratum of the outstanding request (stratified sessions with
    /// labels owed).
    pub pending_stratum: Option<(u32, String)>,
    /// The engine status — the headline view for every engine kind
    /// (pooled for stratified sessions, the primary method's for
    /// comparative ones; cached at suspension time for dormant
    /// sessions).
    pub status: SessionStatus,
    /// Per-stratum rows (stratified sessions only).
    pub strata: Option<Vec<StratumReport>>,
    /// Per-method rows (comparative sessions only).
    pub methods: Option<Vec<MethodReport>>,
    /// Monitoring report — epoch, drift rows, alarms (monitor sessions
    /// only; omitted on the brief poll/submit views).
    pub monitor: Option<MonitorReport>,
    /// Snapshot size on disk, for suspended/evicted sessions.
    pub snapshot_bytes: Option<u64>,
}

struct Live<'a> {
    spec: SessionSpec,
    /// The engine behind the slot, whichever kind the spec denotes.
    /// Every lifecycle path (poll, submit, status, suspend, evict,
    /// finalize) is written once against this trait object.
    engine: Box<dyn SessionEngine + 'a>,
    /// The outstanding annotation request, kept so a re-poll (e.g. an
    /// annotator that lost the response) is served the identical batch
    /// instead of a protocol error.
    pending: Option<AnnotationRequest>,
    /// The stratum of the outstanding request (stratified sessions).
    pending_stratum: Option<(u32, String)>,
    /// Fencing token: incremented for every freshly issued batch. A
    /// submit carrying a stale seq is rejected instead of silently
    /// applying old labels to a newer batch.
    seq: u64,
    /// Last request activity (create/poll/submit/resume), the clock the
    /// janitor's TTL aging reads. Status reads deliberately do not
    /// refresh it — monitoring must not keep a session warm.
    touched: Instant,
}

impl Live<'_> {
    fn pending_labels(&self) -> u64 {
        self.pending.as_ref().map_or(0, |r| r.triples.len() as u64)
    }
}

struct Dormant {
    spec: SessionSpec,
    status: SessionStatus,
    strata: Option<Vec<StratumReport>>,
    methods: Option<Vec<MethodReport>>,
    monitor: Option<MonitorReport>,
    snapshot_bytes: u64,
    /// When this stub last saw activity (see [`Live::touched`]).
    touched: Instant,
}

struct FinishedSlot {
    spec: SessionSpec,
    reason: StopReason,
    result: EvalResult,
    strata: Option<Vec<StratumReport>>,
    methods: Option<Vec<MethodReport>>,
    /// When this result last saw activity (see [`Live::touched`]).
    touched: Instant,
}

enum Slot<'a> {
    Live(Box<Live<'a>>),
    Suspended(Box<Dormant>),
    Finished(Box<FinishedSlot>),
}

/// Owned engine-construction resources derived from a [`SessionSpec`]
/// once — the values an [`EngineSpec`] borrows for both fresh builds
/// and registry-dispatched snapshot resumes.
enum Blueprint<'a> {
    Plain {
        kg: &'a CompactKg,
        prepared: Arc<PreparedDesign>,
        config: EvalConfig,
    },
    Stratified {
        kg: &'a CompactKg,
        stratification: Stratification,
        config: StratifiedConfig,
    },
    Comparative {
        kg: &'a CompactKg,
        prepared: Arc<PreparedDesign>,
        primary: ComparePrimary,
        config: EvalConfig,
    },
    Monitor {
        kg: &'a CompactKg,
        config: EvalConfig,
        carry_weight: f64,
    },
}

impl<'a> Blueprint<'a> {
    fn engine_spec<'r>(&'r self, method: &'r IntervalMethod, seed: u64) -> EngineSpec<'a, 'r> {
        match self {
            Blueprint::Plain {
                kg,
                prepared,
                config,
            } => EngineSpec::Plain {
                kg: *kg,
                prepared,
                method,
                config,
                seed,
            },
            Blueprint::Stratified {
                kg,
                stratification,
                config,
            } => EngineSpec::Stratified {
                kg: *kg,
                stratification,
                method,
                config,
                seed,
            },
            Blueprint::Comparative {
                kg,
                prepared,
                primary,
                config,
            } => EngineSpec::Comparative {
                kg: *kg,
                prepared,
                primary: *primary,
                config,
                seed,
            },
            Blueprint::Monitor {
                kg,
                config,
                carry_weight,
            } => EngineSpec::Monitor {
                kg: *kg,
                method,
                config,
                carry_weight: *carry_weight,
                seed,
            },
        }
    }
}

fn finished_status(reason: StopReason, result: &EvalResult) -> SessionStatus {
    SessionStatus {
        estimate: Some(result.mu_hat),
        interval: Some(result.interval),
        observations: result.observations,
        annotated_triples: result.annotated_triples,
        stage1_draws: result.stage1_draws,
        cost_seconds: result.cost_seconds,
        stopped: Some(reason),
    }
}

impl Slot<'_> {
    fn spec(&self) -> &SessionSpec {
        match self {
            Slot::Live(live) => &live.spec,
            Slot::Suspended(dormant) => &dormant.spec,
            Slot::Finished(finished) => &finished.spec,
        }
    }

    fn touched(&self) -> Instant {
        match self {
            Slot::Live(live) => live.touched,
            Slot::Suspended(dormant) => dormant.touched,
            Slot::Finished(finished) => finished.touched,
        }
    }

    fn touch(&mut self) {
        let now = Instant::now();
        match self {
            Slot::Live(live) => live.touched = now,
            Slot::Suspended(dormant) => dormant.touched = now,
            Slot::Finished(finished) => finished.touched = now,
        }
    }

    /// The full view, per-row breakdowns included.
    fn view(&self) -> SessionView {
        self.view_impl(false)
    }

    /// The poll/submit hot-path view: live engines report the headline
    /// status only — no per-stratum/per-method rows, each of which
    /// costs an interval construction per call on a unit-granular
    /// stream. Dormant and finished slots return their cached rows
    /// unchanged (a clone, not a computation).
    fn view_brief(&self) -> SessionView {
        self.view_impl(true)
    }

    #[allow(clippy::type_complexity)]
    fn view_impl(&self, brief: bool) -> SessionView {
        let spec = self.spec();
        let (
            state,
            pending,
            pending_seq,
            pending_stratum,
            status,
            strata,
            methods,
            monitor,
            snapshot_bytes,
        ) = match self {
            Slot::Live(live) => {
                // One status call: a stratified/comparative status
                // computes every row's interval, so the view must
                // not pay twice — and the brief view not at all.
                let view = if brief {
                    kgae_core::SessionStatusView {
                        primary: live.engine.headline(),
                        strata: None,
                        methods: None,
                        monitor: None,
                    }
                } else {
                    live.engine.status()
                };
                (
                    SessionState::Running,
                    live.pending_labels(),
                    live.pending.as_ref().map(|_| live.seq),
                    live.pending_stratum.clone(),
                    view.primary,
                    view.strata,
                    view.methods,
                    view.monitor,
                    None,
                )
            }
            Slot::Suspended(dormant) => (
                SessionState::Suspended,
                0,
                None,
                None,
                dormant.status.clone(),
                dormant.strata.clone(),
                dormant.methods.clone(),
                dormant.monitor.clone(),
                Some(dormant.snapshot_bytes),
            ),
            Slot::Finished(finished) => (
                SessionState::Finished,
                0,
                None,
                None,
                finished_status(finished.reason, &finished.result),
                finished.strata.clone(),
                finished.methods.clone(),
                None,
                None,
            ),
        };
        SessionView {
            id: spec.id.clone(),
            dataset: spec.dataset.clone(),
            design: spec.design.canonical_name(),
            method: spec.method.canonical_name(),
            state,
            pending_labels: pending,
            pending_seq,
            pending_stratum,
            status,
            strata,
            methods,
            monitor,
            snapshot_bytes,
        }
    }
}

// ---------------------------------------------------------------------
// Meta records
// ---------------------------------------------------------------------

fn meta_encode(
    spec: &SessionSpec,
    state: SessionState,
    status: &SessionStatus,
    strata: Option<&[StratumReport]>,
    methods: Option<&[MethodReport]>,
    monitor: Option<&MonitorReport>,
    finished: Option<(StopReason, &EvalResult)>,
) -> String {
    let mut doc = Json::obj(vec![
        ("spec", spec.to_json()),
        ("state", Json::str(state.name())),
        ("status", api::status_to_json(status)),
    ]);
    if let Some(strata) = strata {
        doc.set("strata", api::strata_to_json(strata));
    }
    if let Some(methods) = methods {
        doc.set("methods", api::methods_to_json(methods));
    }
    if let Some(monitor) = monitor {
        doc.set("monitor", api::monitor_report_to_json(monitor));
    }
    if let Some((reason, result)) = finished {
        doc.set("reason", Json::str(api::stop_reason_name(reason)));
        doc.set("result", api::result_to_json(result));
    }
    doc.encode()
}

struct MetaRecord {
    spec: SessionSpec,
    state: SessionState,
    status: SessionStatus,
    strata: Option<Vec<StratumReport>>,
    methods: Option<Vec<MethodReport>>,
    monitor: Option<MonitorReport>,
    finished: Option<(StopReason, EvalResult)>,
}

fn meta_decode(id: &str, meta: &str) -> ServiceResult<MetaRecord> {
    let corrupt = |msg: String| ServiceError::Corrupt(format!("session {id:?}: {msg}"));
    let doc = json::parse(meta).map_err(|e| corrupt(e.to_string()))?;
    let spec = SessionSpec::from_json(
        doc.get("spec")
            .ok_or_else(|| corrupt("missing spec".into()))?,
    )
    .map_err(|e| corrupt(e.to_string()))?;
    if spec.id != id {
        return Err(corrupt(format!("meta names id {:?}", spec.id)));
    }
    let state = doc
        .get("state")
        .and_then(Json::as_str)
        .and_then(SessionState::from_name)
        .ok_or_else(|| corrupt("missing or unknown state".into()))?;
    let status = api::status_from_json(
        doc.get("status")
            .ok_or_else(|| corrupt("missing status".into()))?,
    )
    .map_err(|e| corrupt(e.to_string()))?;
    let strata = match doc.get("strata") {
        None | Some(Json::Null) => None,
        Some(field) => Some(api::strata_from_json(field).map_err(|e| corrupt(e.to_string()))?),
    };
    let methods = match doc.get("methods") {
        None | Some(Json::Null) => None,
        Some(field) => Some(api::methods_from_json(field).map_err(|e| corrupt(e.to_string()))?),
    };
    let monitor = match doc.get("monitor") {
        None | Some(Json::Null) => None,
        Some(field) => {
            Some(api::monitor_report_from_json(field).map_err(|e| corrupt(e.to_string()))?)
        }
    };
    let finished = if state == SessionState::Finished {
        let reason = doc
            .get("reason")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("finished record without a reason".into()))
            .and_then(|name| {
                api::stop_reason_from_name(name).map_err(|e| corrupt(e.to_string()))
            })?;
        let result = api::result_from_json(
            doc.get("result")
                .ok_or_else(|| corrupt("finished record without a result".into()))?,
        )
        .map_err(|e| corrupt(e.to_string()))?;
        Some((reason, result))
    } else {
        None
    };
    Ok(MetaRecord {
        spec,
        state,
        status,
        strata,
        methods,
        monitor,
        finished,
    })
}

// ---------------------------------------------------------------------
// The manager
// ---------------------------------------------------------------------

/// Admission-control knobs for a [`SessionManager`]. `None` means
/// unlimited. Quotas count every session that exists under a tenant —
/// running, suspended, evicted or finished — and are released only by
/// [`SessionManager::delete`], so a full quota is an explicit signal to
/// clean up, not a transient hiccup.
#[derive(Debug, Clone, Copy)]
pub struct ManagerLimits {
    /// Ceiling on sessions per tenant (the spec's `tenant` field;
    /// specs without one share the default tenant's quota).
    pub max_sessions_per_tenant: Option<usize>,
    /// Ceiling on sessions across all tenants.
    pub max_total_sessions: Option<usize>,
    /// `Retry-After` seconds attached to quota/drain refusals.
    pub retry_after_secs: u64,
}

impl Default for ManagerLimits {
    fn default() -> Self {
        Self {
            max_sessions_per_tenant: None,
            max_total_sessions: None,
            retry_after_secs: 1,
        }
    }
}

/// Live session census backing quota admission: one counter per tenant
/// plus the server-wide total, kept exact under a dedicated mutex.
#[derive(Debug, Default)]
struct Occupancy {
    per_tenant: HashMap<String, usize>,
    total: usize,
}

/// The tenant bucket a spec's sessions count against (the shared
/// default bucket when the spec names none).
fn tenant_key(spec: &SessionSpec) -> &str {
    spec.tenant.as_deref().unwrap_or("")
}

fn tenant_scope(tenant: &str) -> String {
    if tenant.is_empty() {
        "the default tenant".to_string()
    } else {
        format!("tenant {tenant:?}")
    }
}

/// What [`SessionManager::drain`] did, per session id (each list
/// sorted). A clean drain has an empty `failed`.
#[derive(Debug, Default)]
pub struct DrainReport {
    /// Sessions persisted as suspended (snapshot + meta on disk),
    /// resumable bit-identically after restart.
    pub suspended: Vec<String>,
    /// Sessions whose outstanding annotation batch was withdrawn via
    /// the exact-rollback path before suspension — a post-restart
    /// re-poll regenerates the identical batch.
    pub cancelled: Vec<String>,
    /// Finished sessions persisted as meta-only result records.
    pub finished: Vec<String>,
    /// Sessions that could not be persisted, with the error text.
    /// They stay in memory (and are lost when the process exits).
    pub failed: Vec<(String, String)>,
}

impl DrainReport {
    /// `true` when every session was persisted.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Sharded, lock-striped host for named evaluation sessions. See the
/// module docs for the state machine.
pub struct SessionManager<'a> {
    registry: &'a DatasetRegistry,
    shards: Box<[Mutex<HashMap<String, Slot<'a>>>]>,
    store: SnapshotStore,
    prepared: Mutex<HashMap<(String, SamplingDesign), Arc<PreparedDesign>>>,
    limits: ManagerLimits,
    occupancy: Mutex<Occupancy>,
    quarantined: Mutex<std::collections::BTreeSet<String>>,
    draining: std::sync::atomic::AtomicBool,
    /// Lifecycle counters; absent until
    /// [`SessionManager::set_metrics`] attaches a registry.
    metrics: Option<Arc<Metrics>>,
    /// The process-wide posterior-kernel cache, injected into every
    /// engine this manager builds or rehydrates — all tenants share one
    /// memo table (keys are self-describing, so cross-tenant sharing is
    /// sound and cross-campaign hits are the point).
    kernel: Arc<KernelCache>,
}

impl<'a> SessionManager<'a> {
    /// A manager over `registry`, spilling dormant sessions into
    /// `store`, with `shards` lock stripes (clamped to ≥ 1) and no
    /// admission limits.
    #[must_use]
    pub fn new(registry: &'a DatasetRegistry, store: SnapshotStore, shards: usize) -> Self {
        Self::with_limits(registry, store, shards, ManagerLimits::default())
    }

    /// [`SessionManager::new`] with admission limits. Quota counters
    /// and the quarantine set are seeded from the store, so a restarted
    /// server enforces the same quotas its predecessor did — suspended
    /// campaigns on disk keep their reservations.
    #[must_use]
    pub fn with_limits(
        registry: &'a DatasetRegistry,
        store: SnapshotStore,
        shards: usize,
        limits: ManagerLimits,
    ) -> Self {
        let shards = shards.max(1);
        let mut occupancy = Occupancy::default();
        // Best-effort census: every stored id takes a quota slot; ids
        // whose meta won't decode count against the default tenant
        // (they still occupy disk, and a later access quarantines
        // them).
        if let Ok(ids) = store.list() {
            for id in ids {
                let tenant = store
                    .load(&id)
                    .ok()
                    .flatten()
                    .and_then(|record| meta_decode(&id, &record.meta).ok())
                    .map_or(String::new(), |meta| tenant_key(&meta.spec).to_string());
                occupancy.total += 1;
                *occupancy.per_tenant.entry(tenant).or_insert(0) += 1;
            }
        }
        let quarantined = store
            .quarantined_ids()
            .unwrap_or_default()
            .into_iter()
            .collect();
        Self {
            registry,
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            store,
            prepared: Mutex::new(HashMap::new()),
            limits,
            occupancy: Mutex::new(occupancy),
            quarantined: Mutex::new(quarantined),
            draining: std::sync::atomic::AtomicBool::new(false),
            metrics: None,
            kernel: Arc::new(KernelCache::new()),
        }
    }

    /// Counter snapshot of the shared posterior-kernel cache, for
    /// metrics exposition.
    #[must_use]
    pub fn kernel_stats(&self) -> KernelCacheStats {
        self.kernel.stats()
    }

    /// Attaches a metrics registry to this manager **and** its store,
    /// turning on lifecycle counters (created/suspended/…/429) and the
    /// store's durability counters. Call before serving traffic.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.store.set_metrics(Arc::clone(&metrics));
        self.metrics = Some(metrics);
    }

    /// Bumps one lifecycle counter, when a registry is attached.
    fn bump(&self, pick: fn(&Metrics) -> &std::sync::atomic::AtomicU64) {
        self.bump_by(pick, 1);
    }

    /// Adds `n` to one lifecycle counter, when a registry is attached.
    fn bump_by(&self, pick: fn(&Metrics) -> &std::sync::atomic::AtomicU64, n: u64) {
        if let Some(metrics) = &self.metrics {
            pick(metrics).fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// The admission limits this manager enforces.
    #[must_use]
    pub fn limits(&self) -> ManagerLimits {
        self.limits
    }

    /// The dataset registry this manager serves.
    #[must_use]
    pub fn registry(&self) -> &'a DatasetRegistry {
        self.registry
    }

    /// The snapshot store backing suspended sessions.
    #[must_use]
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Which shard `id` hashes to — also the `shard` label of the
    /// `kgae_sessions` gauge.
    fn shard_index(&self, id: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        id.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    fn shard(&self, id: &str) -> &Mutex<HashMap<String, Slot<'a>>> {
        &self.shards[self.shard_index(id)]
    }

    /// Runs `f` while holding `id`'s shard lock, telling it whether the
    /// id currently occupies an in-memory slot. Every store write for
    /// an id happens under this same lock, so the janitor uses this to
    /// garbage-collect a session's files without racing an in-flight
    /// save.
    pub(crate) fn with_session_lock<T>(&self, id: &str, f: impl FnOnce(bool) -> T) -> T {
        let shard = self.shard(id).lock().expect("shard lock");
        f(shard.contains_key(id))
    }

    /// Point-in-time census of every session, per shard and lifecycle
    /// state — the source of the `kgae_sessions` gauges. Exact by
    /// construction (each shard is counted under its lock; store-only
    /// ids count as evicted), so the gauges can never drift.
    #[must_use]
    pub fn census(&self) -> Vec<ShardSessions> {
        let mut census = vec![ShardSessions::default(); self.shards.len()];
        let mut seen = std::collections::HashSet::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("shard lock");
            for (id, slot) in shard.iter() {
                seen.insert(id.clone());
                match slot {
                    Slot::Live(_) => census[index].live += 1,
                    Slot::Suspended(_) => census[index].suspended += 1,
                    Slot::Finished(_) => census[index].finished += 1,
                }
            }
        }
        for id in self.store.list().unwrap_or_default() {
            if !seen.contains(&id) {
                census[self.shard_index(&id)].evicted += 1;
            }
        }
        census
    }

    /// Sessions idle past `ttl`, with the state they held at scan time
    /// — the janitor's aging worklist. Live sessions with an
    /// outstanding annotation request are skipped (labels are owed; a
    /// suspend would be refused anyway), as are quarantined ids.
    pub(crate) fn idle_sessions(&self, ttl: Duration) -> Vec<(String, SessionState)> {
        let now = Instant::now();
        let mut idle = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            for (id, slot) in shard.iter() {
                if now.saturating_duration_since(slot.touched()) < ttl {
                    continue;
                }
                let state = match slot {
                    Slot::Live(live) => {
                        if live.engine.has_pending_request() {
                            continue;
                        }
                        SessionState::Running
                    }
                    Slot::Suspended(_) => SessionState::Suspended,
                    Slot::Finished(_) => SessionState::Finished,
                };
                idle.push((id.clone(), state));
            }
        }
        idle.sort_by(|a, b| a.0.cmp(&b.0));
        idle
    }

    /// Takes one quota slot for `tenant`, or refuses with
    /// [`ServiceError::QuotaExceeded`]. Check-and-increment is atomic
    /// under the occupancy lock.
    fn admit(&self, tenant: &str) -> ServiceResult<()> {
        let mut occupancy = self.occupancy.lock().expect("occupancy lock");
        if let Some(limit) = self.limits.max_total_sessions {
            if occupancy.total >= limit {
                return Err(ServiceError::QuotaExceeded {
                    scope: "the server".to_string(),
                    limit,
                    retry_after: self.limits.retry_after_secs,
                });
            }
        }
        if let Some(limit) = self.limits.max_sessions_per_tenant {
            if occupancy.per_tenant.get(tenant).copied().unwrap_or(0) >= limit {
                return Err(ServiceError::QuotaExceeded {
                    scope: tenant_scope(tenant),
                    limit,
                    retry_after: self.limits.retry_after_secs,
                });
            }
        }
        occupancy.total += 1;
        *occupancy.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(())
    }

    /// Returns `tenant`'s quota slot (saturating — a release without a
    /// matching admit cannot underflow the census).
    fn release(&self, tenant: &str) {
        let mut occupancy = self.occupancy.lock().expect("occupancy lock");
        occupancy.total = occupancy.total.saturating_sub(1);
        if let Some(count) = occupancy.per_tenant.get_mut(tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                occupancy.per_tenant.remove(tenant);
            }
        }
    }

    /// Sessions currently counted against quotas: `(total, this
    /// tenant's count)`.
    #[must_use]
    pub fn occupancy(&self, tenant: &str) -> (usize, usize) {
        let occupancy = self.occupancy.lock().expect("occupancy lock");
        (
            occupancy.total,
            occupancy.per_tenant.get(tenant).copied().unwrap_or(0),
        )
    }

    /// Refuses operations on a quarantined id with
    /// [`ServiceError::Quarantined`] (the wire's 410: the id existed,
    /// its bytes are preserved, but it is gone as a servable session).
    fn check_quarantined(&self, id: &str) -> ServiceResult<()> {
        if self
            .quarantined
            .lock()
            .expect("quarantine lock")
            .contains(id)
        {
            return Err(ServiceError::Quarantined(id.to_string()));
        }
        Ok(())
    }

    /// Ids quarantined by the startup sweep or by deep validation
    /// failures since, sorted.
    #[must_use]
    pub fn quarantined_sessions(&self) -> Vec<String> {
        self.quarantined
            .lock()
            .expect("quarantine lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Converts a deep-validation failure during rehydration into a
    /// quarantine: the session's files move into the store's
    /// quarantine directory (best effort — the in-memory set is the
    /// authority for serving decisions), the id joins that set, and the
    /// caller gets [`ServiceError::Quarantined`]. Non-corruption errors
    /// (I/O, protocol) pass through untouched.
    fn quarantine_on_corruption(&self, id: &str, e: ServiceError) -> ServiceError {
        let corrupt = matches!(
            &e,
            ServiceError::Corrupt(_)
                | ServiceError::Session(
                    SessionError::CorruptSnapshot(_) | SessionError::SnapshotMismatch(_)
                )
        );
        if !corrupt {
            return e;
        }
        let _ = self.store.quarantine(id, &e.to_string());
        self.quarantined
            .lock()
            .expect("quarantine lock")
            .insert(id.to_string());
        ServiceError::Quarantined(id.to_string())
    }

    /// Flips the manager into drain mode: [`SessionManager::create`]
    /// refuses with [`ServiceError::Draining`] (503) from now on.
    /// Existing sessions keep serving until [`SessionManager::drain`]
    /// persists them.
    pub fn begin_drain(&self) {
        self.draining
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether drain mode is on.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Graceful shutdown sweep: enters drain mode, then persists every
    /// in-memory session to the store — running sessions are
    /// snapshotted as suspended (withdrawing an outstanding annotation
    /// batch first via the exact-rollback cancel, so nothing blocks on
    /// absent annotators), finished sessions become meta-only result
    /// records. After a clean drain the store alone reconstructs every
    /// campaign bit-identically; sessions listed in
    /// [`DrainReport::failed`] could not be saved and stay in memory.
    pub fn drain(&self) -> DrainReport {
        self.begin_drain();
        let mut report = DrainReport::default();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard lock");
            let ids: Vec<String> = shard.keys().cloned().collect();
            for id in ids {
                let Some(slot) = shard.get_mut(&id) else {
                    continue;
                };
                match slot {
                    Slot::Suspended(_) => {
                        // Snapshot + meta already on disk.
                        shard.remove(&id);
                        report.suspended.push(id);
                    }
                    Slot::Finished(finished) => {
                        let status = finished_status(finished.reason, &finished.result);
                        let meta = meta_encode(
                            &finished.spec,
                            SessionState::Finished,
                            &status,
                            finished.strata.as_deref(),
                            finished.methods.as_deref(),
                            None,
                            Some((finished.reason, &finished.result)),
                        );
                        match self.store.save(&id, &meta, None) {
                            Ok(()) => {
                                shard.remove(&id);
                                report.finished.push(id);
                            }
                            Err(e) => report.failed.push((id, e.to_string())),
                        }
                    }
                    Slot::Live(live) => {
                        if live.engine.has_pending_request() {
                            match live.engine.cancel_request() {
                                Ok(()) => {
                                    live.pending = None;
                                    live.pending_stratum = None;
                                    report.cancelled.push(id.clone());
                                }
                                Err(e) => {
                                    report.failed.push((id, e.to_string()));
                                    continue;
                                }
                            }
                        }
                        let persisted = (|| -> ServiceResult<()> {
                            let snapshot = live.engine.snapshot()?;
                            let view = live.engine.status();
                            let meta = meta_encode(
                                &live.spec,
                                SessionState::Suspended,
                                &view.primary,
                                view.strata.as_deref(),
                                view.methods.as_deref(),
                                view.monitor.as_ref(),
                                None,
                            );
                            self.store.save(&id, &meta, Some(&snapshot))?;
                            Ok(())
                        })();
                        match persisted {
                            Ok(()) => {
                                shard.remove(&id);
                                report.suspended.push(id);
                            }
                            Err(e) => report.failed.push((id, e.to_string())),
                        }
                    }
                }
            }
        }
        report.suspended.sort();
        report.cancelled.sort();
        report.finished.sort();
        report.failed.sort();
        report
    }

    /// The per-(dataset, design) [`PreparedDesign`], built once and
    /// shared: every session over NELL/TWCS reuses one PPS alias table.
    fn prepared_for(
        &self,
        dataset: &str,
        design: SamplingDesign,
    ) -> ServiceResult<Arc<PreparedDesign>> {
        let kg = self
            .registry
            .get(dataset)
            .ok_or_else(|| ServiceError::UnknownDataset(dataset.to_string()))?;
        let mut cache = self.prepared.lock().expect("prepared cache lock");
        Ok(cache
            .entry((dataset.to_string(), design))
            .or_insert_with(|| Arc::new(PreparedDesign::new(kg, design)))
            .clone())
    }

    /// Reconstructs the partition a stratified spec denotes — the
    /// dataset's built-in predicate partition, or a deterministic hash
    /// partition. Both rebuild bit-identically from the spec, which is
    /// what lets snapshots validate their stratification fingerprint.
    fn resolve_stratification(&self, spec: &SessionSpec) -> ServiceResult<Stratification> {
        let kg = self
            .registry
            .get(&spec.dataset)
            .ok_or_else(|| ServiceError::UnknownDataset(spec.dataset.clone()))?;
        match spec.partition().expect("stratified specs have a partition") {
            StratifySpec::Predicate => self
                .registry
                .stratification(&spec.dataset)
                .cloned()
                .ok_or_else(|| {
                    ServiceError::BadRequest(format!(
                        "dataset {:?} has no built-in predicate stratification; \
                             use stratify mode \"hash\"",
                        spec.dataset
                    ))
                }),
            StratifySpec::Hash { strata, seed } => {
                if strata == 0 || u64::from(strata) > kg.num_triples() {
                    return Err(ServiceError::BadRequest(format!(
                        "hash stratification needs 1..={} strata, got {strata}",
                        kg.num_triples()
                    )));
                }
                Ok(Stratification::by_hash(kg, strata, seed))
            }
        }
    }

    /// Derives the owned engine-construction resources a spec denotes —
    /// the single spec → engine path shared by `create` (fresh build)
    /// and rehydration (registry-dispatched resume).
    fn blueprint(&self, spec: &SessionSpec) -> ServiceResult<Blueprint<'a>> {
        let kg = self
            .registry
            .get(&spec.dataset)
            .ok_or_else(|| ServiceError::UnknownDataset(spec.dataset.clone()))?;
        match spec.design {
            DesignSpec::Stratified { .. } => Ok(Blueprint::Stratified {
                kg,
                stratification: self.resolve_stratification(spec)?,
                config: spec
                    .stratified_config()
                    .expect("stratified design has a campaign config"),
            }),
            DesignSpec::Compare { primary } => {
                // The primary is named by the design; the spec's method
                // field must agree so the wire has one source of truth.
                let expected = &compared_methods()[primary.roster_index()];
                if spec.method != *expected {
                    return Err(ServiceError::BadRequest(format!(
                        "design {:?} designates primary method {:?}; \
                         the \"method\" field says {:?}",
                        spec.design.canonical_name(),
                        expected.canonical_name(),
                        spec.method.canonical_name()
                    )));
                }
                Ok(Blueprint::Comparative {
                    kg,
                    // The comparative wire design fixes the shared
                    // stream to SRS (the core engine also supports
                    // cluster streams).
                    prepared: self.prepared_for(&spec.dataset, SamplingDesign::Srs)?,
                    primary,
                    config: spec.eval_config(),
                })
            }
            DesignSpec::Monitor { carry } => Ok(Blueprint::Monitor {
                kg,
                config: spec.eval_config(),
                // The wire carry is a whole pseudo-observation count;
                // the engine works in f64 evidence mass.
                carry_weight: carry as f64,
            }),
            _ => {
                let design = SamplingDesign::try_from(spec.design)
                    .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
                Ok(Blueprint::Plain {
                    kg,
                    prepared: self.prepared_for(&spec.dataset, design)?,
                    config: spec.eval_config(),
                })
            }
        }
    }

    fn build_live(&self, spec: &SessionSpec) -> ServiceResult<Live<'a>> {
        let blueprint = self.blueprint(spec)?;
        let mut engine = blueprint.engine_spec(&spec.method, spec.seed).build();
        engine.set_kernel_cache(Arc::clone(&self.kernel));
        Ok(Live {
            spec: spec.clone(),
            engine,
            pending: None,
            pending_stratum: None,
            seq: 0,
            touched: Instant::now(),
        })
    }

    fn rehydrate(&self, spec: &SessionSpec, snapshot: &[u8]) -> ServiceResult<Live<'a>> {
        let blueprint = self.blueprint(spec)?;
        // Registry-dispatched: the snapshot's record tag is validated
        // against the engine kind the spec denotes before any
        // kind-specific parsing, and every fingerprint after that.
        let mut engine = blueprint
            .engine_spec(&spec.method, spec.seed)
            .resume(snapshot)?;
        engine.set_kernel_cache(Arc::clone(&self.kernel));
        Ok(Live {
            spec: spec.clone(),
            engine,
            pending: None,
            pending_stratum: None,
            seq: 0,
            touched: Instant::now(),
        })
    }

    /// Loads a stored record into a slot (not yet inserted anywhere).
    fn slot_from_store(&self, id: &str, record: &StoredSession) -> ServiceResult<Slot<'a>> {
        let meta = meta_decode(id, &record.meta)?;
        match meta.state {
            SessionState::Finished => {
                let (reason, result) = meta
                    .finished
                    .ok_or_else(|| ServiceError::Corrupt(format!("session {id:?}: no result")))?;
                Ok(Slot::Finished(Box::new(FinishedSlot {
                    spec: meta.spec,
                    reason,
                    result,
                    strata: meta.strata,
                    methods: meta.methods,
                    touched: Instant::now(),
                })))
            }
            _ => {
                let snapshot = record.snapshot.as_deref().ok_or_else(|| {
                    ServiceError::Corrupt(format!("session {id:?}: suspended without a snapshot"))
                })?;
                let live = self.rehydrate(&meta.spec, snapshot)?;
                Ok(Slot::Live(Box::new(live)))
            }
        }
    }

    /// Brings the slot for `id` into the [`Slot::Live`] state inside an
    /// already-held shard, rehydrating from disk if needed.
    /// [`ServiceError::AlreadyFinished`] leaves the finished slot in
    /// the map so the caller can still read its view. A stored record
    /// that fails deep validation is quarantined (the slot is dropped
    /// and the caller gets [`ServiceError::Quarantined`]) instead of
    /// surfacing as a 500 forever.
    fn ensure_live(&self, shard: &mut HashMap<String, Slot<'a>>, id: &str) -> ServiceResult<()> {
        match shard.get(id) {
            Some(Slot::Live(_)) => Ok(()),
            Some(Slot::Finished(finished)) => {
                Err(ServiceError::AlreadyFinished(finished.spec.id.clone()))
            }
            Some(Slot::Suspended(dormant)) => {
                let spec = dormant.spec.clone();
                let rehydrated = (|| -> ServiceResult<Live<'a>> {
                    let record = self.store.load(id)?.ok_or_else(|| {
                        ServiceError::Corrupt(format!("session {id:?}: meta vanished"))
                    })?;
                    let snapshot = record.snapshot.as_deref().ok_or_else(|| {
                        ServiceError::Corrupt(format!("session {id:?}: snapshot vanished"))
                    })?;
                    self.rehydrate(&spec, snapshot)
                })();
                match rehydrated {
                    Ok(live) => {
                        shard.insert(id.to_string(), Slot::Live(Box::new(live)));
                        self.bump(|m| &m.sessions_resumed);
                        Ok(())
                    }
                    Err(e) => {
                        let e = self.quarantine_on_corruption(id, e);
                        if matches!(e, ServiceError::Quarantined(_)) {
                            shard.remove(id);
                        }
                        Err(e)
                    }
                }
            }
            None => {
                let Some(record) = self.store.load(id)? else {
                    return Err(ServiceError::UnknownSession(id.to_string()));
                };
                let slot = self
                    .slot_from_store(id, &record)
                    .map_err(|e| self.quarantine_on_corruption(id, e))?;
                let finished = matches!(slot, Slot::Finished(_));
                shard.insert(id.to_string(), slot);
                if finished {
                    return Err(ServiceError::AlreadyFinished(id.to_string()));
                }
                self.bump(|m| &m.sessions_resumed);
                Ok(())
            }
        }
    }

    /// Replaces a just-stopped live slot with its finished form.
    fn finalize(shard: &mut HashMap<String, Slot<'a>>, id: &str) {
        let Some(Slot::Live(live)) = shard.remove(id) else {
            unreachable!("finalize requires a live slot")
        };
        let spec = live.spec;
        let outcome = live
            .engine
            .into_outcome()
            .expect("finalize requires a stopped engine");
        shard.insert(
            id.to_string(),
            Slot::Finished(Box::new(FinishedSlot {
                spec,
                reason: outcome.reason,
                result: outcome.result,
                strata: outcome.strata,
                methods: outcome.methods,
                touched: Instant::now(),
            })),
        );
    }

    // -----------------------------------------------------------------
    // Public operations
    // -----------------------------------------------------------------

    /// Creates a session from `spec`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Draining`] in drain mode,
    /// [`ServiceError::InvalidId`], [`ServiceError::Quarantined`] on a
    /// quarantined id (quarantined bytes must be inspected and cleared
    /// out-of-band before the id can be reused),
    /// [`ServiceError::SessionExists`] (in memory or on disk),
    /// [`ServiceError::UnknownDataset`],
    /// [`ServiceError::QuotaExceeded`] when a tenant or server quota is
    /// full.
    pub fn create(&self, spec: &SessionSpec) -> ServiceResult<SessionView> {
        if self.is_draining() {
            self.bump(|m| &m.draining_refusals);
            return Err(ServiceError::Draining {
                retry_after: self.limits.retry_after_secs,
            });
        }
        if !valid_session_id(&spec.id) {
            return Err(ServiceError::InvalidId(spec.id.clone()));
        }
        self.check_quarantined(&spec.id)?;
        let live = self.build_live(spec)?;
        let mut shard = self.shard(&spec.id).lock().expect("shard lock");
        if shard.contains_key(&spec.id) || self.store.contains(&spec.id) {
            return Err(ServiceError::SessionExists(spec.id.clone()));
        }
        // Admission happens after all other checks while the shard lock
        // pins the insert: a taken slot is always matched by a session.
        self.admit(tenant_key(spec))
            .inspect_err(|_| self.bump(|m| &m.quota_refusals))?;
        let slot = Slot::Live(Box::new(live));
        let view = slot.view();
        shard.insert(spec.id.clone(), slot);
        self.bump(|m| &m.sessions_created);
        Ok(view)
    }

    /// Polls a session for its next annotation batch (at most
    /// `max_units` stage-1 units, clamped to
    /// [`MAX_BATCH_UNITS`] — with-replacement cluster streams never
    /// exhaust, so an unbounded batch would sample forever). `None`
    /// means the session stopped — the view carries the reason.
    ///
    /// **Idempotent while labels are owed**: re-polling a session with
    /// an outstanding request returns the identical batch again (at its
    /// original size), so an annotator that lost the response can
    /// recover instead of wedging the campaign.
    ///
    /// The returned view is the **headline** view: per-stratum /
    /// per-method rows are omitted on this hot path (each row costs an
    /// interval construction); read them via [`SessionManager::status`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`],
    /// [`ServiceError::AlreadyFinished`], engine protocol errors
    /// ([`ServiceError::Session`]), or rehydration failures.
    pub fn next_request(
        &self,
        id: &str,
        max_units: u64,
    ) -> ServiceResult<(Option<AnnotationRequest>, SessionView)> {
        self.check_quarantined(id)?;
        let max_units = max_units.clamp(1, MAX_BATCH_UNITS);
        let mut shard = self.shard(id).lock().expect("shard lock");
        match self.ensure_live(&mut shard, id) {
            Ok(()) => {}
            Err(ServiceError::AlreadyFinished(_)) => {
                // A poll on a finished session isn't an error — it's the
                // protocol's way of saying "done". Report it.
                let view = shard.get(id).expect("finished slot in map").view();
                return Ok((None, view));
            }
            Err(e) => return Err(e),
        }
        let Some(Slot::Live(live)) = shard.get_mut(id) else {
            unreachable!("ensure_live left a live slot")
        };
        live.touched = Instant::now();
        if let Some(outstanding) = &live.pending {
            let request = outstanding.clone();
            let view = shard.get(id).expect("slot exists").view_brief();
            return Ok((Some(request), view));
        }
        let polled = live.engine.next_request(max_units)?;
        let request = match polled {
            Some(polled) => {
                live.seq += 1;
                live.pending = Some(polled.request.clone());
                live.pending_stratum = polled.stratum;
                Some(polled.request)
            }
            None => {
                live.pending = None;
                live.pending_stratum = None;
                if live.engine.stop_reason().is_some() {
                    // Stream exhausted: the session stopped inside the
                    // poll; surface it as Finished.
                    Self::finalize(&mut shard, id);
                    self.bump(|m| &m.sessions_finished);
                }
                // Otherwise the engine owes no labels without having
                // stopped — a monitor in its watching state. The slot
                // stays live: a later delta batch may re-open it.
                None
            }
        };
        let view = shard.get(id).expect("slot exists").view_brief();
        Ok((request, view))
    }

    /// Submits labels for the outstanding request, in request order.
    ///
    /// `seq` is the fencing token from the poll that produced the
    /// labels ([`SessionView::pending_seq`]): when supplied, the submit
    /// only applies if that batch is still the outstanding one, so two
    /// drivers racing on one session can never smuggle stale labels
    /// onto a newer batch. `None` skips the check (single-driver
    /// callers).
    ///
    /// Like polls, the returned view is the **headline** view (no
    /// per-stratum / per-method rows).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`],
    /// [`ServiceError::AlreadyFinished`],
    /// [`ServiceError::StaleRequest`], label-count/protocol errors
    /// ([`ServiceError::Session`]).
    pub fn submit(
        &self,
        id: &str,
        labels: &[bool],
        seq: Option<u64>,
    ) -> ServiceResult<SessionView> {
        self.check_quarantined(id)?;
        let mut shard = self.shard(id).lock().expect("shard lock");
        if let Err(e) = self.ensure_live(&mut shard, id) {
            // A *fenced* submit against a finished session is the
            // replay of the very batch that finished it (the fence can
            // no longer match anything): answer the same stale-fence
            // 409 a live replay gets, which clients treat as proof the
            // original landed. Unfenced submits keep the informative
            // `already_finished`.
            if seq.is_some() && matches!(e, ServiceError::AlreadyFinished(_)) {
                return Err(ServiceError::StaleRequest(id.to_string()));
            }
            return Err(e);
        }
        let Some(Slot::Live(live)) = shard.get_mut(id) else {
            unreachable!("ensure_live left a live slot")
        };
        if let Some(seq) = seq {
            if live.pending.is_none() || seq != live.seq {
                return Err(ServiceError::StaleRequest(id.to_string()));
            }
        }
        live.engine.submit(labels)?;
        live.touched = Instant::now();
        live.pending = None;
        live.pending_stratum = None;
        if live.engine.stop_reason().is_some() {
            Self::finalize(&mut shard, id);
            self.bump(|m| &m.sessions_finished);
        }
        Ok(shard.get(id).expect("slot exists").view_brief())
    }

    /// Applies a KG delta batch to a monitor session: removed triples'
    /// labels are retired from the evidence, additions join the sampled
    /// population, and the monitor re-appraises its credible interval —
    /// re-opening annotation only when the interval no longer meets the
    /// MoE target.
    ///
    /// An outstanding annotation batch is withdrawn first via the
    /// exact-rollback cancel: its fencing seq dies with it, so a driver
    /// still holding that batch gets [`ServiceError::StaleRequest`]
    /// (409) on submit and must re-poll against the post-delta
    /// population.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] for non-monitor sessions or a
    /// rejected batch (out-of-range/duplicate removes),
    /// [`ServiceError::UnknownSession`],
    /// [`ServiceError::AlreadyFinished`], or rehydration failures.
    pub fn apply_deltas(
        &self,
        id: &str,
        batch: &DeltaBatch,
    ) -> ServiceResult<(DeltaOutcome, SessionView)> {
        self.check_quarantined(id)?;
        let mut shard = self.shard(id).lock().expect("shard lock");
        self.ensure_live(&mut shard, id)?;
        let Some(Slot::Live(live)) = shard.get_mut(id) else {
            unreachable!("ensure_live left a live slot")
        };
        if live.engine.has_pending_request() {
            live.engine.cancel_request()?;
            live.pending = None;
            live.pending_stratum = None;
        }
        let outcome = live.engine.apply_deltas(batch).map_err(|e| match e {
            SessionError::DeltasUnsupported => ServiceError::BadRequest(format!(
                "session {id:?} does not accept deltas; only \"monitor\" designs do"
            )),
            SessionError::DeltaRejected(reject) => {
                ServiceError::BadRequest(format!("delta batch rejected: {reject}"))
            }
            other => ServiceError::Session(other),
        })?;
        live.touched = Instant::now();
        if outcome.reopened {
            self.bump(|m| &m.monitor_campaigns_reopened);
        }
        self.bump_by(|m| &m.monitor_labels_retired, outcome.retired_labels);
        Ok((outcome, shard.get(id).expect("slot exists").view()))
    }

    /// The session's current view. Never rehydrates: dormant sessions
    /// report their suspension-time status straight from the cached
    /// meta record.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] or a corrupt stored record.
    pub fn status(&self, id: &str) -> ServiceResult<SessionView> {
        self.check_quarantined(id)?;
        let shard = self.shard(id).lock().expect("shard lock");
        if let Some(slot) = shard.get(id) {
            return Ok(slot.view());
        }
        drop(shard);
        let Some(record) = self.store.load(id)? else {
            return Err(ServiceError::UnknownSession(id.to_string()));
        };
        let meta =
            meta_decode(id, &record.meta).map_err(|e| self.quarantine_on_corruption(id, e))?;
        Ok(SessionView {
            id: meta.spec.id.clone(),
            dataset: meta.spec.dataset.clone(),
            design: meta.spec.design.canonical_name(),
            method: meta.spec.method.canonical_name(),
            state: SessionState::Evicted,
            pending_labels: 0,
            pending_seq: None,
            pending_stratum: None,
            status: meta.status,
            strata: meta.strata,
            methods: meta.methods,
            monitor: meta.monitor,
            snapshot_bytes: record.snapshot.as_ref().map(|s| s.len() as u64),
        })
    }

    /// Suspends a running session: snapshot + meta to disk, live state
    /// dropped to a cached stub. Idempotent on already-suspended
    /// sessions.
    ///
    /// # Errors
    ///
    /// [`ServiceError::RequestOutstanding`] while labels are owed,
    /// [`ServiceError::AlreadyFinished`] after the stop,
    /// [`ServiceError::UnknownSession`], or store I/O failures.
    pub fn suspend(&self, id: &str) -> ServiceResult<SessionView> {
        self.check_quarantined(id)?;
        let mut shard = self.shard(id).lock().expect("shard lock");
        match shard.get(id) {
            Some(Slot::Suspended(_)) => Ok(shard.get(id).expect("slot exists").view()),
            Some(Slot::Finished(finished)) => {
                Err(ServiceError::AlreadyFinished(finished.spec.id.clone()))
            }
            Some(Slot::Live(live)) => {
                if live.engine.has_pending_request() {
                    return Err(ServiceError::RequestOutstanding(id.to_string()));
                }
                let snapshot = live.engine.snapshot()?;
                let view = live.engine.status();
                let spec = live.spec.clone();
                let meta = meta_encode(
                    &spec,
                    SessionState::Suspended,
                    &view.primary,
                    view.strata.as_deref(),
                    view.methods.as_deref(),
                    view.monitor.as_ref(),
                    None,
                );
                self.store.save(id, &meta, Some(&snapshot))?;
                let dormant = Dormant {
                    spec,
                    status: view.primary,
                    strata: view.strata,
                    methods: view.methods,
                    monitor: view.monitor,
                    snapshot_bytes: snapshot.len() as u64,
                    touched: Instant::now(),
                };
                shard.insert(id.to_string(), Slot::Suspended(Box::new(dormant)));
                self.bump(|m| &m.sessions_suspended);
                Ok(shard.get(id).expect("slot exists").view())
            }
            None => {
                if self.store.contains(id) {
                    // Evicted: already on disk, nothing to do.
                    drop(shard);
                    self.status(id)
                } else {
                    Err(ServiceError::UnknownSession(id.to_string()))
                }
            }
        }
    }

    /// Brings a suspended or evicted session back to memory,
    /// re-validating the snapshot fingerprints. Idempotent on live and
    /// finished sessions.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`], corrupt/mismatched snapshots
    /// ([`ServiceError::Session`] / [`ServiceError::Corrupt`]).
    pub fn resume(&self, id: &str) -> ServiceResult<SessionView> {
        self.check_quarantined(id)?;
        let mut shard = self.shard(id).lock().expect("shard lock");
        match shard.get(id) {
            Some(Slot::Live(_) | Slot::Finished(_)) => {
                let slot = shard.get_mut(id).expect("slot exists");
                slot.touch();
                Ok(slot.view())
            }
            Some(Slot::Suspended(dormant)) => {
                let spec = dormant.spec.clone();
                let rehydrated = (|| -> ServiceResult<Live<'a>> {
                    let record = self.store.load(id)?.ok_or_else(|| {
                        ServiceError::Corrupt(format!("session {id:?}: meta vanished"))
                    })?;
                    let snapshot = record.snapshot.as_deref().ok_or_else(|| {
                        ServiceError::Corrupt(format!("session {id:?}: snapshot vanished"))
                    })?;
                    self.rehydrate(&spec, snapshot)
                })();
                match rehydrated {
                    Ok(live) => {
                        shard.insert(id.to_string(), Slot::Live(Box::new(live)));
                        self.bump(|m| &m.sessions_resumed);
                        Ok(shard.get(id).expect("slot exists").view())
                    }
                    Err(e) => {
                        let e = self.quarantine_on_corruption(id, e);
                        if matches!(e, ServiceError::Quarantined(_)) {
                            shard.remove(id);
                        }
                        Err(e)
                    }
                }
            }
            None => {
                let Some(record) = self.store.load(id)? else {
                    return Err(ServiceError::UnknownSession(id.to_string()));
                };
                let slot = self
                    .slot_from_store(id, &record)
                    .map_err(|e| self.quarantine_on_corruption(id, e))?;
                if matches!(slot, Slot::Live(_)) {
                    self.bump(|m| &m.sessions_resumed);
                }
                shard.insert(id.to_string(), slot);
                Ok(shard.get(id).expect("slot exists").view())
            }
        }
    }

    /// Drops a session's last in-memory bytes, persisting it first if
    /// needed (running sessions are suspended on the way out; finished
    /// results are written as meta-only records). Idempotent on
    /// already-evicted sessions.
    ///
    /// # Errors
    ///
    /// [`ServiceError::RequestOutstanding`] while labels are owed,
    /// [`ServiceError::UnknownSession`], or store I/O failures.
    pub fn evict(&self, id: &str) -> ServiceResult<()> {
        self.check_quarantined(id)?;
        let mut shard = self.shard(id).lock().expect("shard lock");
        match shard.get(id) {
            Some(Slot::Live(live)) => {
                if live.engine.has_pending_request() {
                    return Err(ServiceError::RequestOutstanding(id.to_string()));
                }
                let snapshot = live.engine.snapshot()?;
                let view = live.engine.status();
                let meta = meta_encode(
                    &live.spec,
                    SessionState::Suspended,
                    &view.primary,
                    view.strata.as_deref(),
                    view.methods.as_deref(),
                    view.monitor.as_ref(),
                    None,
                );
                self.store.save(id, &meta, Some(&snapshot))?;
                shard.remove(id);
                self.bump(|m| &m.sessions_evicted);
                Ok(())
            }
            Some(Slot::Suspended(_)) => {
                // Snapshot + meta already on disk.
                shard.remove(id);
                self.bump(|m| &m.sessions_evicted);
                Ok(())
            }
            Some(Slot::Finished(finished)) => {
                let status = finished_status(finished.reason, &finished.result);
                let meta = meta_encode(
                    &finished.spec,
                    SessionState::Finished,
                    &status,
                    finished.strata.as_deref(),
                    finished.methods.as_deref(),
                    None,
                    Some((finished.reason, &finished.result)),
                );
                self.store.save(id, &meta, None)?;
                shard.remove(id);
                self.bump(|m| &m.sessions_evicted);
                Ok(())
            }
            None if self.store.contains(id) => Ok(()),
            None => Err(ServiceError::UnknownSession(id.to_string())),
        }
    }

    /// Removes a session everywhere — memory and disk. Destructive and
    /// unconditional (an outstanding request is abandoned).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when nothing exists under `id`;
    /// store I/O failures.
    pub fn delete(&self, id: &str) -> ServiceResult<()> {
        let mut shard = self.shard(id).lock().expect("shard lock");
        let removed = shard.remove(id);
        let mut tenant = removed
            .as_ref()
            .map(|slot| tenant_key(slot.spec()).to_string());
        let on_disk = self.store.contains(id);
        if on_disk {
            if tenant.is_none() {
                // Disk-only session: its quota owner is in the meta
                // record (unreadable meta falls back to the default
                // tenant, matching the startup census).
                tenant = Some(
                    self.store
                        .load(id)
                        .ok()
                        .flatten()
                        .and_then(|record| meta_decode(id, &record.meta).ok())
                        .map_or(String::new(), |meta| tenant_key(&meta.spec).to_string()),
                );
            }
            self.store.remove(id)?;
        }
        match tenant {
            Some(tenant) => {
                self.release(&tenant);
                self.bump(|m| &m.sessions_deleted);
                Ok(())
            }
            None => Err(ServiceError::UnknownSession(id.to_string())),
        }
    }

    /// The stored snapshot bytes of a suspended/evicted session —
    /// the exact bytes a resume would rehydrate from.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotSuspended`] for live/finished sessions,
    /// [`ServiceError::UnknownSession`], store I/O failures.
    pub fn snapshot_bytes(&self, id: &str) -> ServiceResult<Vec<u8>> {
        self.check_quarantined(id)?;
        let shard = self.shard(id).lock().expect("shard lock");
        match shard.get(id) {
            Some(Slot::Live(_) | Slot::Finished(_)) => {
                return Err(ServiceError::NotSuspended(id.to_string()))
            }
            Some(Slot::Suspended(_)) | None => {}
        }
        // Shard still held: the snapshot on disk cannot change under us.
        let Some(record) = self.store.load(id)? else {
            return Err(ServiceError::UnknownSession(id.to_string()));
        };
        record
            .snapshot
            .ok_or_else(|| ServiceError::NotSuspended(id.to_string()))
    }

    /// The final result of a finished session.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] if the session is still running,
    /// [`ServiceError::UnknownSession`] if nothing exists under `id`.
    pub fn final_result(&self, id: &str) -> ServiceResult<(StopReason, EvalResult)> {
        self.check_quarantined(id)?;
        {
            let shard = self.shard(id).lock().expect("shard lock");
            match shard.get(id) {
                Some(Slot::Finished(finished)) => {
                    return Ok((finished.reason, finished.result.clone()))
                }
                Some(_) => {
                    return Err(ServiceError::BadRequest(format!(
                        "session {id:?} has not finished"
                    )))
                }
                None => {}
            }
        }
        let Some(record) = self.store.load(id)? else {
            return Err(ServiceError::UnknownSession(id.to_string()));
        };
        let meta = meta_decode(id, &record.meta)?;
        meta.finished
            .ok_or_else(|| ServiceError::BadRequest(format!("session {id:?} has not finished")))
    }

    /// Views of every known session — in-memory ones live, on-disk-only
    /// ones as [`SessionState::Evicted`] — sorted by id.
    ///
    /// # Errors
    ///
    /// Store I/O failures while listing evicted sessions.
    pub fn list(&self) -> ServiceResult<Vec<SessionView>> {
        let mut views = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            for (id, slot) in shard.iter() {
                seen.insert(id.clone());
                views.push(slot.view());
            }
        }
        for id in self.store.list()? {
            if !seen.contains(&id) {
                views.push(self.status(&id)?);
            }
        }
        views.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(views)
    }
}

// The whole point: one manager, many threads.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<SessionManager<'static>>();
};
