//! The network front: a `TcpListener` accept loop feeding the worker
//! pool, and the route table mapping the HTTP/JSON API onto
//! [`SessionManager`] operations.
//!
//! ```text
//! GET    /healthz                      liveness probe
//! GET    /v1/datasets                  hosted KGs
//! GET    /v1/sessions                  all sessions (live + dormant)
//! POST   /v1/sessions                  create  {id,dataset,design,method,seed,...}
//! GET    /v1/sessions/{id}             status
//! POST   /v1/sessions/{id}/next        poll    {"batch": n}
//! POST   /v1/sessions/{id}/labels      submit  {"labels": [bool,...]}
//! POST   /v1/sessions/{id}/suspend     spill to disk
//! POST   /v1/sessions/{id}/resume      rehydrate from disk
//! POST   /v1/sessions/{id}/evict       drop in-memory state
//! GET    /v1/sessions/{id}/snapshot    stored snapshot bytes, hex
//! DELETE /v1/sessions/{id}             remove everywhere
//! ```
//!
//! Connections are keep-alive: one worker owns a connection for its
//! lifetime and pipelines request → response cycles on it — so the
//! worker count bounds the number of *simultaneous connections*, not
//! requests. Size `--workers` at or above your expected client count
//! (`kgae-serve` defaults generously); idle connections are reclaimed
//! after [`IDLE_TIMEOUT`]. Shutdown is cooperative —
//! [`ServerHandle::shutdown`] flips a flag and nudges the accept loop
//! awake; workers notice within one [`READ_TICK`].

use crate::json::Json;
use crate::manager::{ServiceError, SessionManager, SessionView};
use crate::store::to_hex;
use crate::{api, http, json, pool};
use kgae_graph::KnowledgeGraph;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

/// How long a keep-alive connection may sit idle before the worker
/// reclaims it.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket read-timeout tick. Workers wake at this cadence while a
/// connection idles, so a shutdown request is honored within ~one tick
/// instead of a full [`IDLE_TIMEOUT`].
pub const READ_TICK: Duration = Duration::from_secs(1);

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

/// A clonable remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Asks the server to stop and wakes its accept loop. Existing
    /// connections finish their in-flight request; once the pool
    /// drains, `Server::run` suspends every live session to disk via
    /// [`SessionManager::drain`] and returns the report — so a SIGTERM
    /// loses no campaign state.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with
    /// `workers` connection handlers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, workers: usize) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            workers: workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (reports the real port after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shutdown remote control.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Serves `manager` until [`ServerHandle::shutdown`] is called,
    /// then drains gracefully: the manager stops accepting creates
    /// (503 + `Retry-After`), in-flight connections finish, and every
    /// live session is persisted to the snapshot store — outstanding
    /// annotation batches are withdrawn via the exact-rollback cancel,
    /// so a post-restart re-poll regenerates them bit-identically.
    /// Returns the drain report.
    ///
    /// Blocks the calling thread; connection handling runs on the
    /// worker pool (scoped threads, so `manager` may borrow from the
    /// caller's stack).
    pub fn run(self, manager: &SessionManager<'_>) -> crate::manager::DrainReport {
        let shutdown = Arc::clone(&self.shutdown);
        let (tx, rx) = channel::<TcpStream>();
        crossbeam::scope(|scope| {
            let pool_shutdown = Arc::clone(&shutdown);
            let pool_thread = scope.spawn(move |_| {
                pool::run_pool(self.workers, rx, |stream| {
                    handle_connection(stream, manager, &pool_shutdown);
                });
            });
            for stream in self.listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let _ = stream.set_read_timeout(Some(READ_TICK));
                        let _ = stream.set_nodelay(true);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Refuse new sessions while the in-flight connections wind
            // down; the full persistence sweep runs after the pool
            // exits, when no worker can race a session mutation.
            manager.begin_drain();
            drop(tx); // disconnect: the pool drains and exits
            pool_thread.join().expect("worker pool");
        })
        .expect("server scope");
        manager.drain()
    }
}

/// Serves one keep-alive connection to completion.
fn handle_connection(stream: TcpStream, manager: &SessionManager<'_>, shutdown: &AtomicBool) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut stream = stream;
    let mut idle = Duration::ZERO;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match http::read_request(&mut reader) {
            Ok(request) => {
                idle = Duration::ZERO;
                request
            }
            Err(http::HttpError::IdleTimeout) => {
                // Nothing consumed: keep waiting in READ_TICK slices so
                // the shutdown flag is honored promptly, up to the
                // connection's idle budget.
                idle += READ_TICK;
                if idle >= IDLE_TIMEOUT {
                    return;
                }
                continue;
            }
            Err(http::HttpError::Closed) => return,
            Err(http::HttpError::Io(_)) => return, // mid-message timeout or reset
            Err(http::HttpError::TooLarge(what)) => {
                let _ = http::write_response(&mut stream, 413, &api::error_body(what), false);
                return;
            }
            Err(http::HttpError::Malformed(why)) => {
                let _ = http::write_response(&mut stream, 400, &api::error_body(why), false);
                return;
            }
        };
        // Failpoint `conn.read`: the request is discarded before it
        // reaches the manager — the client sees a dead connection and
        // must retry a request that was never applied.
        #[cfg(feature = "fault-injection")]
        if let Some(action) = crate::fault::check(crate::fault::site::CONN_READ) {
            match action {
                crate::fault::FaultAction::Crash => std::process::abort(),
                _ => return,
            }
        }
        let keep_alive = request.keep_alive;
        let (status, body, retry_after) = route(&request, manager);
        let mut extra: Vec<(&str, String)> = Vec::new();
        if let Some(secs) = retry_after {
            extra.push(("Retry-After", secs.to_string()));
        }
        // Failpoint `conn.write`: the response dies after the manager
        // already applied the operation — the lost-response case retry
        // logic must survive (torn sends a prefix, drop sends nothing).
        #[cfg(feature = "fault-injection")]
        if let Some(action) = crate::fault::check(crate::fault::site::CONN_WRITE) {
            use std::io::Write;
            match action {
                crate::fault::FaultAction::Crash => std::process::abort(),
                crate::fault::FaultAction::Torn(n) => {
                    let bytes = http::format_response(status, &body, keep_alive, &extra);
                    let cut = n.min(bytes.len());
                    let _ = stream.write_all(&bytes[..cut]);
                    let _ = stream.flush();
                    return;
                }
                _ => return,
            }
        }
        if http::write_response_with(&mut stream, status, &body, keep_alive, &extra).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// The service's semantic version, compiled in — what `GET /healthz`
/// and `kgae-serve --version` report.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The `GET /healthz` body: liveness plus build info, so deployment
/// probes can assert *what* is running, not just that something is.
#[must_use]
pub fn health_body() -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("name", Json::str("kgae-serve")),
        ("version", Json::str(VERSION)),
        ("api", Json::str("v1")),
    ])
    .encode()
}

/// One routed answer: status, JSON body, and the optional
/// `Retry-After` seconds (quota/drain refusals carry one).
type Reply = (u16, String, Option<u64>);

fn error_response(e: &ServiceError) -> Reply {
    (
        e.http_status(),
        api::error_body_coded(&e.to_string(), e.wire_code()),
        e.retry_after(),
    )
}

fn view_body(view: &SessionView) -> String {
    view_to_json(view).encode()
}

/// Encodes a [`SessionView`] for the wire.
#[must_use]
pub fn view_to_json(view: &SessionView) -> Json {
    let mut doc = Json::obj(vec![
        ("id", Json::str(&view.id)),
        ("dataset", Json::str(&view.dataset)),
        ("design", Json::str(&view.design)),
        ("method", Json::str(&view.method)),
        ("state", Json::str(view.state.name())),
        ("pending_labels", Json::int(view.pending_labels)),
        (
            "pending_seq",
            view.pending_seq.map_or(Json::Null, Json::int),
        ),
        ("status", api::status_to_json(&view.status)),
        (
            "snapshot_bytes",
            view.snapshot_bytes.map_or(Json::Null, Json::int),
        ),
    ]);
    if let Some((index, name)) = &view.pending_stratum {
        doc.set(
            "pending_stratum",
            Json::obj(vec![
                ("index", Json::int(u64::from(*index))),
                ("name", Json::str(name)),
            ]),
        );
    }
    if let Some(strata) = &view.strata {
        doc.set("strata", api::strata_to_json(strata));
    }
    if let Some(methods) = &view.methods {
        doc.set("methods", api::methods_to_json(methods));
    }
    doc
}

fn parse_body(body: &[u8]) -> Result<Json, Reply> {
    let text =
        std::str::from_utf8(body).map_err(|_| (400, api::error_body("body is not UTF-8"), None))?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    json::parse(text).map_err(|e| (400, api::error_body(&e.to_string()), None))
}

/// Dispatches one request; returns `(status, body, retry_after)`.
fn route(request: &http::Request, manager: &SessionManager<'_>) -> Reply {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => (200, health_body(), None),
        ("GET", ["v1", "datasets"]) => {
            let datasets: Vec<Json> = manager
                .registry()
                .entries()
                .iter()
                .map(|entry| {
                    Json::obj(vec![
                        ("name", Json::str(&entry.name)),
                        ("triples", Json::int(entry.kg.num_triples())),
                        ("clusters", Json::int(u64::from(entry.kg.num_clusters()))),
                        (
                            "strata",
                            entry
                                .stratification
                                .as_ref()
                                .map_or(Json::Null, |s| Json::int(u64::from(s.num_strata()))),
                        ),
                    ])
                })
                .collect();
            (
                200,
                Json::obj(vec![("datasets", Json::Arr(datasets))]).encode(),
                None,
            )
        }
        ("GET", ["v1", "sessions"]) => match manager.list() {
            Ok(views) => (
                200,
                Json::obj(vec![(
                    "sessions",
                    Json::Arr(views.iter().map(view_to_json).collect()),
                )])
                .encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions"]) => {
            let body = match parse_body(&request.body) {
                Ok(body) => body,
                Err(err) => return err,
            };
            let spec = match api::SessionSpec::from_json(&body) {
                Ok(spec) => spec,
                Err(e) => return (400, api::error_body(&e.to_string()), None),
            };
            match manager.create(&spec) {
                Ok(view) => (201, view_body(&view), None),
                Err(e) => error_response(&e),
            }
        }
        ("GET", ["v1", "sessions", id]) => match manager.status(id) {
            Ok(view) => (200, view_body(&view), None),
            Err(e) => error_response(&e),
        },
        ("DELETE", ["v1", "sessions", id]) => match manager.delete(id) {
            Ok(()) => (
                200,
                Json::obj(vec![("deleted", Json::str(id))]).encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions", id, "next"]) => {
            let body = match parse_body(&request.body) {
                Ok(body) => body,
                Err(err) => return err,
            };
            let batch = match body.get("batch") {
                None | Some(Json::Null) => 1,
                Some(field) => match field.as_u64() {
                    Some(batch) => batch,
                    None => {
                        return (
                            400,
                            api::error_body("\"batch\" must be a non-negative integer"),
                            None,
                        )
                    }
                },
            };
            match manager.next_request(id, batch) {
                Ok((request, view)) => {
                    let stratum =
                        view.pending_stratum
                            .as_ref()
                            .map(|(index, name)| api::WireStratum {
                                index: *index,
                                name: name.clone(),
                            });
                    let mut doc =
                        api::request_to_json(request.as_ref(), view.pending_seq, stratum.as_ref());
                    doc.set("session", view_to_json(&view));
                    (200, doc.encode(), None)
                }
                Err(e) => error_response(&e),
            }
        }
        ("POST", ["v1", "sessions", id, "labels"]) => {
            let body = match parse_body(&request.body) {
                Ok(body) => body,
                Err(err) => return err,
            };
            let (labels, seq) = match api::labels_from_json(&body) {
                Ok(decoded) => decoded,
                Err(e) => return (400, api::error_body(&e.to_string()), None),
            };
            match manager.submit(id, &labels, seq) {
                Ok(view) => (200, view_body(&view), None),
                Err(e) => error_response(&e),
            }
        }
        ("POST", ["v1", "sessions", id, "suspend"]) => match manager.suspend(id) {
            Ok(view) => (200, view_body(&view), None),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions", id, "resume"]) => match manager.resume(id) {
            Ok(view) => (200, view_body(&view), None),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions", id, "evict"]) => match manager.evict(id) {
            Ok(()) => (
                200,
                Json::obj(vec![("evicted", Json::str(id))]).encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        ("GET", ["v1", "sessions", id, "snapshot"]) => match manager.snapshot_bytes(id) {
            Ok(bytes) => (
                200,
                Json::obj(vec![
                    ("bytes", Json::int(bytes.len() as u64)),
                    ("hex", Json::Str(to_hex(&bytes))),
                ])
                .encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        _ => (404, api::error_body("no such route"), None),
    }
}
