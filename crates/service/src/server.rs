//! The network front: a readiness reactor ([`crate::reactor`])
//! multiplexing every connection on one event-loop thread, a worker
//! pool executing ready requests, and the route table mapping the
//! HTTP/JSON API onto [`SessionManager`] operations.
//!
//! ```text
//! GET    /healthz                      liveness probe
//! GET    /v1/datasets                  hosted KGs
//! GET    /v1/sessions                  all sessions (live + dormant)
//! POST   /v1/sessions                  create  {id,dataset,design,method,seed,...}
//! GET    /v1/sessions/{id}             status
//! POST   /v1/sessions/{id}/next        poll    {"batch": n}
//! POST   /v1/sessions/{id}/labels      submit  {"labels": [bool,...]}
//! POST   /v1/sessions/{id}/suspend     spill to disk
//! POST   /v1/sessions/{id}/resume      rehydrate from disk
//! POST   /v1/sessions/{id}/evict       drop in-memory state
//! POST   /v1/sessions/{id}/deltas      apply KG churn  {removes,adds,predicate?}
//! GET    /v1/sessions/{id}/snapshot    stored snapshot bytes, hex
//! DELETE /v1/sessions/{id}             remove everywhere
//! ```
//!
//! Connections are keep-alive and cost no thread while idle: the
//! reactor holds each one as parser + buffer state and hands only
//! fully-parsed requests to the workers. `--workers` therefore bounds
//! *in-flight requests*, not connections — size it at the concurrency
//! the session manager should see (CPU count is a good default), even
//! with thousands of connections held open. Idle connections are
//! reclaimed by the reactor's timer wheel after the server's idle
//! timeout ([`IDLE_TIMEOUT`] by default, tunable per server with
//! [`Server::with_idle_timeout`]). Shutdown is event-driven —
//! [`ServerHandle::shutdown`] flips a flag and writes one waker byte;
//! the reactor reacts on the same iteration, no polling tick involved.

use crate::json::Json;
use crate::manager::{ServiceError, SessionManager, SessionView};
use crate::metrics::{Metrics, RequestLog};
use crate::store::to_hex;
use crate::{api, http, json, reactor};
use kgae_graph::KnowledgeGraph;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default reaping deadline for connections without transport
/// progress: idle keep-alive sessions and stalled uploads alike.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Historical shutdown-notice bound of the blocking front, which woke
/// every connection at this cadence to check the flag. The reactor
/// needs no tick — the waker delivers shutdown instantly — but the
/// constant remains the documented upper bound tests hold it to.
pub const READ_TICK: Duration = Duration::from_secs(1);

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    workers: usize,
    idle_timeout: Duration,
    shutdown: Arc<AtomicBool>,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    metrics: Option<Arc<Metrics>>,
    log: Option<Arc<RequestLog>>,
}

/// A clonable remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    wake_tx: Arc<UnixStream>,
}

impl ServerHandle {
    /// Asks the server to stop: flips the flag and writes one byte to
    /// the reactor's waker, which interrupts its `poll` immediately.
    /// In-flight requests finish their responses, idle connections
    /// close at once; when the last connection is gone, `Server::run`
    /// suspends every live session to disk via [`SessionManager::drain`]
    /// and returns the report — so a SIGTERM loses no campaign state.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut waker = &*self.wake_tx;
        let _ = waker.write(&[1]);
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with
    /// `workers` request executors.
    ///
    /// # Errors
    ///
    /// Propagates bind (and waker-pair creation) failures.
    pub fn bind(addr: &str, workers: usize) -> std::io::Result<Self> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            workers: workers.max(1),
            idle_timeout: IDLE_TIMEOUT,
            shutdown: Arc::new(AtomicBool::new(false)),
            wake_rx,
            wake_tx: Arc::new(wake_tx),
            metrics: None,
            log: None,
        })
    }

    /// Overrides the idle reaping deadline (default [`IDLE_TIMEOUT`]).
    /// Tests use short timeouts to exercise the reaper quickly.
    #[must_use]
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Attaches the metrics registry: enables `GET /metrics` and turns
    /// on per-request counters, latency histograms, and the reactor's
    /// connection gauges. Share the same `Arc` with
    /// [`SessionManager::set_metrics`] so session and store counters
    /// land in the same exposition. Without this, `GET /metrics`
    /// answers 404.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches the structured request log: one line per executed
    /// request on stderr, filtered by the log's level floor.
    #[must_use]
    pub fn with_request_log(mut self, log: Arc<RequestLog>) -> Self {
        self.log = Some(log);
        self
    }

    /// The bound address (reports the real port after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shutdown remote control.
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            wake_tx: Arc::clone(&self.wake_tx),
        })
    }

    /// Serves `manager` until [`ServerHandle::shutdown`] is called,
    /// then drains gracefully: the manager stops accepting creates
    /// (503 + `Retry-After`), in-flight requests finish, and every
    /// live session is persisted to the snapshot store — outstanding
    /// annotation batches are withdrawn via the exact-rollback cancel,
    /// so a post-restart re-poll regenerates them bit-identically.
    /// Returns the drain report.
    ///
    /// Blocks the calling thread driving the reactor; request
    /// execution runs on the worker pool (scoped threads, so `manager`
    /// may borrow from the caller's stack).
    pub fn run(self, manager: &SessionManager<'_>) -> crate::manager::DrainReport {
        let Server {
            listener,
            workers,
            idle_timeout,
            shutdown,
            wake_rx,
            wake_tx,
            metrics,
            log,
        } = self;
        let route_metrics = metrics.clone();
        reactor::serve(
            listener,
            &wake_rx,
            &wake_tx,
            &shutdown,
            reactor::Config {
                workers,
                idle_timeout,
                metrics,
                log,
            },
            || manager.begin_drain(),
            |request| route(request, manager, route_metrics.as_deref()),
        );
        manager.drain()
    }
}

/// The service's semantic version, compiled in — what `GET /healthz`
/// and `kgae-serve --version` report.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The `GET /healthz` body: liveness plus build info, so deployment
/// probes can assert *what* is running, not just that something is.
#[must_use]
pub fn health_body() -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("name", Json::str("kgae-serve")),
        ("version", Json::str(VERSION)),
        ("api", Json::str("v1")),
    ])
    .encode()
}

/// One routed answer: status, JSON body, and the optional
/// `Retry-After` seconds (quota/drain refusals carry one).
type Reply = (u16, String, Option<u64>);

fn error_response(e: &ServiceError) -> Reply {
    (
        e.http_status(),
        api::error_body_coded(&e.to_string(), e.wire_code()),
        e.retry_after(),
    )
}

fn view_body(view: &SessionView) -> String {
    view_to_json(view).encode()
}

/// Encodes a [`SessionView`] for the wire.
#[must_use]
pub fn view_to_json(view: &SessionView) -> Json {
    let mut doc = Json::obj(vec![
        ("id", Json::str(&view.id)),
        ("dataset", Json::str(&view.dataset)),
        ("design", Json::str(&view.design)),
        ("method", Json::str(&view.method)),
        ("state", Json::str(view.state.name())),
        ("pending_labels", Json::int(view.pending_labels)),
        (
            "pending_seq",
            view.pending_seq.map_or(Json::Null, Json::int),
        ),
        ("status", api::status_to_json(&view.status)),
        (
            "snapshot_bytes",
            view.snapshot_bytes.map_or(Json::Null, Json::int),
        ),
    ]);
    if let Some((index, name)) = &view.pending_stratum {
        doc.set(
            "pending_stratum",
            Json::obj(vec![
                ("index", Json::int(u64::from(*index))),
                ("name", Json::str(name)),
            ]),
        );
    }
    if let Some(strata) = &view.strata {
        doc.set("strata", api::strata_to_json(strata));
    }
    if let Some(methods) = &view.methods {
        doc.set("methods", api::methods_to_json(methods));
    }
    if let Some(monitor) = &view.monitor {
        doc.set("monitor", api::monitor_report_to_json(monitor));
    }
    doc
}

fn parse_body(body: &[u8]) -> Result<Json, Reply> {
    let text =
        std::str::from_utf8(body).map_err(|_| (400, api::error_body("body is not UTF-8"), None))?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    json::parse(text).map_err(|e| (400, api::error_body(&e.to_string()), None))
}

/// Dispatches one request; returns `(status, body, retry_after)`.
fn route(
    request: &http::Request,
    manager: &SessionManager<'_>,
    metrics: Option<&Metrics>,
) -> Reply {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => (200, health_body(), None),
        ("GET", ["metrics"]) => match metrics {
            // The session gauges are a point-in-time census taken at
            // scrape time under the shard locks — they can never drift
            // from the manager's actual occupancy.
            Some(reg) => (
                200,
                reg.encode(&manager.census(), Some(&manager.kernel_stats())),
                None,
            ),
            None => (404, api::error_body("metrics not enabled"), None),
        },
        ("GET", ["v1", "datasets"]) => {
            let datasets: Vec<Json> = manager
                .registry()
                .entries()
                .iter()
                .map(|entry| {
                    Json::obj(vec![
                        ("name", Json::str(&entry.name)),
                        ("triples", Json::int(entry.kg.num_triples())),
                        ("clusters", Json::int(u64::from(entry.kg.num_clusters()))),
                        (
                            "strata",
                            entry
                                .stratification
                                .as_ref()
                                .map_or(Json::Null, |s| Json::int(u64::from(s.num_strata()))),
                        ),
                    ])
                })
                .collect();
            (
                200,
                Json::obj(vec![("datasets", Json::Arr(datasets))]).encode(),
                None,
            )
        }
        ("GET", ["v1", "sessions"]) => match manager.list() {
            Ok(views) => (
                200,
                Json::obj(vec![(
                    "sessions",
                    Json::Arr(views.iter().map(view_to_json).collect()),
                )])
                .encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions"]) => {
            let body = match parse_body(&request.body) {
                Ok(body) => body,
                Err(err) => return err,
            };
            let spec = match api::SessionSpec::from_json(&body) {
                Ok(spec) => spec,
                Err(e) => return (400, api::error_body(&e.to_string()), None),
            };
            match manager.create(&spec) {
                Ok(view) => (201, view_body(&view), None),
                Err(e) => error_response(&e),
            }
        }
        ("GET", ["v1", "sessions", id]) => match manager.status(id) {
            Ok(view) => (200, view_body(&view), None),
            Err(e) => error_response(&e),
        },
        ("DELETE", ["v1", "sessions", id]) => match manager.delete(id) {
            Ok(()) => (
                200,
                Json::obj(vec![("deleted", Json::str(id))]).encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions", id, "next"]) => {
            let body = match parse_body(&request.body) {
                Ok(body) => body,
                Err(err) => return err,
            };
            let batch = match body.get("batch") {
                None | Some(Json::Null) => 1,
                Some(field) => match field.as_u64() {
                    Some(batch) => batch,
                    None => {
                        return (
                            400,
                            api::error_body("\"batch\" must be a non-negative integer"),
                            None,
                        )
                    }
                },
            };
            match manager.next_request(id, batch) {
                Ok((request, view)) => {
                    let stratum =
                        view.pending_stratum
                            .as_ref()
                            .map(|(index, name)| api::WireStratum {
                                index: *index,
                                name: name.clone(),
                            });
                    let mut doc =
                        api::request_to_json(request.as_ref(), view.pending_seq, stratum.as_ref());
                    doc.set("session", view_to_json(&view));
                    (200, doc.encode(), None)
                }
                Err(e) => error_response(&e),
            }
        }
        ("POST", ["v1", "sessions", id, "labels"]) => {
            let body = match parse_body(&request.body) {
                Ok(body) => body,
                Err(err) => return err,
            };
            let (labels, seq) = match api::labels_from_json(&body) {
                Ok(decoded) => decoded,
                Err(e) => return (400, api::error_body(&e.to_string()), None),
            };
            match manager.submit(id, &labels, seq) {
                Ok(view) => (200, view_body(&view), None),
                Err(e) => error_response(&e),
            }
        }
        ("POST", ["v1", "sessions", id, "suspend"]) => match manager.suspend(id) {
            Ok(view) => (200, view_body(&view), None),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions", id, "resume"]) => match manager.resume(id) {
            Ok(view) => (200, view_body(&view), None),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions", id, "evict"]) => match manager.evict(id) {
            Ok(()) => (
                200,
                Json::obj(vec![("evicted", Json::str(id))]).encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        ("POST", ["v1", "sessions", id, "deltas"]) => {
            let body = match parse_body(&request.body) {
                Ok(body) => body,
                Err(err) => return err,
            };
            let batch = match api::delta_batch_from_json(&body) {
                Ok(batch) => batch,
                Err(e) => return (400, api::error_body(&e.to_string()), None),
            };
            match manager.apply_deltas(id, &batch) {
                Ok((outcome, view)) => {
                    let mut doc = api::delta_outcome_to_json(&outcome);
                    doc.set("session", view_to_json(&view));
                    (200, doc.encode(), None)
                }
                Err(e) => error_response(&e),
            }
        }
        ("GET", ["v1", "sessions", id, "snapshot"]) => match manager.snapshot_bytes(id) {
            Ok(bytes) => (
                200,
                Json::obj(vec![
                    ("bytes", Json::int(bytes.len() as u64)),
                    ("hex", Json::Str(to_hex(&bytes))),
                ])
                .encode(),
                None,
            ),
            Err(e) => error_response(&e),
        },
        _ => (404, api::error_body("no such route"), None),
    }
}
