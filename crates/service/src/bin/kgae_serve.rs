//! `kgae-serve`: boots the session service over the standard datasets.
//!
//! ```text
//! kgae-serve [--addr HOST:PORT] [--workers N] [--shards N]
//!            [--idle-timeout SECS] [--store-dir PATH] [--port-file PATH]
//!            [--max-sessions N] [--max-per-tenant N] [--retry-after S]
//!            [--metrics on|off] [--log-format json|text]
//!            [--log-level off|error|warn|info]
//!            [--janitor-tick SECS] [--janitor-ttl SECS]
//!            [--janitor-grace SECS] [--fault SPEC]
//! kgae-serve --version
//! ```
//!
//! * `--addr` — bind address; port 0 picks an ephemeral port
//!   (default `127.0.0.1:7707`).
//! * `--workers` — request-executor threads. Connections are
//!   multiplexed on a readiness reactor and cost no thread while idle,
//!   so this bounds *in-flight requests*, not clients — thousands of
//!   keep-alive connections are fine with a handful of workers
//!   (default: available parallelism, at least 4). Connection capacity
//!   is bounded by the fd limit instead; raise `ulimit -n` for large
//!   fleets.
//! * `--idle-timeout` — seconds without transport progress before the
//!   reactor reaps a connection (default 30).
//! * `--shards` — session-registry lock stripes (default 16).
//! * `--store-dir` — snapshot-store directory (default `kgae-store`).
//!   On startup the store runs its crash-recovery sweep: orphaned
//!   temp files are finished or discarded, and corrupt records are
//!   quarantined (logged below) instead of wedging the boot.
//! * `--port-file` — write the bound port (decimal, newline) to this
//!   path once listening; lets scripts coordinate with port 0.
//! * `--max-sessions` / `--max-per-tenant` — session quota ceilings
//!   (unlimited when omitted); a full quota answers 429 with a
//!   `Retry-After` of `--retry-after` seconds (default 1).
//! * `--metrics` — the observability registry behind `GET /metrics`
//!   (Prometheus text format; default `on`). `off` removes the route
//!   (404) and every recording site.
//! * `--log-format` / `--log-level` — structured per-request logs on
//!   stderr: one JSON (or text) line per executed request with route,
//!   tenant, session, status, bytes, latency and worker id. The level
//!   floor derives from the response status (5xx=error, 4xx=warn,
//!   else info); default `json` at `warn`, `--log-level off` disables
//!   request logging entirely.
//! * `--janitor-tick` — seconds between background maintenance passes
//!   (default 30; `0` disables the janitor). Each pass garbage-collects
//!   stale temp files, orphaned snapshots and compactable finished
//!   records from the store directory, and — with `--janitor-ttl N` —
//!   suspends sessions idle for N seconds to disk and evicts
//!   already-suspended idle ones from memory (off by default).
//!   `--janitor-grace` is the minimum file age before GC touches a
//!   file (default 60).
//! * `--fault` — deterministic failpoint spec (also read from the
//!   `KGAE_FAULT` env var); only honored by builds with the
//!   `fault-injection` feature, rejected loudly otherwise.
//! * `--version` — print `kgae-serve <semver>` and exit; the same
//!   build info a running server reports on `GET /healthz`.
//!
//! On SIGTERM/SIGINT (Unix) the server drains instead of dying:
//! creates answer 503, in-flight requests finish, every live session
//! is suspended to the store, and the process exits 0 — restarting
//! over the same `--store-dir` resumes every campaign bit-identically.
//!
//! Exits non-zero on any startup failure.

use kgae_service::{
    DatasetRegistry, Janitor, JanitorConfig, LogFormat, LogLevel, ManagerLimits, Metrics,
    RequestLog, Server, SessionManager, SnapshotStore,
};
use std::sync::Arc;
use std::time::Duration;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(flag: &str) -> Result<Option<T>, String> {
    match arg_value(flag) {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{flag}: not a number: {v:?}")),
    }
}

/// Installs `handler` for SIGTERM and SIGINT via raw `signal(2)` —
/// enough for a single "start draining" flag flip, with no dependency
/// beyond std. No-op off Unix.
#[cfg(unix)]
fn install_shutdown_signals(handler: extern "C" fn(i32)) {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
}

fn run() -> Result<(), String> {
    if std::env::args().any(|a| a == "--version" || a == "-V") {
        println!("kgae-serve {}", kgae_service::server::VERSION);
        return Ok(());
    }
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7707".into());
    let workers = match parse_flag::<usize>("--workers")? {
        Some(v) => v,
        // Workers execute ready requests; connections idle inside the
        // reactor for free — the core count is the right default.
        None => std::thread::available_parallelism()
            .map_or(4, std::num::NonZeroUsize::get)
            .max(4),
    };
    let idle_timeout = parse_flag::<u64>("--idle-timeout")?.map(std::time::Duration::from_secs);
    let shards = parse_flag::<usize>("--shards")?.unwrap_or(16);
    let store_dir = arg_value("--store-dir").unwrap_or_else(|| "kgae-store".into());
    let limits = ManagerLimits {
        max_sessions_per_tenant: parse_flag("--max-per-tenant")?,
        max_total_sessions: parse_flag("--max-sessions")?,
        retry_after_secs: parse_flag("--retry-after")?.unwrap_or(1),
    };
    let metrics_on = match arg_value("--metrics").as_deref() {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--metrics: expected on|off, got {other:?}")),
    };
    let log_format = match arg_value("--log-format") {
        None => LogFormat::Json,
        Some(name) => LogFormat::from_name(&name)
            .ok_or_else(|| format!("--log-format: expected json|text, got {name:?}"))?,
    };
    let log_level = match arg_value("--log-level") {
        None => LogLevel::Warn,
        Some(name) => LogLevel::from_name(&name)
            .ok_or_else(|| format!("--log-level: expected off|error|warn|info, got {name:?}"))?,
    };
    let janitor_tick = parse_flag::<u64>("--janitor-tick")?.unwrap_or(30);
    let janitor_ttl = parse_flag::<u64>("--janitor-ttl")?;
    let janitor_grace = parse_flag::<u64>("--janitor-grace")?.unwrap_or(60);

    // Failpoints: --fault wins over KGAE_FAULT; both error out loudly
    // on builds compiled without the fault-injection feature.
    match arg_value("--fault") {
        Some(spec) => kgae_service::fault::configure(&spec).map_err(|e| format!("--fault: {e}"))?,
        None => {
            kgae_service::fault::configure_from_env().map_err(|e| format!("KGAE_FAULT: {e}"))?
        }
    }
    if kgae_service::fault::enabled() {
        eprintln!("kgae-serve: FAULT INJECTION ACTIVE — this build is for crash testing");
    }

    eprintln!("kgae-serve: generating the standard datasets...");
    let registry = DatasetRegistry::standard();
    let store =
        SnapshotStore::open(&store_dir).map_err(|e| format!("opening store {store_dir:?}: {e}"))?;
    let recovery = store.recovery_report();
    if !recovery.is_clean() {
        for id in &recovery.promoted {
            eprintln!("kgae-serve: recovery: promoted orphaned temp file for {id:?}");
        }
        for name in &recovery.discarded {
            eprintln!("kgae-serve: recovery: discarded incomplete temp file {name:?}");
        }
        for (id, reason) in &recovery.quarantined {
            eprintln!("kgae-serve: recovery: quarantined {id:?}: {reason}");
        }
    }
    if !recovery.recovered.is_empty() {
        eprintln!(
            "kgae-serve: recovery: {} stored session(s) ready to resume",
            recovery.recovered.len()
        );
    }
    let mut manager = SessionManager::with_limits(&registry, store, shards, limits);
    let metrics = metrics_on.then(|| Arc::new(Metrics::new()));
    if let Some(registry) = &metrics {
        manager.set_metrics(Arc::clone(registry));
    }
    let manager = manager;

    let mut server = Server::bind(&addr, workers).map_err(|e| format!("binding {addr:?}: {e}"))?;
    if let Some(timeout) = idle_timeout {
        server = server.with_idle_timeout(timeout);
    }
    if let Some(registry) = &metrics {
        server = server.with_metrics(Arc::clone(registry));
    }
    if log_level != LogLevel::Off {
        server = server.with_request_log(Arc::new(RequestLog::new(log_format, log_level)));
    }
    let local = server
        .local_addr()
        .map_err(|e| format!("reading bound address: {e}"))?;
    #[cfg(unix)]
    {
        // The handler can only do async-signal-safe work — an atomic
        // store and one write(2) to the reactor's waker — so it parks
        // the handle in a global the extern "C" fn can reach.
        static HANDLE: std::sync::OnceLock<kgae_service::ServerHandle> = std::sync::OnceLock::new();
        extern "C" fn on_shutdown_signal(_sig: i32) {
            if let Some(handle) = HANDLE.get() {
                handle.shutdown();
            }
        }
        let handle = server
            .handle()
            .map_err(|e| format!("creating shutdown handle: {e}"))?;
        if HANDLE.set(handle).is_ok() {
            install_shutdown_signals(on_shutdown_signal);
        }
    }
    if let Some(port_file) = arg_value("--port-file") {
        std::fs::write(&port_file, format!("{}\n", local.port()))
            .map_err(|e| format!("writing {port_file:?}: {e}"))?;
    }
    eprintln!(
        "kgae-serve: listening on http://{local} ({workers} workers, {shards} shards, \
         store {store_dir:?})"
    );
    let janitor = (janitor_tick > 0).then(|| {
        let config = JanitorConfig {
            tick: Duration::from_secs(janitor_tick),
            idle_ttl: janitor_ttl.map(Duration::from_secs),
            grace: Duration::from_secs(janitor_grace),
        };
        match &metrics {
            Some(registry) => Janitor::new(config).with_metrics(Arc::clone(registry)),
            None => Janitor::new(config),
        }
    });
    let report = match &janitor {
        Some(janitor) => crossbeam::scope(|scope| {
            let stopper = janitor.handle();
            let ticking = scope.spawn(|_| janitor.run(&manager));
            let report = server.run(&manager);
            stopper.stop();
            ticking.join().expect("janitor thread");
            report
        })
        .expect("janitor scope"),
        None => server.run(&manager),
    };
    eprintln!(
        "kgae-serve: drained — {} suspended ({} mid-batch), {} finished persisted",
        report.suspended.len(),
        report.cancelled.len(),
        report.finished.len()
    );
    if !report.is_clean() {
        for (id, reason) in &report.failed {
            eprintln!("kgae-serve: drain FAILED for {id:?}: {reason}");
        }
        return Err("drain left unsaved sessions".into());
    }
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("kgae-serve: {message}");
        std::process::exit(1);
    }
}
