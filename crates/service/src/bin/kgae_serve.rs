//! `kgae-serve`: boots the session service over the standard datasets.
//!
//! ```text
//! kgae-serve [--addr HOST:PORT] [--workers N] [--shards N]
//!            [--store-dir PATH] [--port-file PATH]
//! kgae-serve --version
//! ```
//!
//! * `--addr` — bind address; port 0 picks an ephemeral port
//!   (default `127.0.0.1:7707`).
//! * `--workers` — connection-handler threads; each owns one keep-alive
//!   connection, so this bounds simultaneous clients (default:
//!   8 × available parallelism, at least 32).
//! * `--shards` — session-registry lock stripes (default 16).
//! * `--store-dir` — snapshot-store directory (default `kgae-store`).
//! * `--port-file` — write the bound port (decimal, newline) to this
//!   path once listening; lets scripts coordinate with port 0.
//! * `--version` — print `kgae-serve <semver>` and exit; the same
//!   build info a running server reports on `GET /healthz`.
//!
//! Exits non-zero on any startup failure.

use kgae_service::{DatasetRegistry, Server, SessionManager, SnapshotStore};

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run() -> Result<(), String> {
    if std::env::args().any(|a| a == "--version" || a == "-V") {
        println!("kgae-serve {}", kgae_service::server::VERSION);
        return Ok(());
    }
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7707".into());
    let workers = match arg_value("--workers") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--workers: not a number: {v:?}"))?,
        // A worker owns one keep-alive connection for its lifetime, so
        // the count bounds simultaneous clients, not request rate —
        // default well above the core count.
        None => std::thread::available_parallelism()
            .map_or(4, std::num::NonZeroUsize::get)
            .saturating_mul(8)
            .max(32),
    };
    let shards = match arg_value("--shards") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--shards: not a number: {v:?}"))?,
        None => 16,
    };
    let store_dir = arg_value("--store-dir").unwrap_or_else(|| "kgae-store".into());

    eprintln!("kgae-serve: generating the standard datasets...");
    let registry = DatasetRegistry::standard();
    let store =
        SnapshotStore::open(&store_dir).map_err(|e| format!("opening store {store_dir:?}: {e}"))?;
    let manager = SessionManager::new(&registry, store, shards);

    let server = Server::bind(&addr, workers).map_err(|e| format!("binding {addr:?}: {e}"))?;
    let local = server
        .local_addr()
        .map_err(|e| format!("reading bound address: {e}"))?;
    if let Some(port_file) = arg_value("--port-file") {
        std::fs::write(&port_file, format!("{}\n", local.port()))
            .map_err(|e| format!("writing {port_file:?}: {e}"))?;
    }
    eprintln!(
        "kgae-serve: listening on http://{local} ({workers} workers, {shards} shards, \
         store {store_dir:?})"
    );
    server.run(&manager);
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("kgae-serve: {message}");
        std::process::exit(1);
    }
}
