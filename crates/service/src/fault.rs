//! Deterministic, seeded fault injection for crash-safety testing.
//!
//! A **failpoint** is a named site on a durability-critical path (store
//! writes, the tmp→target rename, connection I/O) where a configured
//! fault fires instead of the real operation. The whole module compiles
//! to inert no-ops unless the `fault-injection` cargo feature is
//! enabled, so production builds carry zero overhead and zero risk of a
//! stray `KGAE_FAULT` taking a server down.
//!
//! With the feature on, faults are configured from a spec string
//! (`kgae-serve --fault SPEC` or the `KGAE_FAULT` environment
//! variable):
//!
//! ```text
//! spec    := entry (";" entry)*
//! entry   := "seed=" u64            global jitter seed (default 0)
//!          | site "=" action
//! action  := kind ("@" prob)?      prob ∈ [0,1], default 1 (always)
//! kind    := "crash"               abort the process at the site
//!          | "torn:" n             persist only the first n bytes, then abort
//!          | "err"                 return an injected I/O error
//!          | "drop"                drop the connection at the site
//! ```
//!
//! Sites currently wired (see [`site`] for the constants):
//!
//! | site              | path                                          |
//! |-------------------|-----------------------------------------------|
//! | `store.meta.write`| meta temp-file write in [`crate::store`]      |
//! | `store.snap.write`| snapshot temp-file write                      |
//! | `store.rename`    | between a completed temp write and its rename |
//! | `store.read`      | loading a stored record                       |
//! | `conn.read`       | server about to act on a decoded request      |
//! | `conn.write`      | server about to write a response              |
//!
//! Probabilistic faults (`@p` with `p < 1`) draw from a per-site
//! xoshiro stream seeded from `seed ^ fnv(site)`, so a given spec
//! produces the same fire/skip sequence at every run — the property
//! that makes fault-load benchmarks reproducible.

/// Canonical failpoint site names.
pub mod site {
    /// Meta temp-file write in the snapshot store.
    pub const STORE_META_WRITE: &str = "store.meta.write";
    /// Snapshot temp-file write in the snapshot store.
    pub const STORE_SNAP_WRITE: &str = "store.snap.write";
    /// Between a completed temp write and its rename.
    pub const STORE_RENAME: &str = "store.rename";
    /// Loading a stored record.
    pub const STORE_READ: &str = "store.read";
    /// Server about to act on a decoded request.
    pub const CONN_READ: &str = "conn.read";
    /// Server about to write a response.
    pub const CONN_WRITE: &str = "conn.write";
}

/// What a firing failpoint does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the process immediately (simulates SIGKILL at the site).
    Crash,
    /// Persist only the first `n` bytes of the write, then abort.
    Torn(usize),
    /// Return an injected `io::Error` from the site.
    Err,
    /// Drop the connection at the site.
    Drop,
}

/// The injected error every `Err` action produces.
#[cfg(feature = "fault-injection")]
#[must_use]
pub fn injected_error() -> std::io::Error {
    std::io::Error::other("injected fault")
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::FaultAction;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;
    use std::sync::Mutex;

    struct Point {
        action: FaultAction,
        prob: f64,
        rng: SmallRng,
    }

    struct Registry {
        points: HashMap<String, Point>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
        REGISTRY.get_or_init(|| {
            Mutex::new(Registry {
                points: HashMap::new(),
            })
        })
    }

    fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn parse_action(text: &str) -> Result<(FaultAction, f64), String> {
        let (kind, prob) = match text.split_once('@') {
            Some((kind, p)) => {
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("fault probability not a number: {p:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability outside [0, 1]: {p}"));
                }
                (kind, p)
            }
            None => (text, 1.0),
        };
        let action = match kind {
            "crash" => FaultAction::Crash,
            "err" => FaultAction::Err,
            "drop" => FaultAction::Drop,
            _ => match kind.strip_prefix("torn:") {
                Some(n) => FaultAction::Torn(
                    n.parse()
                        .map_err(|_| format!("torn byte count not a number: {n:?}"))?,
                ),
                None => return Err(format!("unknown fault kind {kind:?}")),
            },
        };
        Ok((action, prob))
    }

    pub fn configure(spec: &str) -> Result<(), String> {
        let mut seed = 0u64;
        let mut entries = Vec::new();
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((key, value)) = entry.split_once('=') else {
                return Err(format!("fault entry without '=': {entry:?}"));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("fault seed not a number: {value:?}"))?;
            } else {
                entries.push((key.to_string(), parse_action(value)?));
            }
        }
        let mut registry = registry().lock().expect("fault registry lock");
        registry.points.clear();
        for (site, (action, prob)) in entries {
            let rng = SmallRng::seed_from_u64(seed ^ fnv(&site));
            registry.points.insert(site, Point { action, prob, rng });
        }
        Ok(())
    }

    pub fn clear() {
        registry()
            .lock()
            .expect("fault registry lock")
            .points
            .clear();
    }

    pub fn check(site: &str) -> Option<FaultAction> {
        let mut registry = registry().lock().expect("fault registry lock");
        let point = registry.points.get_mut(site)?;
        if point.prob < 1.0 && !point.rng.gen_bool(point.prob) {
            return None;
        }
        Some(point.action)
    }
}

/// Whether this build carries the fault-injection machinery.
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "fault-injection")
}

/// Installs the failpoints a spec string describes, replacing any
/// previous configuration (see the module docs for the grammar).
///
/// # Errors
///
/// A human-readable parse error; or, when the `fault-injection` feature
/// is off, an error for any non-empty spec — a build without the
/// machinery must refuse to pretend it injects faults.
pub fn configure(spec: &str) -> Result<(), String> {
    #[cfg(feature = "fault-injection")]
    {
        imp::configure(spec)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        if spec.trim().is_empty() {
            Ok(())
        } else {
            Err("this build was compiled without the `fault-injection` feature".into())
        }
    }
}

/// Installs failpoints from the `KGAE_FAULT` environment variable, if
/// set.
///
/// # Errors
///
/// As [`configure`].
pub fn configure_from_env() -> Result<(), String> {
    match std::env::var("KGAE_FAULT") {
        Ok(spec) => configure(&spec),
        Err(_) => Ok(()),
    }
}

/// Removes every installed failpoint.
pub fn clear() {
    #[cfg(feature = "fault-injection")]
    imp::clear();
}

/// Running count of failpoints that actually fired, surfaced as
/// `kgae_faults_injected_total` on `/metrics`. Always zero on builds
/// without the `fault-injection` feature.
static INJECTIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many failpoints have fired since the process started.
#[must_use]
pub fn injections() -> u64 {
    INJECTIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Consults the failpoint at `site`: `None` means proceed normally.
/// Always `None` when the `fault-injection` feature is off — the call
/// compiles down to nothing.
#[inline]
#[must_use]
pub fn check(site: &str) -> Option<FaultAction> {
    #[cfg(feature = "fault-injection")]
    {
        let action = imp::check(site);
        if action.is_some() {
            INJECTIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        action
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        None
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trip_and_determinism() {
        configure("seed=7; conn.write=drop@0.5; store.read=err").unwrap();
        assert_eq!(check("store.read"), Some(FaultAction::Err));
        assert_eq!(check("store.rename"), None, "unconfigured site");
        let first: Vec<bool> = (0..64).map(|_| check("conn.write").is_some()).collect();
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
        // Reconfiguring with the same seed replays the same sequence.
        configure("seed=7; conn.write=drop@0.5; store.read=err").unwrap();
        let second: Vec<bool> = (0..64).map(|_| check("conn.write").is_some()).collect();
        assert_eq!(first, second);
        clear();
        assert_eq!(check("store.read"), None);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "store.read",
            "store.read=explode",
            "store.read=err@2",
            "store.read=torn:x",
            "seed=abc",
        ] {
            assert!(configure(bad).is_err(), "{bad:?}");
        }
        clear();
    }
}
