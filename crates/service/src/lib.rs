//! # kgae-service
//!
//! The session service: the poll-based evaluation engine of `kgae-core`
//! turned into a **multi-tenant network server**. Annotation campaigns
//! become named, long-lived sessions hosted behind a std-only HTTP/1.1
//! plus JSON API; idle campaigns spill to disk as binary snapshots and
//! rehydrate lazily — with fingerprint validation and bit-identical
//! evaluation trajectories — when their annotators return.
//!
//! | module | role |
//! |--------|------|
//! | [`manager`] | sharded, lock-striped [`SessionManager`] + dataset registry |
//! | [`store`] | [`SnapshotStore`]: dormant sessions as meta + snapshot files |
//! | [`server`] | server front door, route table, shutdown handle |
//! | [`reactor`] | `poll(2)` readiness event loop, timer wheel, worker dispatch |
//! | [`http`] | minimal HTTP/1.1: blocking reader/writer + resumable parser |
//! | [`json`] | hand-rolled JSON value, encoder and strict parser |
//! | [`api`] | typed DTOs ↔ JSON for every endpoint and meta record |
//! | [`pool`] | fixed-size scoped worker pool (vendored crossbeam pattern) |
//! | [`fault`] | deterministic failpoints (no-ops without `fault-injection`) |
//! | [`metrics`] | atomic metrics registry, Prometheus encoder, request logs |
//! | [`janitor`] | background maintenance: TTL aging, orphan GC, compaction |
//!
//! The `kgae-serve` binary boots the standard dataset registry behind
//! this stack; the `kgae-client` crate speaks the same wire format
//! from the annotator side. The protocol is specified in
//! `docs/WIRE.md`, the snapshot bytes in `docs/SNAPSHOT.md`.
//!
//! The manager is fully usable in-process, without the network front:
//!
//! ```
//! use kgae_service::{DatasetRegistry, SessionManager, SessionSpec, SnapshotStore};
//!
//! let registry = DatasetRegistry::standard();
//! let dir = std::env::temp_dir().join(format!("kgae-doc-mgr-{}", std::process::id()));
//! let manager = SessionManager::new(&registry, SnapshotStore::open(&dir).unwrap(), 4);
//!
//! let spec = SessionSpec::from_json(
//!     &kgae_service::json::parse(
//!         r#"{"id":"doc","dataset":"nell","design":"srs","method":"wilson","seed":1}"#,
//!     )
//!     .unwrap(),
//! )
//! .unwrap();
//! manager.create(&spec).unwrap();
//! let (request, view) = manager.next_request("doc", 4).unwrap();
//! let labels = vec![true; request.unwrap().triples.len()];
//! let view = manager.submit("doc", &labels, view.pending_seq).unwrap();
//! assert_eq!(view.status.observations, 4);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod fault;
pub mod http;
pub mod janitor;
pub mod json;
pub mod manager;
pub mod metrics;
pub mod pool;
pub mod reactor;
pub mod server;
pub mod store;

pub use api::{SessionSpec, StratifySpec};
pub use janitor::{Janitor, JanitorConfig, JanitorHandle, TickReport};
pub use manager::{
    DatasetEntry, DatasetRegistry, DrainReport, ManagerLimits, ServiceError, ServiceResult,
    SessionManager, SessionState, SessionView,
};
pub use metrics::{LogFormat, LogLevel, Metrics, RequestLog};
pub use server::{Server, ServerHandle};
pub use store::{RecoveryReport, SnapshotStore};
