//! # kgae-service
//!
//! The session service: the poll-based evaluation engine of `kgae-core`
//! turned into a **multi-tenant network server**. Annotation campaigns
//! become named, long-lived sessions hosted behind a std-only HTTP/1.1
//! plus JSON API; idle campaigns spill to disk as binary snapshots and
//! rehydrate lazily — with fingerprint validation and bit-identical
//! evaluation trajectories — when their annotators return.
//!
//! | module | role |
//! |--------|------|
//! | [`manager`] | sharded, lock-striped [`SessionManager`] + dataset registry |
//! | [`store`] | [`SnapshotStore`]: dormant sessions as meta + snapshot files |
//! | [`server`] | `TcpListener` accept loop, worker pool, route table |
//! | [`http`] | minimal HTTP/1.1 reader/writer (both directions) |
//! | [`json`] | hand-rolled JSON value, encoder and strict parser |
//! | [`api`] | typed DTOs ↔ JSON for every endpoint and meta record |
//! | [`pool`] | fixed-size scoped worker pool (vendored crossbeam pattern) |
//!
//! The `kgae-serve` binary boots the standard four-dataset registry
//! behind this stack; the `kgae-client` crate speaks the same wire
//! format from the annotator side.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod http;
pub mod json;
pub mod manager;
pub mod pool;
pub mod server;
pub mod store;

pub use api::SessionSpec;
pub use manager::{
    DatasetRegistry, ServiceError, ServiceResult, SessionManager, SessionState, SessionView,
};
pub use server::{Server, ServerHandle};
pub use store::SnapshotStore;
