//! End-to-end lifecycle of the multi-tenant [`SessionManager`]: create
//! → poll/submit → suspend → evict → resume → finish, including the
//! acceptance property that a suspend → evict → resume round trip
//! through the snapshot store is byte-identical and trajectory-neutral.

use kgae_core::{EvalResult, IntervalMethod, StopReason};
use kgae_graph::GroundTruth;
use kgae_service::api::SessionSpec;
use kgae_service::manager::{DatasetRegistry, ServiceError, SessionState};
use kgae_service::{SessionManager, SnapshotStore};
use std::path::PathBuf;

fn temp_store(tag: &str) -> SnapshotStore {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-manager-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotStore::open(dir).unwrap()
}

fn spec(id: &str, dataset: &str, design: &str, seed: u64) -> SessionSpec {
    SessionSpec {
        id: id.into(),
        dataset: dataset.into(),
        design: design.parse().unwrap(),
        method: IntervalMethod::ahpd_default(),
        seed,
        alpha: 0.05,
        epsilon: 0.05,
        max_observations: None,
        stratify: None,
        tenant: None,
    }
}

/// Drives a session to completion through the manager, labeling with
/// the dataset's ground truth; returns its final result.
fn drive(
    manager: &SessionManager<'_>,
    registry: &DatasetRegistry,
    id: &str,
    dataset: &str,
    batch: u64,
) -> (StopReason, EvalResult) {
    let kg = registry.get(dataset).unwrap();
    loop {
        let (request, view) = manager.next_request(id, batch).unwrap();
        let Some(request) = request else { break };
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit(id, &labels, view.pending_seq).unwrap();
    }
    manager.final_result(id).unwrap()
}

#[test]
fn create_drive_finish_across_designs() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("designs"), 4);
    for (i, design) in ["srs", "twcs:3", "wcs", "scs"].iter().enumerate() {
        let id = format!("d{i}");
        manager
            .create(&spec(&id, "nell", design, 42 + i as u64))
            .unwrap();
        let (reason, result) = drive(&manager, &registry, &id, "nell", 16);
        assert_eq!(reason, StopReason::MoeSatisfied, "{design}");
        assert!(result.converged, "{design}");
        assert!(result.interval.moe() <= 0.05 + 1e-12, "{design}");
        let view = manager.status(&id).unwrap();
        assert_eq!(view.state, SessionState::Finished);
        assert_eq!(view.status.stopped, Some(StopReason::MoeSatisfied));
    }
    assert_eq!(manager.list().unwrap().len(), 4);
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

#[test]
fn suspend_evict_resume_is_byte_identical_and_trajectory_neutral() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("roundtrip"), 4);
    let kg = registry.get("nell").unwrap();

    // A straight-through run of the same spec is the reference.
    manager
        .create(&spec("straight", "nell", "twcs:3", 7))
        .unwrap();
    let (_, reference) = drive(&manager, &registry, "straight", "nell", 8);

    // The probe runs three batches, then suspend → evict → resume.
    manager.create(&spec("probe", "nell", "twcs:3", 7)).unwrap();
    for _ in 0..3 {
        let (request, _) = manager.next_request("probe", 8).unwrap();
        let labels: Vec<bool> = request
            .unwrap()
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit("probe", &labels, None).unwrap();
    }
    let view = manager.suspend("probe").unwrap();
    assert_eq!(view.state, SessionState::Suspended);
    assert!(view.snapshot_bytes.unwrap() > 0);
    let before = manager.snapshot_bytes("probe").unwrap();

    manager.evict("probe").unwrap();
    assert_eq!(
        manager.status("probe").unwrap().state,
        SessionState::Evicted
    );
    // Evicted: zero in-memory state, snapshot still readable.
    assert_eq!(manager.snapshot_bytes("probe").unwrap(), before);

    let view = manager.resume("probe").unwrap();
    assert_eq!(view.state, SessionState::Running);
    // Re-suspending the resumed session reproduces the exact bytes: the
    // disk round trip lost nothing.
    manager.suspend("probe").unwrap();
    let after = manager.snapshot_bytes("probe").unwrap();
    assert_eq!(before, after, "snapshot bytes changed across evict/resume");

    manager.resume("probe").unwrap();
    let (_, interrupted) = drive(&manager, &registry, "probe", "nell", 8);
    assert_eq!(
        reference, interrupted,
        "suspend/evict/resume changed the trajectory"
    );
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

#[test]
fn finished_sessions_survive_eviction_with_their_results() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("finished"), 2);
    manager.create(&spec("done", "yago", "srs", 3)).unwrap();
    let (reason, result) = drive(&manager, &registry, "done", "yago", 32);
    manager.evict("done").unwrap();
    let view = manager.status("done").unwrap();
    assert_eq!(view.state, SessionState::Evicted);
    assert_eq!(view.status.stopped, Some(reason));
    // The result is reloadable from the meta record alone.
    let (reason2, result2) = manager.final_result("done").unwrap();
    assert_eq!(reason, reason2);
    assert_eq!(result, result2);
    // Resume brings it back as a Finished slot, and polls report done.
    manager.resume("done").unwrap();
    assert_eq!(
        manager.status("done").unwrap().state,
        SessionState::Finished
    );
    let (request, view) = manager.next_request("done", 4).unwrap();
    assert!(request.is_none());
    assert_eq!(view.state, SessionState::Finished);
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

#[test]
fn repolls_are_idempotent_and_stale_submits_are_fenced() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("fencing"), 2);
    let kg = registry.get("nell").unwrap();
    manager.create(&spec("f", "nell", "srs", 5)).unwrap();

    // Re-polling with labels owed re-serves the identical batch (an
    // annotator that lost the response can recover), at the same seq.
    let (first, view1) = manager.next_request("f", 4).unwrap();
    let first = first.unwrap();
    let seq1 = view1.pending_seq.unwrap();
    let (again, view2) = manager.next_request("f", 9).unwrap();
    let again = again.unwrap();
    assert_eq!(first.triples, again.triples, "re-poll changed the batch");
    assert_eq!(view2.pending_seq, Some(seq1));

    let labels: Vec<bool> = first
        .triples
        .iter()
        .map(|st| kg.is_correct(st.triple))
        .collect();
    // A wrong seq is rejected before touching the engine.
    assert!(matches!(
        manager.submit("f", &labels, Some(seq1 + 1)),
        Err(ServiceError::StaleRequest(_))
    ));
    manager.submit("f", &labels, Some(seq1)).unwrap();
    // Replaying the same submit after the batch advanced is fenced off
    // — stale labels can never land on a newer batch.
    let (_next, view3) = manager.next_request("f", 4).unwrap();
    assert_ne!(view3.pending_seq, Some(seq1), "seq must advance");
    assert!(matches!(
        manager.submit("f", &labels, Some(seq1)),
        Err(ServiceError::StaleRequest(_))
    ));

    // Absurd batch sizes are clamped, not chased forever.
    manager.create(&spec("clamp", "nell", "wcs", 6)).unwrap();
    let (request, _) = manager.next_request("clamp", u64::MAX).unwrap();
    assert!(request.unwrap().units <= kgae_service::manager::MAX_BATCH_UNITS);
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

fn stratified_spec(id: &str, design: &str, seed: u64) -> SessionSpec {
    SessionSpec {
        epsilon: 0.04,
        ..spec(id, "nell-pred", design, seed)
    }
}

#[test]
fn stratified_campaigns_run_report_rows_and_round_trip_snapshots() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("stratified"), 4);
    let kg = registry.get("nell-pred").unwrap();

    // Straight-through reference run.
    manager
        .create(&stratified_spec("straight", "stratified", 11))
        .unwrap();
    let (reason, reference) = drive(&manager, &registry, "straight", "nell-pred", 8);
    assert_eq!(reason, StopReason::MoeSatisfied);
    assert!(reference.converged);
    let view = manager.status("straight").unwrap();
    assert_eq!(view.design, "stratified:width-greedy");
    let strata = view.strata.as_ref().expect("stratified view has rows");
    assert_eq!(strata.len(), 8);
    assert_eq!(strata[0].name, "athleteplaysforteam");
    let weight_sum: f64 = strata.iter().map(|r| r.weight).sum();
    assert!((weight_sum - 1.0).abs() < 1e-12);
    // The pooled point estimate is exactly the weighted fold of the
    // per-stratum estimates — through the whole service stack.
    let manual = strata.iter().fold(0.0_f64, |acc, r| {
        acc + r.weight * r.status.estimate.unwrap()
    });
    assert_eq!(view.status.estimate.unwrap().to_bits(), manual.to_bits());

    // Probe: a few batches, then the suspend → evict → resume loop.
    manager
        .create(&stratified_spec("probe", "stratified", 11))
        .unwrap();
    for _ in 0..3 {
        let (request, view) = manager.next_request("probe", 8).unwrap();
        let request = request.unwrap();
        // The poll is addressed to a stratum and the view names it.
        let (index, name) = view.pending_stratum.clone().expect("stratified poll");
        assert_eq!(
            registry.stratification("nell-pred").unwrap().name(index),
            name
        );
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit("probe", &labels, view.pending_seq).unwrap();
    }
    manager.suspend("probe").unwrap();
    let before = manager.snapshot_bytes("probe").unwrap();
    manager.evict("probe").unwrap();
    let evicted = manager.status("probe").unwrap();
    assert_eq!(evicted.state, SessionState::Evicted);
    // Dormant stratified sessions keep their rows in the meta record.
    assert_eq!(evicted.strata.as_ref().unwrap().len(), 8);
    manager.resume("probe").unwrap();
    manager.suspend("probe").unwrap();
    let after = manager.snapshot_bytes("probe").unwrap();
    assert_eq!(
        before, after,
        "stratified suspend→evict→resume round trip must be byte-identical"
    );
    manager.resume("probe").unwrap();
    let (_, interrupted) = drive(&manager, &registry, "probe", "nell-pred", 8);
    assert_eq!(
        reference, interrupted,
        "suspend/evict/resume changed the stratified trajectory"
    );

    // Finished stratified results survive eviction, rows included.
    manager.evict("straight").unwrap();
    let view = manager.status("straight").unwrap();
    assert_eq!(view.status.stopped, Some(StopReason::MoeSatisfied));
    assert_eq!(view.strata.as_ref().unwrap().len(), 8);
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

#[test]
fn stratified_hash_mode_works_on_any_dataset_and_bad_specs_are_typed() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("strat-hash"), 2);
    let kg = registry.get("yago").unwrap();

    // Hash partition over a dataset without predicate structure.
    let hash_spec = SessionSpec {
        stratify: Some(kgae_service::StratifySpec::Hash { strata: 4, seed: 9 }),
        ..spec("h", "yago", "stratified:equal", 21)
    };
    manager.create(&hash_spec).unwrap();
    let (reason, result) = drive(&manager, &registry, "h", "yago", 16);
    assert_eq!(reason, StopReason::MoeSatisfied);
    assert!(result.converged);
    let view = manager.status("h").unwrap();
    assert_eq!(view.design, "stratified:equal");
    assert_eq!(view.strata.as_ref().unwrap().len(), 4);
    // Equal allocation: converged per-stratum counts stay balanced.
    let counts: Vec<u64> = view
        .strata
        .as_ref()
        .unwrap()
        .iter()
        .map(|r| r.status.observations)
        .collect();
    let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
    assert!(max - min <= 16, "equal allocation drifted: {counts:?}");
    let _ = kg;

    // Predicate mode on a dataset without a built-in partition → 400.
    assert!(matches!(
        manager.create(&spec("bad", "yago", "stratified", 1)),
        Err(ServiceError::BadRequest(_))
    ));
    // Absurd hash stratum counts → 400.
    let absurd = SessionSpec {
        stratify: Some(kgae_service::StratifySpec::Hash {
            strata: 2_000_000,
            seed: 0,
        }),
        ..spec("bad2", "yago", "stratified", 1)
    };
    assert!(matches!(
        manager.create(&absurd),
        Err(ServiceError::BadRequest(_))
    ));
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

#[test]
fn comparative_campaigns_report_method_rows_and_round_trip_snapshots() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("comparative"), 4);
    let kg = registry.get("nell").unwrap();

    // The straight-through reference: a plain aHPD/SRS session of the
    // same seed (the comparative primary must match it bit for bit).
    manager.create(&spec("solo", "nell", "srs", 23)).unwrap();
    let (_, solo) = drive(&manager, &registry, "solo", "nell", 16);

    manager
        .create(&spec("race", "nell", "compare:ahpd", 23))
        .unwrap();
    let view = manager.status("race").unwrap();
    assert_eq!(view.design, "compare:ahpd");
    let rows = view.methods.as_ref().expect("comparative rows");
    assert_eq!(rows.len(), 4);
    assert!(rows[3].primary);

    // Drive with a mid-flight suspend → evict → resume byte-identity
    // check through the unified engine path.
    let mut units = 0u64;
    loop {
        let (request, view) = manager.next_request("race", 16).unwrap();
        let Some(request) = request else { break };
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit("race", &labels, view.pending_seq).unwrap();
        units += 1;
        if units == 25 {
            manager.suspend("race").unwrap();
            let before = manager.snapshot_bytes("race").unwrap();
            manager.evict("race").unwrap();
            manager.resume("race").unwrap();
            manager.suspend("race").unwrap();
            let after = manager.snapshot_bytes("race").unwrap();
            assert_eq!(before, after, "comparative snapshot bytes diverged");
            manager.resume("race").unwrap();
        }
    }
    let (reason, result) = manager.final_result("race").unwrap();
    assert_eq!(reason, StopReason::MoeSatisfied);
    assert_eq!(result, solo, "primary diverged from the standalone run");

    // Finished comparative sessions keep their method rows across
    // eviction (meta-only record).
    manager.evict("race").unwrap();
    let view = manager.status("race").unwrap();
    assert_eq!(view.state, SessionState::Evicted);
    let rows = view.methods.as_ref().expect("rows survive eviction");
    assert_eq!(rows.len(), 4);
    assert!(rows[3].converged && rows[3].stopped_at == Some(result.observations));

    // A comparative spec whose method field disagrees with the design's
    // primary is a typed 400, not a silent override.
    let mut bad = spec("bad", "nell", "compare:wald", 1);
    bad.method = IntervalMethod::ahpd_default();
    assert!(matches!(
        manager.create(&bad),
        Err(ServiceError::BadRequest(_))
    ));
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

#[test]
fn error_paths_are_typed() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("errors"), 2);

    assert!(matches!(
        manager.status("ghost"),
        Err(ServiceError::UnknownSession(_))
    ));
    assert!(matches!(
        manager.create(&spec("bad id!", "nell", "srs", 1)),
        Err(ServiceError::InvalidId(_))
    ));
    assert!(matches!(
        manager.create(&spec("s", "wikidata", "srs", 1)),
        Err(ServiceError::UnknownDataset(_))
    ));

    manager.create(&spec("s", "nell", "srs", 1)).unwrap();
    assert!(matches!(
        manager.create(&spec("s", "nell", "srs", 2)),
        Err(ServiceError::SessionExists(_))
    ));

    // Outstanding request blocks suspend/evict and snapshot export.
    let (request, _) = manager.next_request("s", 4).unwrap();
    let expected = request.unwrap().triples.len();
    assert!(matches!(
        manager.suspend("s"),
        Err(ServiceError::RequestOutstanding(_))
    ));
    assert!(matches!(
        manager.evict("s"),
        Err(ServiceError::RequestOutstanding(_))
    ));
    assert!(matches!(
        manager.snapshot_bytes("s"),
        Err(ServiceError::NotSuspended(_))
    ));
    // Wrong label count is a 409-class engine error.
    assert!(matches!(
        manager.submit("s", &[true], None),
        Err(ServiceError::Session(_))
    ));
    manager.submit("s", &vec![true; expected], None).unwrap();
    assert!(matches!(
        manager.final_result("s"),
        Err(ServiceError::BadRequest(_))
    ));

    manager.delete("s").unwrap();
    assert!(matches!(
        manager.delete("s"),
        Err(ServiceError::UnknownSession(_))
    ));
    let _ = std::fs::remove_dir_all(manager.store().dir());
}
