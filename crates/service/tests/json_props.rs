//! Property coverage for the hand-rolled `json` module: generative
//! encode → parse round trips (values and documents), encoder
//! idempotence, and a gauntlet of malformed inputs that must come back
//! as positioned errors — never panics, never stack overflows.

use kgae_service::json::{self, Json, MAX_DEPTH};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A random JSON value with bounded depth/size. Strings exercise
/// escapes, surrogate-pair astral characters and embedded controls;
/// numbers exercise integers, negatives and fractional doubles.
fn random_value(rng: &mut SmallRng, depth: usize) -> Json {
    let leaf_only = depth >= 6;
    match rng.gen_range(0..if leaf_only { 4u64 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => {
            // Mix exact integers and arbitrary finite doubles.
            if rng.gen_bool(0.5) {
                Json::int(rng.gen_range(0..1u64 << 53))
            } else {
                let v = (rng.next_f64() - 0.5) * 1e9;
                Json::Num(v)
            }
        }
        3 => {
            let len = rng.gen_range(0..12u64);
            let s: String = (0..len)
                .map(|_| match rng.gen_range(0..8u64) {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\u{1}',
                    4 => '🤖',
                    5 => 'é',
                    _ => char::from(rng.gen_range(32..127u8)),
                })
                .collect();
            Json::Str(s)
        }
        4 => {
            let len = rng.gen_range(0..5u64);
            Json::Arr((0..len).map(|_| random_value(rng, depth + 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..5u64);
            Json::Obj(
                (0..len)
                    .map(|i| (format!("k{i}"), random_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn encode_parse_round_trips_500_random_documents() {
    let mut rng = SmallRng::seed_from_u64(0x15D0);
    for case in 0..500 {
        let value = random_value(&mut rng, 0);
        let encoded = value.encode();
        let parsed = json::parse(&encoded)
            .unwrap_or_else(|e| panic!("case {case}: {e}\ndocument: {encoded}"));
        assert_eq!(parsed, value, "case {case} changed across the round trip");
        // Encoding is canonical: a second trip is byte-identical.
        assert_eq!(parsed.encode(), encoded, "case {case} not canonical");
    }
}

#[test]
fn float_round_trips_are_bit_exact() {
    let mut rng = SmallRng::seed_from_u64(0xF10A7);
    for _ in 0..2000 {
        // Finite doubles across the whole exponent range.
        let bits = rng.next_u64();
        let v = f64::from_bits(bits);
        if !v.is_finite() {
            continue;
        }
        let doc = Json::Num(v).encode();
        let parsed = json::parse(&doc).unwrap();
        let back = parsed.as_f64().unwrap();
        assert_eq!(
            back.to_bits(),
            v.to_bits(),
            "float {v:e} changed across the round trip ({doc})"
        );
    }
}

#[test]
fn parser_never_panics_on_mutated_documents() {
    let mut rng = SmallRng::seed_from_u64(0xBADF00D);
    let seed_doc = Json::obj(vec![
        ("id", Json::str("load-1")),
        (
            "labels",
            Json::Arr(vec![Json::Bool(true), Json::Bool(false)]),
        ),
        ("alpha", Json::Num(0.05)),
        (
            "nested",
            Json::obj(vec![("x", Json::Arr(vec![Json::Null]))]),
        ),
    ])
    .encode();
    for _ in 0..3000 {
        let mut bytes = seed_doc.clone().into_bytes();
        for _ in 0..rng.gen_range(1..=4u64) {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0..=255u8);
        }
        // Mutations may yield invalid UTF-8 (rejected before parsing)
        // or invalid JSON (a ParseError) — both fine; panics are not.
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = json::parse(text);
        }
    }
}

#[test]
fn truncations_of_a_valid_document_error_cleanly() {
    let doc = Json::obj(vec![
        ("s", Json::str("a\\\"b\u{1F916}")),
        ("n", Json::Num(-12.5e-3)),
        ("a", Json::Arr(vec![Json::int(1), Json::Null])),
    ])
    .encode();
    for cut in 0..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        let prefix = &doc[..cut];
        assert!(
            json::parse(prefix).is_err(),
            "truncation at {cut} parsed: {prefix:?}"
        );
    }
}

#[test]
fn malformed_inputs_return_errors_not_panics() {
    let cases: &[&str] = &[
        "",
        "   ",
        "nul",
        "truefalse",
        "tru",
        "[1,]",
        "[1 2]",
        "[,1]",
        "{",
        "}",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{a:1}",
        "{\"a\":1 \"b\":2}",
        "\"unterminated",
        "\"bad escape \\x\"",
        "\"truncated escape \\",
        "\"\\u12\"",
        "\"\\uZZZZ\"",
        "\"\\ud800\"",         // lone high surrogate
        "\"\\udc00\"",         // lone low surrogate
        "\"\\ud800\\u0041\"",  // high surrogate + non-surrogate
        "\"raw\u{1}control\"", // unescaped control byte
        "01",
        "-",
        "1.",
        ".5",
        "+1",
        "--1",
        "1e",
        "1e+",
        "0x10",
        "1e999",  // overflows to infinity — rejected
        "-1e999", // -infinity
        "nan",
        "Infinity",
        "[1] trailing",
        "{} {}",
    ];
    for case in cases {
        let result = json::parse(case);
        assert!(result.is_err(), "{case:?} parsed as {result:?}");
        let err = result.unwrap_err();
        assert!(err.offset <= case.len(), "{case:?}: offset out of range");
    }
}

#[test]
fn deep_nesting_hits_the_cap_not_the_stack() {
    // Far beyond the cap: must error, not overflow the parser stack.
    for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
        let deep = format!("{}null{}", open.repeat(10_000), close.repeat(10_000));
        let err = json::parse(&deep).expect_err("deep nesting must fail");
        assert!(err.msg.contains("MAX_DEPTH"), "unexpected error: {err}");
    }
    // Exactly at the cap: fine.
    let ok = format!("{}null{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    assert!(json::parse(&ok).is_ok());
    let over = format!(
        "{}null{}",
        "[".repeat(MAX_DEPTH + 1),
        "]".repeat(MAX_DEPTH + 1)
    );
    assert!(json::parse(&over).is_err());
}

#[test]
fn duplicate_keys_and_whitespace_are_tolerated_per_grammar() {
    // RFC 8259 leaves duplicate-key semantics to the application; the
    // parser keeps both, `get` returns the first.
    let v = json::parse(" { \"a\" : 1 ,\n\t\"a\" : 2 } ").unwrap();
    assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    let Json::Obj(pairs) = &v else {
        panic!("object")
    };
    assert_eq!(pairs.len(), 2);
}
