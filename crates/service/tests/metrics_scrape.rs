//! End-to-end `/metrics` reconciliation against the **real**
//! `kgae-serve` binary: a known request mix — including a 404, a 409
//! duplicate create, a 409 stale-seq submit, and a 429 over-quota
//! create — is driven between two scrapes, and the counter deltas must
//! match the mix *exactly*. No sampling, no slack: the registry counts
//! a request only after its response bytes exist, so a scrape observes
//! every request except its own and the arithmetic closes.
//!
//! HTTP is spoken through [`kgae_service::http`] directly (the client
//! crate depends on this one, so it cannot be a dev-dependency here).

use kgae_service::http;
use kgae_service::json::{self, Json};
use kgae_service::metrics::LE_LABELS;
use std::collections::BTreeMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-metrics-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned `kgae-serve`; SIGKILLed on drop so a failed assertion
/// never leaks a server process.
struct Serve {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve(store_dir: &Path, tag: &str, extra_args: &[&str]) -> Serve {
    let port_file = std::env::temp_dir().join(format!(
        "kgae-metrics-test-{tag}-{}.port",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_kgae-serve"))
        .args(["--addr", "127.0.0.1:0", "--workers", "4", "--shards", "4"])
        // The janitor is off and logging quiet: this test wants every
        // counter movement to come from its own requests.
        .args(["--janitor-tick", "0", "--log-level", "off"])
        .arg("--store-dir")
        .arg(store_dir)
        .arg("--port-file")
        .arg(&port_file)
        .args(extra_args)
        .env_remove("KGAE_FAULT")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning kgae-serve");
    let mut child = Some(child);
    let deadline = Instant::now() + Duration::from_secs(120);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break format!("127.0.0.1:{port}").parse().unwrap();
            }
        }
        if let Some(status) = child.as_mut().unwrap().try_wait().unwrap() {
            panic!("kgae-serve exited before listening: {status}");
        }
        assert!(Instant::now() < deadline, "kgae-serve never wrote its port");
        std::thread::sleep(Duration::from_millis(50));
    };
    let _ = std::fs::remove_file(&port_file);
    Serve {
        child: child.take().unwrap(),
        addr,
    }
}

/// One JSON request on a fresh connection.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    http::write_request(reader.get_mut(), method, path, body).expect("write");
    let response = http::read_response(&mut reader).expect("read");
    let text = std::str::from_utf8(&response.body).expect("utf-8 body");
    (response.status, json::parse(text).expect("json body"))
}

/// One `/metrics` scrape on a fresh connection, parsed into a
/// `series name (with labels) → value` map.
fn scrape(addr: SocketAddr) -> BTreeMap<String, f64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    http::write_request(reader.get_mut(), "GET", "/metrics", "").expect("write");
    let response = http::read_response(&mut reader).expect("read");
    assert_eq!(response.status, 200, "scrape failed");
    let text = std::str::from_utf8(&response.body).expect("utf-8 exposition");
    parse_exposition(text)
}

fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut series = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value");
        series.insert(name.to_string(), value.parse::<f64>().expect("numeric"));
    }
    series
}

fn at(map: &BTreeMap<String, f64>, key: &str) -> f64 {
    map.get(key).copied().unwrap_or(0.0)
}

fn delta(before: &BTreeMap<String, f64>, after: &BTreeMap<String, f64>, key: &str) -> i64 {
    (at(after, key) - at(before, key)).round() as i64
}

fn create_body(id: &str) -> String {
    Json::obj(vec![
        ("id", Json::str(id)),
        ("dataset", Json::str("nell")),
        ("design", Json::str("srs")),
        ("method", Json::str("wilson")),
        ("seed", Json::int(7)),
    ])
    .encode()
}

/// The tentpole reconciliation: drive a known mix between two scrapes
/// and assert the per-route/per-status counter deltas are *exactly*
/// the mix — plus histogram/count coherence and live session gauges.
#[test]
fn scrape_deltas_reconcile_exactly_with_a_known_request_mix() {
    let dir = temp_dir("mix");
    let serve = spawn_serve(&dir, "mix", &["--max-sessions", "1"]);
    let addr = serve.addr;

    let before = scrape(addr);

    // The mix: each line is one request with a known route and status.
    let (status, _) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _) = call(addr, "POST", "/v1/sessions", &create_body("alpha"));
    assert_eq!(status, 201);
    let (status, _) = call(addr, "POST", "/v1/sessions", &create_body("alpha"));
    assert_eq!(status, 409, "duplicate create");
    let (status, doc) = call(addr, "POST", "/v1/sessions", &create_body("beta"));
    assert_eq!(status, 429, "over quota: {}", doc.encode());
    let (status, _) = call(addr, "GET", "/v1/sessions/ghost", "");
    assert_eq!(status, 404);
    let (status, doc) = call(
        addr,
        "POST",
        "/v1/sessions/alpha/next",
        &Json::obj(vec![("batch", Json::int(4))]).encode(),
    );
    assert_eq!(status, 200);
    let seq = doc.get("seq").and_then(Json::as_u64).expect("seq");
    let count = doc
        .get("triples")
        .and_then(Json::as_arr)
        .expect("triples")
        .len();
    let labels = Json::Arr(vec![Json::Bool(true); count]);
    let stale = Json::obj(vec![
        ("labels", labels.clone()),
        ("seq", Json::int(seq + 7)),
    ])
    .encode();
    let (status, _) = call(addr, "POST", "/v1/sessions/alpha/labels", &stale);
    assert_eq!(status, 409, "stale fencing seq");
    let fresh = Json::obj(vec![("labels", labels), ("seq", Json::int(seq))]).encode();
    let (status, _) = call(addr, "POST", "/v1/sessions/alpha/labels", &fresh);
    assert_eq!(status, 200);
    let (status, _) = call(addr, "GET", "/nope", "");
    assert_eq!(status, 404, "unroutable path");

    let after = scrape(addr);

    // Exact counter deltas, one per line of the mix. The first scrape
    // itself appears (+1 on route=metrics): a scrape is counted once
    // its response exists, so it shows up in the *next* exposition.
    let expected: [(&str, &str, i64); 10] = [
        ("healthz", "200", 1),
        ("metrics", "200", 1),
        ("session_create", "201", 1),
        ("session_create", "409", 1),
        ("session_create", "429", 1),
        ("session_status", "404", 1),
        ("next", "200", 1),
        ("labels", "409", 1),
        ("labels", "200", 1),
        ("other", "404", 1),
    ];
    for (route, status, want) in expected {
        let key = format!("kgae_requests_total{{route=\"{route}\",status=\"{status}\"}}");
        assert_eq!(delta(&before, &after, &key), want, "{key}");
    }
    // Nothing else on those routes moved: total per-route deltas equal
    // the per-status ones, via the histogram count (one observation
    // per request regardless of status).
    let per_route: [(&str, i64); 8] = [
        ("healthz", 1),
        ("metrics", 1),
        ("session_create", 3),
        ("session_status", 1),
        ("next", 1),
        ("labels", 2),
        ("other", 1),
        ("snapshot", 0),
    ];
    for (route, want) in per_route {
        let key = format!("kgae_request_duration_seconds_count{{route=\"{route}\"}}");
        assert_eq!(delta(&before, &after, &key), want, "{key}");
    }
    assert_eq!(
        delta(&before, &after, "kgae_sessions_created_total"),
        1,
        "one session admitted"
    );
    assert_eq!(
        delta(&before, &after, "kgae_quota_refusals_total"),
        1,
        "one 429 refusal"
    );

    // Histogram coherence on every route the mix touched: buckets are
    // cumulative and monotone, the +Inf bucket equals _count, and the
    // sum moved (zero-duration requests still count a nanosecond).
    for (route, requests) in per_route {
        if requests == 0 {
            continue;
        }
        let mut previous = -1.0;
        for le in LE_LABELS {
            let key =
                format!("kgae_request_duration_seconds_bucket{{route=\"{route}\",le=\"{le}\"}}");
            let value = at(&after, &key);
            assert!(
                value >= previous,
                "bucket regression at {key}: {value} < {previous}"
            );
            previous = value;
        }
        let inf = format!("kgae_request_duration_seconds_bucket{{route=\"{route}\",le=\"+Inf\"}}");
        let count = format!("kgae_request_duration_seconds_count{{route=\"{route}\"}}");
        assert_eq!(
            at(&after, &inf),
            at(&after, &count),
            "{route}: +Inf != count"
        );
        let sum = format!("kgae_request_duration_seconds_sum{{route=\"{route}\"}}");
        assert!(at(&after, &sum) > 0.0, "{route}: histogram sum is zero");
        let bytes = format!("kgae_response_bytes_total{{route=\"{route}\"}}");
        assert!(at(&after, &bytes) > 0.0, "{route}: no response bytes");
    }

    // The session gauges are a census at scrape time: exactly one live
    // session (alpha) exists, summed across all shards.
    let live: f64 = after
        .iter()
        .filter(|(k, _)| k.starts_with("kgae_sessions{") && k.contains("state=\"live\""))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(live as i64, 1, "census disagrees with reality");

    drop(serve);
    let _ = std::fs::remove_dir_all(&dir);
}

fn ahpd_create_body(id: &str) -> String {
    Json::obj(vec![
        ("id", Json::str(id)),
        ("dataset", Json::str("nell")),
        ("design", Json::str("srs")),
        ("method", Json::str("ahpd")),
        ("seed", Json::int(7)),
    ])
    .encode()
}

/// Drives the session to convergence over HTTP with all-true labels.
fn drive_to_convergence(addr: SocketAddr, id: &str) {
    loop {
        let (status, doc) = call(
            addr,
            "POST",
            &format!("/v1/sessions/{id}/next"),
            &Json::obj(vec![("batch", Json::int(64))]).encode(),
        );
        assert_eq!(status, 200, "next: {}", doc.encode());
        if doc.get("done").and_then(Json::as_bool).unwrap_or(false) {
            return;
        }
        let seq = doc.get("seq").and_then(Json::as_u64).expect("seq");
        let count = doc
            .get("triples")
            .and_then(Json::as_arr)
            .expect("triples")
            .len();
        let labels = Json::Arr(vec![Json::Bool(true); count]);
        let body = Json::obj(vec![("labels", labels), ("seq", Json::int(seq))]).encode();
        let (status, doc) = call(addr, "POST", &format!("/v1/sessions/{id}/labels"), &body);
        assert_eq!(status, 200, "labels: {}", doc.encode());
    }
}

/// The shared posterior-kernel cache is visible in `/metrics` and its
/// counters reconcile *exactly* after real traffic: an aHPD campaign
/// (the cache's target workload) is driven to convergence, then an
/// identical twin replays the same trajectory so every solve the first
/// campaign inserted is answered from memo. `lookups` is derived as
/// `hits + misses` by construction, and `entries` must equal
/// `insertions - evictions` — no slack on either identity.
#[test]
fn kernel_cache_counters_appear_and_reconcile_after_a_campaign() {
    let dir = temp_dir("kernel");
    let serve = spawn_serve(&dir, "kernel", &[]);
    let addr = serve.addr;

    let (status, doc) = call(addr, "POST", "/v1/sessions", &ahpd_create_body("kernel-a"));
    assert_eq!(status, 201, "{}", doc.encode());
    drive_to_convergence(addr, "kernel-a");
    let (status, doc) = call(addr, "POST", "/v1/sessions", &ahpd_create_body("kernel-b"));
    assert_eq!(status, 201, "{}", doc.encode());
    drive_to_convergence(addr, "kernel-b");

    let after = scrape(addr);
    let lookups = at(&after, "kgae_kernel_cache_lookups_total");
    let hits = at(&after, "kgae_kernel_cache_hits_total");
    let misses = at(&after, "kgae_kernel_cache_misses_total");
    let insertions = at(&after, "kgae_kernel_cache_insertions_total");
    let evictions = at(&after, "kgae_kernel_cache_evictions_total");
    let entries = at(&after, "kgae_kernel_cache_entries");
    assert!(
        lookups > 0.0,
        "an aHPD/SRS campaign must route solves through the kernel cache"
    );
    assert_eq!(
        hits + misses,
        lookups,
        "hits + misses must equal lookups exactly"
    );
    assert_eq!(
        insertions - evictions,
        entries,
        "resident entries must equal insertions - evictions exactly"
    );
    assert!(entries > 0.0, "converged campaigns left no memo entries");
    assert!(
        hits > 0.0,
        "the twin campaign retraced kernel-a's trajectory yet never hit"
    );

    drop(serve);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A successful scrape answers the Prometheus text content type; the
/// JSON routes keep `application/json`.
#[test]
fn scrape_answers_the_prometheus_content_type() {
    let dir = temp_dir("ctype");
    let serve = spawn_serve(&dir, "ctype", &[]);
    let head = raw_head(serve.addr, "GET /metrics HTTP/1.1");
    assert!(
        head.contains("content-type: text/plain; version=0.0.4"),
        "scrape content type missing: {head:?}"
    );
    let head = raw_head(serve.addr, "GET /healthz HTTP/1.1");
    assert!(
        head.contains("content-type: application/json"),
        "healthz content type changed: {head:?}"
    );
    drop(serve);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `--metrics off` the route disappears (404, ordinary JSON error
/// body) and the server still serves everything else.
#[test]
fn metrics_off_removes_the_route() {
    let dir = temp_dir("off");
    let serve = spawn_serve(&dir, "off", &["--metrics", "off"]);
    let (status, doc) = call(serve.addr, "GET", "/metrics", "");
    assert_eq!(status, 404, "{}", doc.encode());
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("metrics not enabled")
    );
    let (status, _) = call(serve.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    drop(serve);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sends one raw request line and returns the response head (status
/// line + headers), lowercased for case-insensitive header matching.
fn raw_head(addr: SocketAddr, request_line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(format!("{request_line}\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read");
    let text = String::from_utf8_lossy(&bytes);
    text.split("\r\n\r\n").next().unwrap_or("").to_lowercase()
}
