//! Concurrency stress: N threads hammer create / next / submit /
//! suspend / resume / evict on overlapping session ids, with randomized
//! batch sizes and interleavings. The manager must neither deadlock nor
//! let the chaos perturb a single session's evaluation trajectory —
//! every final result must be **bit-identical** to a single-threaded
//! batch-1 replay of the same spec (batching and suspension are proven
//! trajectory-neutral, so any divergence here is a concurrency bug).

use kgae_core::{EvalResult, IntervalMethod, StopReason};
use kgae_graph::GroundTruth;
use kgae_service::api::SessionSpec;
use kgae_service::manager::{DatasetRegistry, ServiceError, SessionState};
use kgae_service::{Janitor, JanitorConfig, SessionManager, SnapshotStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

const THREADS: usize = 8;
const SESSIONS: usize = 12;

fn temp_store(tag: &str) -> SnapshotStore {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotStore::open(dir).unwrap()
}

fn specs() -> Vec<SessionSpec> {
    let datasets = ["nell", "yago"];
    let designs = ["srs", "twcs:3"];
    (0..SESSIONS)
        .map(|i| SessionSpec {
            id: format!("stress-{i}"),
            dataset: datasets[i % datasets.len()].into(),
            design: designs[(i / 2) % designs.len()].parse().unwrap(),
            method: IntervalMethod::ahpd_default(),
            seed: 1000 + i as u64,
            alpha: 0.05,
            epsilon: 0.05,
            max_observations: None,
            stratify: None,
            tenant: None,
        })
        .collect()
}

/// One worker: random ops over random sessions until every session is
/// finished. Errors caused by cross-thread interleavings (request
/// outstanding, already finished, ...) are part of the protocol and
/// tolerated; anything else fails the test.
#[allow(clippy::needless_pass_by_value)]
fn worker(
    manager: &SessionManager<'_>,
    registry: &DatasetRegistry,
    specs: &[SessionSpec],
    done: &[AtomicBool],
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut spins = 0u64;
    while !done.iter().all(|d| d.load(Ordering::Relaxed)) {
        spins += 1;
        assert!(spins < 2_000_000, "stress loop failed to converge");
        let i = rng.gen_range(0..specs.len());
        let spec = &specs[i];
        let id = spec.id.as_str();
        let tolerate = |e: &ServiceError| {
            matches!(
                e,
                ServiceError::RequestOutstanding(_)
                    | ServiceError::AlreadyFinished(_)
                    | ServiceError::NotSuspended(_)
                    | ServiceError::StaleRequest(_)
                    | ServiceError::Session(_)
            )
        };
        match rng.gen_range(0..10u64) {
            0 => match manager.suspend(id) {
                Ok(_) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("suspend {id}: {e}"),
            },
            1 => match manager.resume(id) {
                Ok(_) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("resume {id}: {e}"),
            },
            2 => match manager.evict(id) {
                Ok(()) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("evict {id}: {e}"),
            },
            3 => {
                let view = manager.status(id).expect("status");
                if view.state == SessionState::Finished {
                    done[i].store(true, Ordering::Relaxed);
                }
            }
            _ => {
                // Advance: poll a random batch, label it from ground
                // truth, submit. Only the thread holding the request's
                // triples can submit — the protocol serializes writers.
                let batch = rng.gen_range(1..=8u64);
                let (request, view) = match manager.next_request(id, batch) {
                    Ok(outcome) => outcome,
                    Err(e) if tolerate(&e) => continue,
                    Err(e) => panic!("next_request {id}: {e}"),
                };
                let Some(request) = request else {
                    assert_eq!(view.state, SessionState::Finished);
                    done[i].store(true, Ordering::Relaxed);
                    continue;
                };
                let kg = registry.get(&spec.dataset).unwrap();
                let labels: Vec<bool> = request
                    .triples
                    .iter()
                    .map(|st| kg.is_correct(st.triple))
                    .collect();
                let view = match manager.submit(id, &labels, view.pending_seq) {
                    Ok(view) => view,
                    Err(e) if tolerate(&e) => continue,
                    Err(e) => panic!("submit {id}: {e}"),
                };
                if view.state == SessionState::Finished {
                    done[i].store(true, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Single-threaded reference: the same spec driven to completion with
/// batch 1 on a fresh manager.
fn replay(spec: &SessionSpec, registry: &DatasetRegistry) -> (StopReason, EvalResult) {
    let manager = SessionManager::new(registry, temp_store(&format!("replay-{}", spec.id)), 1);
    manager.create(spec).unwrap();
    let kg = registry.get(&spec.dataset).unwrap();
    loop {
        let (request, _) = manager.next_request(&spec.id, 1).unwrap();
        let Some(request) = request else { break };
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit(&spec.id, &labels, None).unwrap();
    }
    let result = manager.final_result(&spec.id).unwrap();
    let _ = std::fs::remove_dir_all(manager.store().dir());
    result
}

#[test]
fn concurrent_chaos_preserves_every_trajectory() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("chaos"), 4);
    let specs = specs();
    for spec in &specs {
        manager.create(spec).unwrap();
    }
    let done: Vec<AtomicBool> = (0..specs.len()).map(|_| AtomicBool::new(false)).collect();

    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let manager = &manager;
            let registry = &registry;
            let specs = &specs;
            let done = &done;
            handles.push(scope.spawn(move |_| {
                worker(manager, registry, specs, done, 0xC0FFEE + t as u64);
            }));
        }
        for handle in handles {
            handle.join().expect("stress worker");
        }
    })
    .expect("stress scope");

    // Every session finished (possibly evicted afterwards, result on
    // disk), and bit-identically to its solo replay.
    for spec in &specs {
        let view = manager.status(&spec.id).unwrap();
        assert!(
            matches!(view.state, SessionState::Finished | SessionState::Evicted),
            "{}: {:?}",
            spec.id,
            view.state
        );
        assert!(view.status.stopped.is_some(), "{}", spec.id);
        let (reason, result) = manager.final_result(&spec.id).unwrap();
        let (ref_reason, ref_result) = replay(spec, &registry);
        assert_eq!(reason, ref_reason, "{}", spec.id);
        assert_eq!(
            result, ref_result,
            "{}: concurrent interleavings changed the final posterior",
            spec.id
        );
    }
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

/// The chaos suite with a hostile janitor in the mix: zero idle TTL and
/// zero grace, ticking as fast as it can, so sessions are aged to disk
/// and evicted from memory *between* worker operations throughout the
/// run. Maintenance must be invisible — every final result stays
/// bit-identical to the single-threaded batch-1 replay.
#[test]
fn janitor_interleaving_preserves_every_trajectory() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("janitor"), 4);
    let specs = specs();
    for spec in &specs {
        manager.create(spec).unwrap();
    }
    let done: Vec<AtomicBool> = (0..specs.len()).map(|_| AtomicBool::new(false)).collect();
    let janitor = Janitor::new(JanitorConfig {
        tick: std::time::Duration::from_millis(1),
        idle_ttl: Some(std::time::Duration::ZERO),
        grace: std::time::Duration::ZERO,
    });
    let stopper = janitor.handle();

    crossbeam::scope(|scope| {
        let ticking = scope.spawn(|_| janitor.run(&manager));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let manager = &manager;
            let registry = &registry;
            let specs = &specs;
            let done = &done;
            handles.push(scope.spawn(move |_| {
                worker(manager, registry, specs, done, 0xBADCAFE + t as u64);
            }));
        }
        for handle in handles {
            handle.join().expect("stress worker");
        }
        stopper.stop();
        ticking.join().expect("janitor thread");
    })
    .expect("stress scope");

    for spec in &specs {
        let view = manager.status(&spec.id).unwrap();
        assert!(
            matches!(view.state, SessionState::Finished | SessionState::Evicted),
            "{}: {:?}",
            spec.id,
            view.state
        );
        let (reason, result) = manager.final_result(&spec.id).unwrap();
        let (ref_reason, ref_result) = replay(spec, &registry);
        assert_eq!(reason, ref_reason, "{}", spec.id);
        assert_eq!(
            result, ref_result,
            "{}: janitor interleavings changed the final posterior",
            spec.id
        );
    }
    let _ = std::fs::remove_dir_all(manager.store().dir());
}
