//! Concurrency stress: N threads hammer create / next / submit /
//! suspend / resume / evict on overlapping session ids, with randomized
//! batch sizes and interleavings. The manager must neither deadlock nor
//! let the chaos perturb a single session's evaluation trajectory —
//! every final result must be **bit-identical** to a single-threaded
//! batch-1 replay of the same spec (batching and suspension are proven
//! trajectory-neutral, so any divergence here is a concurrency bug).

use kgae_core::{DeltaBatch, EvalResult, IntervalMethod, MonitorReport, StopReason};
use kgae_graph::{DeltaKg, GroundTruth};
use kgae_service::api::SessionSpec;
use kgae_service::manager::{DatasetRegistry, ServiceError, SessionState, SessionView};
use kgae_service::{Janitor, JanitorConfig, SessionManager, SnapshotStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

const THREADS: usize = 8;
const SESSIONS: usize = 12;

fn temp_store(tag: &str) -> SnapshotStore {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotStore::open(dir).unwrap()
}

fn specs() -> Vec<SessionSpec> {
    let datasets = ["nell", "yago"];
    let designs = ["srs", "twcs:3"];
    (0..SESSIONS)
        .map(|i| SessionSpec {
            id: format!("stress-{i}"),
            dataset: datasets[i % datasets.len()].into(),
            design: designs[(i / 2) % designs.len()].parse().unwrap(),
            method: IntervalMethod::ahpd_default(),
            seed: 1000 + i as u64,
            alpha: 0.05,
            epsilon: 0.05,
            max_observations: None,
            stratify: None,
            tenant: None,
        })
        .collect()
}

/// One worker: random ops over random sessions until every session is
/// finished. Errors caused by cross-thread interleavings (request
/// outstanding, already finished, ...) are part of the protocol and
/// tolerated; anything else fails the test.
#[allow(clippy::needless_pass_by_value)]
fn worker(
    manager: &SessionManager<'_>,
    registry: &DatasetRegistry,
    specs: &[SessionSpec],
    done: &[AtomicBool],
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut spins = 0u64;
    while !done.iter().all(|d| d.load(Ordering::Relaxed)) {
        spins += 1;
        assert!(spins < 2_000_000, "stress loop failed to converge");
        let i = rng.gen_range(0..specs.len());
        let spec = &specs[i];
        let id = spec.id.as_str();
        let tolerate = |e: &ServiceError| {
            matches!(
                e,
                ServiceError::RequestOutstanding(_)
                    | ServiceError::AlreadyFinished(_)
                    | ServiceError::NotSuspended(_)
                    | ServiceError::StaleRequest(_)
                    | ServiceError::Session(_)
            )
        };
        match rng.gen_range(0..10u64) {
            0 => match manager.suspend(id) {
                Ok(_) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("suspend {id}: {e}"),
            },
            1 => match manager.resume(id) {
                Ok(_) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("resume {id}: {e}"),
            },
            2 => match manager.evict(id) {
                Ok(()) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("evict {id}: {e}"),
            },
            3 => {
                let view = manager.status(id).expect("status");
                if view.state == SessionState::Finished {
                    done[i].store(true, Ordering::Relaxed);
                }
            }
            _ => {
                // Advance: poll a random batch, label it from ground
                // truth, submit. Only the thread holding the request's
                // triples can submit — the protocol serializes writers.
                let batch = rng.gen_range(1..=8u64);
                let (request, view) = match manager.next_request(id, batch) {
                    Ok(outcome) => outcome,
                    Err(e) if tolerate(&e) => continue,
                    Err(e) => panic!("next_request {id}: {e}"),
                };
                let Some(request) = request else {
                    assert_eq!(view.state, SessionState::Finished);
                    done[i].store(true, Ordering::Relaxed);
                    continue;
                };
                let kg = registry.get(&spec.dataset).unwrap();
                let labels: Vec<bool> = request
                    .triples
                    .iter()
                    .map(|st| kg.is_correct(st.triple))
                    .collect();
                let view = match manager.submit(id, &labels, view.pending_seq) {
                    Ok(view) => view,
                    Err(e) if tolerate(&e) => continue,
                    Err(e) => panic!("submit {id}: {e}"),
                };
                if view.state == SessionState::Finished {
                    done[i].store(true, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Single-threaded reference: the same spec driven to completion with
/// batch 1 on a fresh manager.
fn replay(spec: &SessionSpec, registry: &DatasetRegistry) -> (StopReason, EvalResult) {
    let manager = SessionManager::new(registry, temp_store(&format!("replay-{}", spec.id)), 1);
    manager.create(spec).unwrap();
    let kg = registry.get(&spec.dataset).unwrap();
    loop {
        let (request, _) = manager.next_request(&spec.id, 1).unwrap();
        let Some(request) = request else { break };
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit(&spec.id, &labels, None).unwrap();
    }
    let result = manager.final_result(&spec.id).unwrap();
    let _ = std::fs::remove_dir_all(manager.store().dir());
    result
}

#[test]
fn concurrent_chaos_preserves_every_trajectory() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("chaos"), 4);
    let specs = specs();
    for spec in &specs {
        manager.create(spec).unwrap();
    }
    let done: Vec<AtomicBool> = (0..specs.len()).map(|_| AtomicBool::new(false)).collect();

    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let manager = &manager;
            let registry = &registry;
            let specs = &specs;
            let done = &done;
            handles.push(scope.spawn(move |_| {
                worker(manager, registry, specs, done, 0xC0FFEE + t as u64);
            }));
        }
        for handle in handles {
            handle.join().expect("stress worker");
        }
    })
    .expect("stress scope");

    // Every session finished (possibly evicted afterwards, result on
    // disk), and bit-identically to its solo replay.
    for spec in &specs {
        let view = manager.status(&spec.id).unwrap();
        assert!(
            matches!(view.state, SessionState::Finished | SessionState::Evicted),
            "{}: {:?}",
            spec.id,
            view.state
        );
        assert!(view.status.stopped.is_some(), "{}", spec.id);
        let (reason, result) = manager.final_result(&spec.id).unwrap();
        let (ref_reason, ref_result) = replay(spec, &registry);
        assert_eq!(reason, ref_reason, "{}", spec.id);
        assert_eq!(
            result, ref_result,
            "{}: concurrent interleavings changed the final posterior",
            spec.id
        );
    }
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

/// One monitored session under churn: its spec, its predetermined
/// delta schedule, and — behind one mutex — the ground-truth twin view
/// plus the schedule cursor. Deltas are only pushed at *watching*
/// boundaries (the sole state in which a monitor accepts no labels and
/// owes none), so the operation order seen by the engine is exactly
/// `campaign → delta k → campaign → delta k+1 → …` no matter how many
/// threads race: any interleaving must then be bit-identical to the
/// single-threaded replay.
struct MonitorCase<'a> {
    spec: SessionSpec,
    schedule: Vec<DeltaBatch>,
    /// Ground-truth twin (fed the same batches, so view ids resolve
    /// exactly as inside the engine) and the next-delta cursor.
    twin: Mutex<(DeltaKg<'a>, usize)>,
}

fn monitor_schedule(i: usize) -> Vec<DeltaBatch> {
    vec![
        DeltaBatch {
            predicate: Some("churn".into()),
            removes: (0..40 * (i as u64 + 1)).collect(),
            adds: vec![true; 60 * (i + 1)],
        },
        DeltaBatch {
            predicate: Some("bulkLoad".into()),
            removes: vec![],
            adds: vec![i.is_multiple_of(2); 1800],
        },
        DeltaBatch {
            predicate: None,
            removes: (0..25).collect(),
            adds: vec![],
        },
    ]
}

fn monitor_cases(registry: &DatasetRegistry) -> Vec<MonitorCase<'_>> {
    let kg = registry.get("nell").unwrap();
    (0..4)
        .map(|i| MonitorCase {
            spec: SessionSpec {
                id: format!("mon-{i}"),
                dataset: "nell".into(),
                design: "monitor:50".parse().unwrap(),
                method: IntervalMethod::ahpd_default(),
                seed: 7_000 + i as u64,
                alpha: 0.05,
                epsilon: 0.05,
                max_observations: None,
                stratify: None,
                tenant: None,
            },
            schedule: monitor_schedule(i),
            twin: Mutex::new((DeltaKg::with_truth(kg, kg), 0)),
        })
        .collect()
}

/// (estimate bits, interval bits, observations, triples, cost bits, report).
type MonitorFingerprint = (
    Option<u64>,
    Option<(u64, u64)>,
    u64,
    u64,
    u64,
    Option<MonitorReport>,
);

/// Bit-level fingerprint of a monitor's final service view.
fn monitor_fingerprint(view: &SessionView) -> MonitorFingerprint {
    (
        view.status.estimate.map(f64::to_bits),
        view.status
            .interval
            .map(|i| (i.lower().to_bits(), i.upper().to_bits())),
        view.status.observations,
        view.status.annotated_triples,
        view.status.cost_seconds.to_bits(),
        view.monitor.clone(),
    )
}

/// One monitor-churn worker: random suspend/resume/evict/poll/submit
/// chaos, plus schedule advancement — the next delta is pushed only
/// when the monitor is observed watching, under the case's mutex, so
/// batches land in schedule order at campaign boundaries.
fn monitor_worker(
    manager: &SessionManager<'_>,
    cases: &[MonitorCase<'_>],
    done: &[AtomicBool],
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut spins = 0u64;
    let tolerate = |e: &ServiceError| {
        matches!(
            e,
            ServiceError::RequestOutstanding(_)
                | ServiceError::NotSuspended(_)
                | ServiceError::StaleRequest(_)
                | ServiceError::Session(_)
        )
    };
    while !done.iter().all(|d| d.load(Ordering::Relaxed)) {
        spins += 1;
        assert!(spins < 2_000_000, "monitor stress loop failed to converge");
        let i = rng.gen_range(0..cases.len() as u64) as usize;
        let case = &cases[i];
        let id = case.spec.id.as_str();
        match rng.gen_range(0..10u64) {
            0 => match manager.suspend(id) {
                Ok(_) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("suspend {id}: {e}"),
            },
            1 => match manager.resume(id) {
                Ok(_) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("resume {id}: {e}"),
            },
            2 => match manager.evict(id) {
                Ok(()) => {}
                Err(e) if tolerate(&e) => {}
                Err(e) => panic!("evict {id}: {e}"),
            },
            3 | 4 => {
                // Advance the delta schedule: only at a watching
                // boundary, only in order, only one pusher at a time.
                let mut guard = case.twin.lock().unwrap();
                let next = guard.1;
                if next < case.schedule.len() {
                    let view = manager.status(id).expect("status");
                    if view.monitor.as_ref().is_some_and(|m| m.watching) {
                        let batch = &case.schedule[next];
                        match manager.apply_deltas(id, batch) {
                            Ok(_) => {
                                guard.0.apply(&batch.removes, &batch.adds).unwrap();
                                guard.1 = next + 1;
                            }
                            Err(e) if tolerate(&e) => {}
                            Err(e) => panic!("apply_deltas {id}: {e}"),
                        }
                    }
                } else {
                    // Schedule exhausted: the case is done once the
                    // final carryover campaign certifies.
                    let view = manager.status(id).expect("status");
                    if view.monitor.as_ref().is_some_and(|m| m.watching) {
                        done[i].store(true, Ordering::Relaxed);
                    }
                }
            }
            _ => {
                let batch = rng.gen_range(1..=8u64);
                let (request, view) = match manager.next_request(id, batch) {
                    Ok(outcome) => outcome,
                    Err(e) if tolerate(&e) => continue,
                    Err(e) => panic!("next_request {id}: {e}"),
                };
                let Some(request) = request else {
                    // Watching. A monitor never *finishes*.
                    assert_eq!(view.state, SessionState::Running, "{id}");
                    continue;
                };
                // The twin is stable while labels are owed: deltas are
                // only pushed at watching boundaries, and a monitor
                // with an outstanding batch is never watching.
                let labels: Vec<bool> = {
                    let guard = case.twin.lock().unwrap();
                    request
                        .triples
                        .iter()
                        .map(|st| guard.0.is_correct(st.triple))
                        .collect()
                };
                match manager.submit(id, &labels, view.pending_seq) {
                    Ok(_) => {}
                    Err(e) if tolerate(&e) => {}
                    Err(e) => panic!("submit {id}: {e}"),
                }
            }
        }
    }
}

/// Single-threaded monitor reference: batch-1 campaigns, the same delta
/// schedule applied at each watching boundary.
fn monitor_replay(
    spec: &SessionSpec,
    schedule: &[DeltaBatch],
    registry: &DatasetRegistry,
) -> MonitorFingerprint {
    let manager = SessionManager::new(registry, temp_store(&format!("mon-replay-{}", spec.id)), 1);
    manager.create(spec).unwrap();
    let kg = registry.get(&spec.dataset).unwrap();
    let mut twin = DeltaKg::with_truth(kg, kg);
    let drive = |twin: &DeltaKg<'_>| loop {
        let (request, view) = manager.next_request(&spec.id, 1).unwrap();
        let Some(request) = request else { break };
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| twin.is_correct(st.triple))
            .collect();
        manager.submit(&spec.id, &labels, view.pending_seq).unwrap();
    };
    drive(&twin);
    for batch in schedule {
        manager.apply_deltas(&spec.id, batch).unwrap();
        twin.apply(&batch.removes, &batch.adds).unwrap();
        drive(&twin);
    }
    let fingerprint = monitor_fingerprint(&manager.status(&spec.id).unwrap());
    let _ = std::fs::remove_dir_all(manager.store().dir());
    fingerprint
}

/// Concurrent delta pushes racing polls, submits, suspend/evict chaos
/// **and** a zero-TTL janitor ticking as fast as it can: every final
/// monitor status — certificate bits, cumulative effort, epoch, drift
/// rows — must be bit-identical to the single-threaded batch-1 replay
/// of the same spec and delta schedule.
#[test]
fn monitor_churn_interleavings_preserve_every_trajectory() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("mon-chaos"), 4);
    let cases = monitor_cases(&registry);
    for case in &cases {
        manager.create(&case.spec).unwrap();
    }
    let done: Vec<AtomicBool> = (0..cases.len()).map(|_| AtomicBool::new(false)).collect();
    let janitor = Janitor::new(JanitorConfig {
        tick: std::time::Duration::from_millis(1),
        idle_ttl: Some(std::time::Duration::ZERO),
        grace: std::time::Duration::ZERO,
    });
    let stopper = janitor.handle();

    crossbeam::scope(|scope| {
        let ticking = scope.spawn(|_| janitor.run(&manager));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let manager = &manager;
            let cases = &cases;
            let done = &done;
            handles.push(scope.spawn(move |_| {
                monitor_worker(manager, cases, done, 0xD417A + t as u64);
            }));
        }
        for handle in handles {
            handle.join().expect("monitor stress worker");
        }
        stopper.stop();
        ticking.join().expect("janitor thread");
    })
    .expect("monitor stress scope");

    for case in &cases {
        let view = manager.status(&case.spec.id).unwrap();
        let report = view.monitor.clone().expect("monitor report");
        assert!(
            report.watching,
            "{}: schedule drained, must be watching",
            case.spec.id
        );
        assert_eq!(
            monitor_fingerprint(&view),
            monitor_replay(&case.spec, &case.schedule, &registry),
            "{}: concurrent churn changed the monitor trajectory",
            case.spec.id
        );
    }
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

/// The chaos suite with a hostile janitor in the mix: zero idle TTL and
/// zero grace, ticking as fast as it can, so sessions are aged to disk
/// and evicted from memory *between* worker operations throughout the
/// run. Maintenance must be invisible — every final result stays
/// bit-identical to the single-threaded batch-1 replay.
#[test]
fn janitor_interleaving_preserves_every_trajectory() {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("janitor"), 4);
    let specs = specs();
    for spec in &specs {
        manager.create(spec).unwrap();
    }
    let done: Vec<AtomicBool> = (0..specs.len()).map(|_| AtomicBool::new(false)).collect();
    let janitor = Janitor::new(JanitorConfig {
        tick: std::time::Duration::from_millis(1),
        idle_ttl: Some(std::time::Duration::ZERO),
        grace: std::time::Duration::ZERO,
    });
    let stopper = janitor.handle();

    crossbeam::scope(|scope| {
        let ticking = scope.spawn(|_| janitor.run(&manager));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let manager = &manager;
            let registry = &registry;
            let specs = &specs;
            let done = &done;
            handles.push(scope.spawn(move |_| {
                worker(manager, registry, specs, done, 0xBADCAFE + t as u64);
            }));
        }
        for handle in handles {
            handle.join().expect("stress worker");
        }
        stopper.stop();
        ticking.join().expect("janitor thread");
    })
    .expect("stress scope");

    for spec in &specs {
        let view = manager.status(&spec.id).unwrap();
        assert!(
            matches!(view.state, SessionState::Finished | SessionState::Evicted),
            "{}: {:?}",
            spec.id,
            view.state
        );
        let (reason, result) = manager.final_result(&spec.id).unwrap();
        let (ref_reason, ref_result) = replay(spec, &registry);
        assert_eq!(reason, ref_reason, "{}", spec.id);
        assert_eq!(
            result, ref_result,
            "{}: janitor interleavings changed the final posterior",
            spec.id
        );
    }
    let _ = std::fs::remove_dir_all(manager.store().dir());
}
