//! Deterministic janitor maintenance: orphaned files are planted in a
//! real store directory, idle sessions are parked in a real manager,
//! ticks run synchronously through [`Janitor::tick`], and the effects
//! are observed both **on disk** and **in the metrics registry** the
//! `/metrics` exposition is built from.

use kgae_service::json::Json;
use kgae_service::manager::DatasetRegistry;
use kgae_service::{Janitor, JanitorConfig, Metrics, SessionManager, SessionSpec, SnapshotStore};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_store(tag: &str) -> PathBuf {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-janitor-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(id: &str, max_observations: Option<u64>) -> SessionSpec {
    let mut pairs = vec![
        ("id", Json::str(id)),
        ("dataset", Json::str("nell")),
        ("design", Json::str("srs")),
        ("method", Json::str("wilson")),
        ("seed", Json::int(11)),
    ];
    if let Some(budget) = max_observations {
        pairs.push(("max_observations", Json::int(budget)));
    }
    SessionSpec::from_json(&Json::obj(pairs)).expect("valid spec")
}

/// Drives `id` to its terminal state by exhausting its budget.
fn finish(manager: &SessionManager<'_>, id: &str) {
    loop {
        let (request, view) = manager.next_request(id, 4).expect("next");
        let Some(request) = request else {
            return; // finished
        };
        let labels = vec![true; request.triples.len()];
        manager
            .submit(id, &labels, view.pending_seq)
            .expect("submit");
    }
}

/// Temp files, orphaned snapshots, and stray finished-session
/// snapshots are garbage-collected from disk, and the janitor counters
/// in the `/metrics` exposition report exactly what was removed.
#[test]
fn tick_collects_planted_garbage_from_disk_and_reports_it() {
    let registry = DatasetRegistry::standard();
    let dir = temp_store("gc");
    let metrics = Arc::new(Metrics::new());
    let mut manager = SessionManager::new(&registry, SnapshotStore::open(&dir).expect("store"), 4);
    manager.set_metrics(Arc::clone(&metrics));

    // A finished session evicted to disk: its record is meta-only, so
    // a stray snapshot beside it is compactable garbage.
    manager.create(&spec("fin", Some(4))).expect("create fin");
    finish(&manager, "fin");
    manager.evict("fin").expect("evict fin");
    assert!(dir.join("fin.meta.json").exists());

    // Planted garbage: a junk-named temp, a session-shaped temp for an
    // id that is nowhere in memory, an orphaned snapshot with no meta,
    // and the stray snapshot of the finished session.
    std::fs::write(dir.join("junk.tmp"), b"leftover").unwrap();
    std::fs::write(dir.join("alpha.meta.json.tmp"), b"torn").unwrap();
    std::fs::write(dir.join("ghost.snap"), b"orphan").unwrap();
    std::fs::write(dir.join("fin.snap"), b"stray").unwrap();
    // Zero grace still compares mtimes; give the files a beat so the
    // clock comparison cannot land in the future on a coarse clock.
    std::thread::sleep(Duration::from_millis(50));

    let janitor = Janitor::new(JanitorConfig {
        tick: Duration::from_millis(1),
        idle_ttl: None,
        grace: Duration::ZERO,
    })
    .with_metrics(Arc::clone(&metrics));

    let report = janitor.tick(&manager);
    assert_eq!(report.gc_tmp, 2, "junk.tmp + alpha.meta.json.tmp");
    assert_eq!(report.gc_orphan_snaps, 1, "ghost.snap");
    assert_eq!(report.compacted, 1, "fin.snap");
    assert_eq!(report.aged_suspended, 0, "aging is off");
    assert_eq!(report.aged_evicted, 0, "aging is off");

    // On disk: every planted file is gone, the real record survives.
    for gone in ["junk.tmp", "alpha.meta.json.tmp", "ghost.snap", "fin.snap"] {
        assert!(!dir.join(gone).exists(), "{gone} survived GC");
    }
    assert!(
        dir.join("fin.meta.json").exists(),
        "compaction must never touch the meta record"
    );

    // In /metrics: the same counts, through the same registry the
    // server exposes.
    let exposition = metrics.encode(&manager.census(), Some(&manager.kernel_stats()));
    for line in [
        "kgae_janitor_ticks_total 1",
        "kgae_janitor_gc_files_total 3",
        "kgae_janitor_compacted_total 1",
        "kgae_janitor_aged_suspended_total 0",
    ] {
        assert!(
            exposition.contains(&format!("\n{line}\n")),
            "missing {line:?} in exposition"
        );
    }

    // A second tick finds a clean directory.
    assert!(janitor.tick(&manager).is_idle(), "second tick not idle");

    let _ = std::fs::remove_dir_all(&dir);
}

/// TTL aging: idle live sessions spill to disk, idle dormant ones are
/// evicted from memory, and a session with an outstanding annotation
/// batch is never touched — all visible in the census gauges.
#[test]
fn ttl_aging_spills_idle_sessions_and_spares_outstanding_work() {
    let registry = DatasetRegistry::standard();
    let dir = temp_store("ttl");
    let metrics = Arc::new(Metrics::new());
    let mut manager = SessionManager::new(&registry, SnapshotStore::open(&dir).expect("store"), 4);
    manager.set_metrics(Arc::clone(&metrics));

    manager.create(&spec("idle", None)).expect("create idle");
    manager.create(&spec("busy", None)).expect("create busy");
    // `busy` owes labels: an outstanding batch pins it in memory.
    manager.next_request("busy", 4).expect("poll busy");
    manager.create(&spec("dormant", None)).expect("create");
    manager.suspend("dormant").expect("suspend dormant");

    let janitor = Janitor::new(JanitorConfig {
        tick: Duration::from_millis(1),
        idle_ttl: Some(Duration::ZERO),
        // Files stay untouched: this test is about memory aging.
        grace: Duration::from_secs(3600),
    })
    .with_metrics(Arc::clone(&metrics));

    // Tick 1: the idle live session is suspended to disk, the already
    // dormant one is evicted from memory. `busy` is untouched.
    let report = janitor.tick(&manager);
    assert_eq!(report.aged_suspended, 1, "idle → suspended");
    assert_eq!(report.aged_evicted, 1, "dormant → evicted");
    assert!(dir.join("idle.meta.json").exists(), "idle not persisted");
    assert!(dir.join("idle.snap").exists(), "idle snapshot missing");

    // Tick 2: the session suspended by tick 1 is now the idle dormant
    // one and ages out of memory entirely.
    let report = janitor.tick(&manager);
    assert_eq!(report.aged_suspended, 0);
    assert_eq!(report.aged_evicted, 1, "suspended idle → evicted");

    // The census agrees: one live session (busy), two on disk only.
    let census = manager.census();
    let live: u64 = census.iter().map(|s| s.live).sum();
    let in_memory_suspended: u64 = census.iter().map(|s| s.suspended).sum();
    let evicted: u64 = census.iter().map(|s| s.evicted).sum();
    assert_eq!(live, 1, "busy must survive aging");
    assert_eq!(in_memory_suspended, 0, "aged sessions left memory");
    assert_eq!(evicted, 2, "idle + dormant live on disk only");

    // Tick 3 has nothing left to age; `busy` still owes labels.
    assert!(janitor.tick(&manager).is_idle());
    let view = manager.status("busy").expect("busy status");
    assert_eq!(view.state.name(), "running", "busy was aged while owed");

    // The evicted sessions resume transparently — aging lost nothing.
    let view = manager.resume("idle").expect("resume idle");
    assert_eq!(view.state.name(), "running");

    let exposition = metrics.encode(&manager.census(), Some(&manager.kernel_stats()));
    for line in [
        "kgae_janitor_aged_suspended_total 1",
        "kgae_janitor_aged_evicted_total 2",
        "kgae_janitor_ticks_total 3",
    ] {
        assert!(
            exposition.contains(&format!("\n{line}\n")),
            "missing {line:?} in exposition"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
