//! Property-style torn-write recovery: a genuine on-disk session
//! record is mangled hundreds of ways — every interesting truncation
//! prefix plus seeded random byte flips, on both the meta record and
//! the snapshot — and the invariant is checked after each: reopening
//! the store never panics, and every operation on the damaged session
//! answers a clean client-visible error (404/410), never a 500 and
//! never a wedge. Quarantine must trigger for at least a healthy share
//! of the corruptions, proving the sweep actually fires.
//!
//! No proptest dependency: the corruption schedule is driven by the
//! vendored seeded RNG, so a failure reproduces exactly.

use kgae_core::IntervalMethod;
use kgae_graph::GroundTruth;
use kgae_service::api::SessionSpec;
use kgae_service::manager::{DatasetRegistry, ServiceError};
use kgae_service::{SessionManager, SnapshotStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-recovery-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(id: &str, seed: u64) -> SessionSpec {
    SessionSpec {
        id: id.into(),
        dataset: "nell".into(),
        design: "srs".parse().unwrap(),
        method: IntervalMethod::ahpd_default(),
        seed,
        alpha: 0.05,
        epsilon: 0.05,
        max_observations: None,
        stratify: None,
        tenant: None,
    }
}

#[test]
fn every_truncation_and_byte_flip_recovers_without_panic_or_500() {
    let registry = DatasetRegistry::standard();
    let kg = registry.get("nell").unwrap();
    let dir = temp_dir("mangle");

    // One genuine suspended record to mangle, kept pristine in memory.
    {
        let manager = SessionManager::new(&registry, SnapshotStore::open(&dir).unwrap(), 2);
        manager.create(&spec("victim", 5)).unwrap();
        let (request, view) = manager.next_request("victim", 8).unwrap();
        let labels: Vec<bool> = request
            .unwrap()
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit("victim", &labels, view.pending_seq).unwrap();
        manager.suspend("victim").unwrap();
        manager.evict("victim").unwrap();
    }
    let meta_path = dir.join("victim.meta.json");
    let snap_path = dir.join("victim.snap");
    let pristine_meta = std::fs::read(&meta_path).unwrap();
    let pristine_snap = std::fs::read(&snap_path).unwrap();
    assert!(pristine_snap.len() > 64, "snapshot too small to mangle");

    let restore = || {
        let _ = std::fs::remove_dir_all(dir.join("quarantine"));
        std::fs::write(&meta_path, &pristine_meta).unwrap();
        std::fs::write(&snap_path, &pristine_snap).unwrap();
    };

    // The corruption schedule: every header-region truncation of both
    // files, a seeded spread of deeper truncations, and seeded byte
    // flips (single bytes and 4-byte bursts) at arbitrary offsets.
    let mut rng = SmallRng::seed_from_u64(20_250_808);
    let mut cases: Vec<(&'static str, usize, Vec<u8>)> = Vec::new();
    for len in 0..=64usize {
        cases.push(("snap-truncate", 0, pristine_snap[..len].to_vec()));
    }
    for _ in 0..24 {
        let len = rng.gen_range(0..pristine_snap.len());
        cases.push(("snap-truncate", 0, pristine_snap[..len].to_vec()));
    }
    for len in (0..pristine_meta.len()).step_by(1.max(pristine_meta.len() / 40)) {
        cases.push(("meta-truncate", 0, pristine_meta[..len].to_vec()));
    }
    for _ in 0..64 {
        let mut bytes = pristine_snap.clone();
        let pos = rng.gen_range(0..bytes.len());
        let burst = if rng.gen_bool(0.5) { 1 } else { 4 };
        for b in bytes.iter_mut().skip(pos).take(burst) {
            *b ^= rng.gen_range(1..=255u8);
        }
        cases.push(("snap-flip", pos, bytes));
    }
    for _ in 0..64 {
        let mut bytes = pristine_meta.clone();
        let pos = rng.gen_range(0..bytes.len());
        bytes[pos] ^= rng.gen_range(1..=255u8);
        cases.push(("meta-flip", pos, bytes));
    }

    let mut quarantined = 0usize;
    let mut survived = 0usize;
    for (kind, pos, bytes) in &cases {
        restore();
        let target = if kind.starts_with("meta") {
            &meta_path
        } else {
            &snap_path
        };
        std::fs::write(target, bytes).unwrap();

        // Reopening runs the recovery sweep: it must never panic and
        // never refuse to open the store.
        let store = SnapshotStore::open(&dir)
            .unwrap_or_else(|e| panic!("{kind}@{pos}: store refused to open: {e}"));
        let manager = SessionManager::new(&registry, store, 2);
        let mut ok = true;
        for result in [
            manager.status("victim").map(|_| ()),
            manager.resume("victim").map(|_| ()),
            manager.next_request("victim", 4).map(|_| ()),
        ] {
            match result {
                Ok(()) => {}
                Err(e) => {
                    ok = false;
                    let status = e.http_status();
                    assert!(
                        status == 404 || status == 410,
                        "{kind}@{pos}: corruption surfaced as {status} ({e}), \
                         want a clean 404/410"
                    );
                    assert!(
                        matches!(
                            e,
                            ServiceError::Quarantined(_) | ServiceError::UnknownSession(_)
                        ),
                        "{kind}@{pos}: unexpected error shape: {e}"
                    );
                }
            }
        }
        if ok {
            // The damage dodged every validator (e.g. a flip inside an
            // unused meta field): the session must then behave like an
            // intact one, including serving labels.
            survived += 1;
        } else {
            quarantined += 1;
            // Deterministically damaged from now on: repeated access
            // answers the same clean error instead of retrying disk.
            assert_eq!(
                manager
                    .status("victim")
                    .map(|_| ())
                    .unwrap_err()
                    .http_status(),
                manager
                    .status("victim")
                    .map(|_| ())
                    .unwrap_err()
                    .http_status(),
            );
        }
    }
    assert!(
        quarantined >= cases.len() / 2,
        "only {quarantined}/{} corruptions were caught — the validators are asleep",
        cases.len()
    );
    // Not every flip must be fatal, but the schedule should include
    // both fates; seeing zero survivals usually means the test stopped
    // exercising the happy path.
    assert!(
        quarantined + survived == cases.len(),
        "case accounting is off"
    );

    restore();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The wire-level face of the same property: a deep snapshot
/// corruption surfaces over HTTP as 410 Gone on every route that
/// touches the session — never a 500, and `GET` keeps answering
/// cleanly after the quarantine.
#[test]
fn corrupt_snapshot_answers_410_over_http() {
    use kgae_service::http;
    use kgae_service::json::{self, Json};
    use std::io::BufReader;
    use std::net::TcpStream;

    let registry = DatasetRegistry::standard();
    let kg = registry.get("nell").unwrap();
    let dir = temp_dir("http410");
    let manager = SessionManager::new(&registry, SnapshotStore::open(&dir).unwrap(), 2);
    manager.create(&spec("victim", 9)).unwrap();
    let (request, view) = manager.next_request("victim", 8).unwrap();
    let labels: Vec<bool> = request
        .unwrap()
        .triples
        .iter()
        .map(|st| kg.is_correct(st.triple))
        .collect();
    manager.submit("victim", &labels, view.pending_seq).unwrap();
    manager.suspend("victim").unwrap();
    manager.evict("victim").unwrap();

    // Flip payload bytes past the header: only deep validation sees it.
    let snap_path = dir.join("victim.snap");
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 4] {
        *b ^= 0x5A;
    }
    std::fs::write(&snap_path, &bytes).unwrap();

    let server = kgae_service::Server::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(|| server.run(&manager));
        let get = |method: &str, path: &str| -> (u16, Json) {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream);
            http::write_request(reader.get_mut(), method, path, "").unwrap();
            let response = http::read_response(&mut reader).unwrap();
            let text = std::str::from_utf8(&response.body).unwrap().to_string();
            (response.status, json::parse(&text).unwrap())
        };
        let (status, doc) = get("POST", "/v1/sessions/victim/resume");
        assert_eq!(status, 410, "resume: {}", doc.encode());
        assert_eq!(
            doc.get("code").and_then(Json::as_str),
            Some("quarantined"),
            "error body must carry the machine-readable code"
        );
        let (status, doc) = get("GET", "/v1/sessions/victim");
        assert_eq!(status, 410, "status after quarantine: {}", doc.encode());
        assert!(
            doc.get("error").and_then(Json::as_str).is_some(),
            "410 body still has the human-readable error"
        );
        handle.shutdown();
        server_thread.join().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
}
