//! The crash-safe / backpressure half of the [`SessionManager`]
//! contract: per-tenant quotas (429-shaped refusals that free on
//! delete and survive restarts), graceful drain (mid-batch sessions
//! suspend exactly and resume bit-identically), and quarantine of
//! records that fail deep validation (410, never a wedged 500).

use kgae_core::{IntervalMethod, StopReason};
use kgae_graph::GroundTruth;
use kgae_service::api::SessionSpec;
use kgae_service::manager::{DatasetRegistry, ManagerLimits, ServiceError, SessionState};
use kgae_service::{SessionManager, SnapshotStore};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-robust-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(id: &str, tenant: Option<&str>, seed: u64) -> SessionSpec {
    SessionSpec {
        id: id.into(),
        dataset: "nell".into(),
        design: "srs".parse().unwrap(),
        method: IntervalMethod::ahpd_default(),
        seed,
        alpha: 0.05,
        epsilon: 0.05,
        max_observations: None,
        stratify: None,
        tenant: tenant.map(str::to_string),
    }
}

#[test]
fn tenant_quotas_refuse_with_retry_after_and_free_on_delete() {
    let registry = DatasetRegistry::standard();
    let limits = ManagerLimits {
        max_sessions_per_tenant: Some(2),
        max_total_sessions: Some(3),
        retry_after_secs: 7,
    };
    let dir = temp_dir("quota");
    let manager =
        SessionManager::with_limits(&registry, SnapshotStore::open(&dir).unwrap(), 4, limits);

    manager.create(&spec("a1", Some("acme"), 1)).unwrap();
    manager.create(&spec("a2", Some("acme"), 2)).unwrap();
    // Third session for the same tenant: per-tenant quota.
    let err = manager.create(&spec("a3", Some("acme"), 3)).unwrap_err();
    assert!(
        matches!(err, ServiceError::QuotaExceeded { limit: 2, .. }),
        "expected tenant quota, got {err}"
    );
    assert_eq!(err.http_status(), 429);
    assert_eq!(err.wire_code(), "quota_exceeded");
    assert_eq!(err.retry_after(), Some(7));
    // A failed create takes no slot.
    assert_eq!(manager.occupancy("acme"), (2, 2));

    // Another tenant fits (total 3)...
    manager.create(&spec("b1", Some("burl"), 4)).unwrap();
    // ...but the server-wide ceiling now refuses everyone.
    let err = manager.create(&spec("b2", Some("burl"), 5)).unwrap_err();
    assert!(matches!(err, ServiceError::QuotaExceeded { limit: 3, .. }));

    // Quota slots persist across suspend/evict (disk still occupied)…
    manager.suspend("a1").unwrap();
    manager.evict("a1").unwrap();
    assert!(matches!(
        manager.create(&spec("a3", Some("acme"), 3)),
        Err(ServiceError::QuotaExceeded { .. })
    ));
    // …and free only on delete.
    manager.delete("a1").unwrap();
    manager.create(&spec("a3", Some("acme"), 3)).unwrap();
    assert_eq!(manager.occupancy("acme"), (3, 2));

    // A restarted manager over the same store rebuilds the census from
    // disk: persist everything, reopen, and the quota still holds.
    let report = manager.drain();
    assert!(report.is_clean(), "drain failed: {:?}", report.failed);
    drop(manager);
    let manager =
        SessionManager::with_limits(&registry, SnapshotStore::open(&dir).unwrap(), 4, limits);
    assert_eq!(manager.occupancy("acme"), (3, 2));
    let err = manager.create(&spec("a4", Some("acme"), 6)).unwrap_err();
    assert!(
        matches!(err, ServiceError::QuotaExceeded { .. }),
        "restart forgot the census: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_suspends_mid_batch_sessions_and_resume_is_exact() {
    let registry = DatasetRegistry::standard();
    let kg = registry.get("nell").unwrap();
    let dir = temp_dir("drain");
    let manager = SessionManager::new(&registry, SnapshotStore::open(&dir).unwrap(), 4);

    // Reference: an uninterrupted twin of the drained session.
    manager.create(&spec("twin", None, 9)).unwrap();
    manager.create(&spec("mid", None, 9)).unwrap();
    let mut twin_batches = Vec::new();
    for _ in 0..2 {
        let (request, view) = manager.next_request("mid", 8).unwrap();
        let request = request.unwrap();
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit("mid", &labels, view.pending_seq).unwrap();
        let (twin_request, twin_view) = manager.next_request("twin", 8).unwrap();
        twin_batches.push(twin_request.unwrap());
        manager
            .submit("twin", &labels, twin_view.pending_seq)
            .unwrap();
    }
    // Leave "mid" with an outstanding batch, and park a finished
    // session alongside it.
    let (withdrawn, _) = manager.next_request("mid", 8).unwrap();
    let withdrawn = withdrawn.unwrap();
    manager.create(&spec("done", None, 13)).unwrap();
    loop {
        let (request, view) = manager.next_request("done", 64).unwrap();
        let Some(request) = request else { break };
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit("done", &labels, view.pending_seq).unwrap();
    }

    let report = manager.drain();
    assert!(report.is_clean(), "drain failed: {:?}", report.failed);
    assert_eq!(report.cancelled, vec!["mid".to_string()]);
    assert_eq!(
        report.suspended,
        vec!["mid".to_string(), "twin".to_string()]
    );
    assert_eq!(report.finished, vec!["done".to_string()]);
    // Drain mode: creates refuse with 503 + Retry-After.
    let err = manager.create(&spec("late", None, 1)).unwrap_err();
    assert!(matches!(err, ServiceError::Draining { .. }));
    assert_eq!(err.http_status(), 503);
    assert!(err.retry_after().is_some());

    // A fresh manager over the drained store serves everything back:
    // the withdrawn batch reappears bit-identically, and the session
    // finishes exactly like its uninterrupted twin.
    drop(manager);
    let manager = SessionManager::new(&registry, SnapshotStore::open(&dir).unwrap(), 4);
    assert_eq!(manager.status("mid").unwrap().state, SessionState::Evicted);
    let (reason, result) = manager.final_result("done").unwrap();
    assert_eq!(reason, StopReason::MoeSatisfied);
    assert!(result.converged);

    let (replayed, view) = manager.next_request("mid", 8).unwrap();
    let replayed = replayed.unwrap();
    let ids = |r: &kgae_core::AnnotationRequest| {
        r.triples
            .iter()
            .map(|st| st.triple.index())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        ids(&withdrawn),
        ids(&replayed),
        "drain must not perturb the withdrawn batch"
    );
    let labels: Vec<bool> = replayed
        .triples
        .iter()
        .map(|st| kg.is_correct(st.triple))
        .collect();
    manager.submit("mid", &labels, view.pending_seq).unwrap();
    // The twin never polled the withdrawn batch; bring it level.
    let (twin_request, twin_view) = manager.next_request("twin", 8).unwrap();
    assert_eq!(ids(&replayed), ids(&twin_request.unwrap()));
    manager
        .submit("twin", &labels, twin_view.pending_seq)
        .unwrap();
    loop {
        let (request, view) = manager.next_request("mid", 8).unwrap();
        let Some(request) = request else { break };
        let labels: Vec<bool> = request
            .triples
            .iter()
            .map(|st| kg.is_correct(st.triple))
            .collect();
        manager.submit("mid", &labels, view.pending_seq).unwrap();
        let (twin_request, twin_view) = manager.next_request("twin", 8).unwrap();
        assert_eq!(ids(&request), ids(&twin_request.unwrap()));
        manager
            .submit("twin", &labels, twin_view.pending_seq)
            .unwrap();
    }
    assert!(
        manager.next_request("twin", 8).unwrap().0.is_none(),
        "twin must finish in lockstep with mid"
    );
    let (mid_reason, mid_result) = manager.final_result("mid").unwrap();
    let (twin_reason, twin_result) = manager.final_result("twin").unwrap();
    assert_eq!(mid_reason, twin_reason);
    assert_eq!(mid_result, twin_result);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_records_are_quarantined_as_410_not_500() {
    let registry = DatasetRegistry::standard();
    let kg = registry.get("nell").unwrap();
    let dir = temp_dir("quarantine");
    let manager = SessionManager::new(&registry, SnapshotStore::open(&dir).unwrap(), 2);

    manager.create(&spec("victim", None, 3)).unwrap();
    let (request, view) = manager.next_request("victim", 8).unwrap();
    let labels: Vec<bool> = request
        .unwrap()
        .triples
        .iter()
        .map(|st| kg.is_correct(st.triple))
        .collect();
    manager.submit("victim", &labels, view.pending_seq).unwrap();
    manager.suspend("victim").unwrap();
    manager.evict("victim").unwrap();

    // Flip bytes deep inside the snapshot payload, past the header the
    // startup sweep validates — only deep resume validation sees this.
    let snap_path = dir.join("victim.snap");
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 8] {
        *b ^= 0xA5;
    }
    std::fs::write(&snap_path, &bytes).unwrap();

    let err = manager.resume("victim").unwrap_err();
    assert!(
        matches!(err, ServiceError::Quarantined(_)),
        "expected quarantine, got {err}"
    );
    assert_eq!(err.http_status(), 410);
    assert_eq!(err.wire_code(), "quarantined");
    // Every subsequent operation answers 410 — deterministically, with
    // no further disk reads of the bad record.
    for err in [
        manager.status("victim").unwrap_err(),
        manager.next_request("victim", 8).map(|_| ()).unwrap_err(),
        manager
            .submit("victim", &[true], None)
            .map(|_| ())
            .unwrap_err(),
        manager.resume("victim").map(|_| ()).unwrap_err(),
        manager
            .create(&spec("victim", None, 3))
            .map(|_| ())
            .unwrap_err(),
    ] {
        assert_eq!(err.http_status(), 410, "{err}");
    }
    assert_eq!(manager.quarantined_sessions(), vec!["victim".to_string()]);
    // The bytes moved into quarantine/ for inspection; the main store
    // no longer lists the session.
    assert!(dir.join("quarantine").join("victim.snap").exists());
    assert!(!snap_path.exists());
    assert!(manager.list().unwrap().is_empty());

    // A restart re-learns the quarantine from the store.
    drop(manager);
    let manager = SessionManager::new(&registry, SnapshotStore::open(&dir).unwrap(), 2);
    assert_eq!(manager.quarantined_sessions(), vec!["victim".to_string()]);
    assert_eq!(manager.status("victim").unwrap_err().http_status(), 410);
    let _ = std::fs::remove_dir_all(&dir);
}
