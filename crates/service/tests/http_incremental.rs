//! Equivalence properties for the resumable HTTP request parser: fed
//! any byte stream in **any split**, `RequestParser` must produce
//! exactly the requests — and exactly the errors — of the blocking
//! `read_request` reference decoder. Covers a generative corpus of
//! valid requests across random chunkings, pipelined back-to-back
//! requests on one stream, torn-header/torn-body truncations at every
//! byte position, a malformed-input gauntlet, and random byte
//! mutations. The parser must never panic on any input.

use kgae_service::http::{self, Parsed, Request, RequestParser};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::BufReader;

/// The blocking reference: decode one request from the front of
/// `bytes`, exactly as the old thread-per-connection server did.
fn blocking_parse(bytes: &[u8]) -> Result<Request, http::HttpError> {
    http::read_request(&mut BufReader::new(bytes))
}

/// Drive the resumable parser over `bytes` delivered in the given
/// chunk sizes (a final oversized chunk flushes the remainder), then
/// report the outcome of the *first* message: `Ok(Ok(request))`,
/// `Ok(Err(feed error))`, or `Err(eof verdict)` when the stream ended
/// mid-message.
fn incremental_parse(
    bytes: &[u8],
    chunks: &[usize],
) -> Result<Result<Request, http::HttpError>, http::HttpError> {
    let mut parser = RequestParser::new();
    let mut at = 0;
    let mut chunk_sizes = chunks.iter().copied().chain(std::iter::repeat(usize::MAX));
    while at < bytes.len() {
        let take = chunk_sizes.next().unwrap().min(bytes.len() - at);
        if take == 0 {
            continue;
        }
        let mut window = &bytes[at..at + take];
        at += take;
        // A window may span a request boundary: feed the remainder to
        // the (reset) parser, like the reactor's spillover buffer.
        while !window.is_empty() {
            match parser.feed(window) {
                Ok((consumed, Parsed::Complete(request))) => {
                    assert!(consumed <= window.len(), "consumed beyond the window");
                    return Ok(Ok(request));
                }
                Ok((consumed, Parsed::NeedMore)) => {
                    assert_eq!(
                        consumed,
                        window.len(),
                        "NeedMore must consume the whole window"
                    );
                    window = &window[consumed..];
                }
                Err(e) => return Ok(Err(e)),
            }
        }
    }
    Err(parser.eof())
}

/// Errors are compared by rendered text: variant plus the exact
/// human-readable reason must match the blocking decoder's.
fn err_text(e: &http::HttpError) -> String {
    e.to_string()
}

fn assert_equivalent(bytes: &[u8], chunks: &[usize], context: &str) {
    let reference = blocking_parse(bytes);
    let incremental = incremental_parse(bytes, chunks);
    match (reference, incremental) {
        (Ok(want), Ok(Ok(got))) => {
            assert_eq!(got.method, want.method, "{context}: method diverged");
            assert_eq!(got.path, want.path, "{context}: path diverged");
            assert_eq!(got.body, want.body, "{context}: body diverged");
            assert_eq!(
                got.keep_alive, want.keep_alive,
                "{context}: keep_alive diverged"
            );
        }
        (Err(want), Ok(Err(got))) | (Err(want), Err(got)) => {
            assert_eq!(err_text(&got), err_text(&want), "{context}: error diverged");
        }
        (Ok(want), Ok(Err(got))) => {
            panic!("{context}: blocking parsed {want:?}, incremental errored {got}")
        }
        (Ok(want), Err(got)) => {
            panic!("{context}: blocking parsed {want:?}, incremental hit eof {got}")
        }
        (Err(want), Ok(Ok(got))) => {
            panic!("{context}: blocking errored {want}, incremental parsed {got:?}")
        }
    }
}

/// Random split points for `len` bytes: byte-at-a-time, one big chunk,
/// or a random partition — the shapes readiness events actually take.
fn random_chunks(rng: &mut SmallRng, len: usize) -> Vec<usize> {
    match rng.gen_range(0..4u64) {
        0 => vec![1; len],
        1 => vec![len.max(1)],
        2 => {
            let cut = rng.gen_range(0..=len as u64) as usize;
            vec![cut, len - cut]
        }
        _ => {
            let mut chunks = Vec::new();
            let mut left = len;
            while left > 0 {
                let take = rng.gen_range(1..=(left.min(19)) as u64) as usize;
                chunks.push(take);
                left -= take;
            }
            chunks
        }
    }
}

/// A generative valid-ish request: varied methods, query strings,
/// header shapes, line endings, bodies and keep-alive modes. A slice
/// of the generated cases is deliberately on the edge (HTTP/1.0,
/// multiple trailing CRs, padded spacing) — valid for one decoder iff
/// valid for the other.
fn random_request(rng: &mut SmallRng) -> Vec<u8> {
    let method = ["GET", "POST", "DELETE", "get", "Po st"][rng.gen_range(0..5u64) as usize];
    let path = [
        "/healthz",
        "/v1/sessions/abc/labels",
        "/v1/sessions?limit=5",
        "/",
        "/x%20y",
    ][rng.gen_range(0..5u64) as usize];
    let version = ["HTTP/1.1", "HTTP/1.0"][rng.gen_range(0..2u64) as usize];
    let eol = ["\r\n", "\n", "\r\r\n"][rng.gen_range(0..3u64) as usize];
    let mut message = format!("{method} {path} {version}{eol}").into_bytes();
    let body_len = rng.gen_range(0..200u64) as usize;
    if body_len > 0 || rng.gen_bool(0.3) {
        message.extend_from_slice(format!("Content-Length: {body_len}{eol}").as_bytes());
    }
    if rng.gen_bool(0.5) {
        let conn = ["close", "keep-alive", "Keep-Alive , close"][rng.gen_range(0..3u64) as usize];
        message.extend_from_slice(format!("Connection: {conn}{eol}").as_bytes());
    }
    for i in 0..rng.gen_range(0..4u64) {
        message.extend_from_slice(format!("X-Extra-{i}:  padded value {eol}").as_bytes());
    }
    message.extend_from_slice(eol.as_bytes());
    for _ in 0..body_len {
        message.push(rng.gen_range(0..=255u8));
    }
    message
}

#[test]
fn valid_requests_parse_identically_across_random_splits() {
    let mut rng = SmallRng::seed_from_u64(0x11770);
    for case in 0..600 {
        let message = random_request(&mut rng);
        let chunks = random_chunks(&mut rng, message.len());
        assert_equivalent(&message, &chunks, &format!("case {case} chunks {chunks:?}"));
    }
}

#[test]
fn pipelined_requests_decode_in_order_across_random_splits() {
    let mut rng = SmallRng::seed_from_u64(0xBACC);
    for case in 0..200 {
        let count = rng.gen_range(2..6u64) as usize;
        let messages: Vec<Vec<u8>> = (0..count).map(|_| random_request(&mut rng)).collect();
        let stream: Vec<u8> = messages.concat();

        // Reference: decode the pipeline sequentially with the
        // blocking parser over one reader.
        let mut reader = BufReader::new(&stream[..]);
        let reference: Vec<Result<Request, http::HttpError>> = (0..count)
            .map(|_| http::read_request(&mut reader))
            .collect();

        // Incremental: one parser, random chunking, spillover re-fed
        // after each completion — the reactor's exact loop.
        let mut parser = RequestParser::new();
        let mut decoded: Vec<Result<Request, http::HttpError>> = Vec::new();
        let mut poisoned = false;
        let mut at = 0;
        'stream: while at < stream.len() && decoded.len() < count {
            let take = rng.gen_range(1..=(stream.len() - at).min(37) as u64) as usize;
            let mut window = &stream[at..at + take];
            at += take;
            while !window.is_empty() {
                match parser.feed(window) {
                    Ok((consumed, Parsed::Complete(request))) => {
                        decoded.push(Ok(request));
                        window = &window[consumed..];
                    }
                    Ok((consumed, Parsed::NeedMore)) => {
                        assert_eq!(consumed, window.len());
                        window = &window[consumed..];
                    }
                    Err(e) => {
                        decoded.push(Err(e));
                        poisoned = true;
                        break 'stream;
                    }
                }
            }
        }

        for (i, (want, got)) in reference.iter().zip(decoded.iter()).enumerate() {
            match (want, got) {
                (Ok(want), Ok(got)) => {
                    assert_eq!(got.method, want.method, "case {case} msg {i}");
                    assert_eq!(got.path, want.path, "case {case} msg {i}");
                    assert_eq!(got.body, want.body, "case {case} msg {i}");
                    assert_eq!(got.keep_alive, want.keep_alive, "case {case} msg {i}");
                }
                (Err(want), Err(got)) => {
                    assert_eq!(err_text(got), err_text(want), "case {case} msg {i}");
                }
                _ => panic!("case {case} msg {i}: {want:?} vs {got:?}"),
            }
        }
        // A poisoned stream legitimately stops early; otherwise every
        // pipelined message must have come through.
        if !poisoned {
            assert_eq!(decoded.len(), count, "case {case} lost pipelined requests");
        }
    }
}

#[test]
fn truncations_match_the_blocking_verdict_at_every_byte() {
    // A deterministic corpus hitting each parser section: request
    // line, headers, header/body boundary, body.
    let corpus: &[&[u8]] = &[
        b"GET /healthz HTTP/1.1\r\n\r\n",
        b"POST /v1/sessions HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\n{\"id\":\"x\"}!",
        b"DELETE /v1/sessions/a%7A HTTP/1.0\r\nConnection: keep-alive\r\nX-Pad: y\r\n\r\n",
        b"POST /n HTTP/1.1\nContent-Length: 3\n\nabc",
    ];
    let mut rng = SmallRng::seed_from_u64(0x7047);
    for (which, message) in corpus.iter().enumerate() {
        for cut in 0..=message.len() {
            let torn = &message[..cut];
            let chunks = random_chunks(&mut rng, torn.len());
            assert_equivalent(
                torn,
                &chunks,
                &format!("corpus {which} torn at {cut} chunks {chunks:?}"),
            );
        }
    }
}

#[test]
fn malformed_and_oversized_inputs_error_identically() {
    let big_line = {
        let mut line = Vec::from(&b"GET /"[..]);
        line.extend(std::iter::repeat_n(b'a', http::MAX_LINE * 2));
        line.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        line
    };
    let many_headers = {
        let mut message = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        for i in 0..http::MAX_HEADERS + 1 {
            message.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        message.extend_from_slice(b"\r\n");
        message
    };
    let malformed_101st = {
        // The 101st header is garbage: the blocking decoder applies a
        // line before its count check, so Malformed must win over
        // TooLarge — in both decoders.
        let mut message = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        for i in 0..http::MAX_HEADERS {
            message.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        message.extend_from_slice(b"no colon here\r\n\r\n");
        message
    };
    let mut cases: Vec<Vec<u8>> = vec![
        b"\r\n".to_vec(),
        b"BLARGH\r\n\r\n".to_vec(),
        b"GET / HTTP/2.0\r\n\r\n".to_vec(),
        b"GET relative HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1\r\nContent-Length: soon\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1\r\nno colon\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1\r\nX-Bin: \xff\xfe\r\n\r\n".to_vec(),
        big_line,
        many_headers,
        malformed_101st,
    ];
    // Byte-level mutations of a valid request: anything goes, as long
    // as both decoders agree and neither panics.
    let mut rng = SmallRng::seed_from_u64(0xF1A2);
    let seed: &[u8] = b"POST /v1/sessions/s1/labels HTTP/1.1\r\nContent-Length: 16\r\nConnection: keep-alive\r\n\r\n{\"labels\":[true]";
    for _ in 0..400 {
        let mut mutated = seed.to_vec();
        for _ in 0..rng.gen_range(1..=4u64) {
            let i = rng.gen_range(0..mutated.len() as u64) as usize;
            mutated[i] = rng.gen_range(0..=255u8);
        }
        cases.push(mutated);
    }
    for (which, case) in cases.iter().enumerate() {
        let chunks = random_chunks(&mut rng, case.len());
        assert_equivalent(case, &chunks, &format!("case {which} chunks {chunks:?}"));
    }
}

#[test]
fn parser_resets_cleanly_between_messages() {
    // After a completed request the parser must be indistinguishable
    // from a fresh one: headers, body state and keep-alive flags from
    // message N must not leak into message N+1.
    let first = b"POST /a HTTP/1.0\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\r\nhello";
    let second = b"GET /b HTTP/1.1\r\n\r\n";
    let mut parser = RequestParser::new();
    let (consumed, parsed) = parser.feed(first).unwrap();
    assert_eq!(consumed, first.len());
    let Parsed::Complete(req) = parsed else {
        panic!("first message incomplete")
    };
    assert_eq!(req.body, b"hello");
    assert!(req.keep_alive, "HTTP/1.0 + keep-alive header stays open");
    assert!(parser.is_idle(), "parser must be idle between messages");

    let (consumed, parsed) = parser.feed(second).unwrap();
    assert_eq!(consumed, second.len());
    let Parsed::Complete(req) = parsed else {
        panic!("second message incomplete")
    };
    assert_eq!(req.method, "GET");
    assert_eq!(req.path, "/b");
    assert!(req.body.is_empty(), "no stale body leaked");
    assert!(req.keep_alive, "HTTP/1.1 default restored");
    assert!(
        matches!(parser.eof(), http::HttpError::Closed),
        "eof between messages is a clean close"
    );
}
