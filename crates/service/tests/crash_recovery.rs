//! Crash-recovery suite against the **real** `kgae-serve` binary: the
//! process is SIGKILLed mid-campaign (including mid-snapshot-write via
//! a failpoint), restarted over the same `--store-dir`, and every
//! campaign must resume from its last durable checkpoint and finish
//! bit-identically to an uninterrupted twin. The SIGTERM leg checks the
//! graceful path end to end: drain, exit 0, resume after restart.
//!
//! HTTP is spoken directly through [`kgae_service::http`] (the client
//! crate depends on this one, so it cannot be a dev-dependency here);
//! one fresh connection per call keeps the test independent of
//! keep-alive state across server generations.

use kgae_graph::GroundTruth;
use kgae_service::http;
use kgae_service::json::{self, Json};
use kgae_service::manager::DatasetRegistry;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-crash-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned `kgae-serve` generation; SIGKILLed on drop so a failed
/// assertion never leaks a server process.
struct Serve {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve(store_dir: &Path, tag: &str, extra_args: &[&str]) -> Serve {
    let port_file =
        std::env::temp_dir().join(format!("kgae-crash-test-{tag}-{}.port", std::process::id()));
    let _ = std::fs::remove_file(&port_file);
    let stderr_file = store_dir.with_extension("stderr");
    let child = Command::new(env!("CARGO_BIN_EXE_kgae-serve"))
        .args(["--addr", "127.0.0.1:0", "--workers", "4", "--shards", "4"])
        .arg("--store-dir")
        .arg(store_dir)
        .arg("--port-file")
        .arg(&port_file)
        .args(extra_args)
        .env_remove("KGAE_FAULT")
        .stdout(Stdio::null())
        .stderr(std::fs::File::create(&stderr_file).unwrap())
        .spawn()
        .expect("spawning kgae-serve");
    let mut child = Some(child);
    let deadline = Instant::now() + Duration::from_secs(120);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break format!("127.0.0.1:{port}").parse().unwrap();
            }
        }
        if let Some(status) = child.as_mut().unwrap().try_wait().unwrap() {
            panic!(
                "kgae-serve exited before listening: {status}\n{}",
                std::fs::read_to_string(&stderr_file).unwrap_or_default()
            );
        }
        assert!(Instant::now() < deadline, "kgae-serve never wrote its port");
        std::thread::sleep(Duration::from_millis(50));
    };
    let _ = std::fs::remove_file(&port_file);
    Serve {
        child: child.take().unwrap(),
        addr,
    }
}

/// One request on a fresh connection; panics on transport failure.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    try_call(addr, method, path, body).expect("server unreachable")
}

fn try_call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Result<(u16, Json), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    http::write_request(reader.get_mut(), method, path, body).map_err(|e| format!("write: {e}"))?;
    let response = http::read_response(&mut reader).map_err(|e| format!("read: {e}"))?;
    let text = std::str::from_utf8(&response.body).map_err(|e| e.to_string())?;
    Ok((
        response.status,
        json::parse(text).map_err(|e| e.to_string())?,
    ))
}

fn create(addr: SocketAddr, id: &str, seed: u64) {
    let body = Json::obj(vec![
        ("id", Json::str(id)),
        ("dataset", Json::str("nell")),
        ("design", Json::str("srs")),
        ("method", Json::str("ahpd")),
        ("seed", Json::int(seed)),
    ])
    .encode();
    let (status, doc) = call(addr, "POST", "/v1/sessions", &body);
    assert_eq!(status, 201, "create {id}: {}", doc.encode());
}

fn next(addr: SocketAddr, id: &str) -> Json {
    let body = Json::obj(vec![("batch", Json::int(8))]).encode();
    let (status, doc) = call(addr, "POST", &format!("/v1/sessions/{id}/next"), &body);
    assert_eq!(status, 200, "next {id}: {}", doc.encode());
    doc
}

fn triple_ids(request: &Json) -> Vec<u64> {
    request
        .get("triples")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|t| t.get("triple").and_then(Json::as_u64).unwrap())
        .collect()
}

fn is_done(request: &Json) -> bool {
    request.get("done").and_then(Json::as_bool) == Some(true)
}

fn labels_for(kg: &kgae_graph::CompactKg, request: &Json) -> Vec<bool> {
    triple_ids(request)
        .iter()
        .map(|&t| kg.is_correct(kgae_graph::TripleId(t)))
        .collect()
}

fn submit(addr: SocketAddr, id: &str, request: &Json, labels: &[bool]) {
    let mut pairs = vec![(
        "labels",
        Json::Arr(labels.iter().map(|&l| Json::Bool(l)).collect()),
    )];
    if let Some(seq) = request.get("seq").and_then(Json::as_u64) {
        pairs.push(("seq", Json::int(seq)));
    }
    let body = Json::obj(pairs).encode();
    let (status, doc) = call(addr, "POST", &format!("/v1/sessions/{id}/labels"), &body);
    assert_eq!(status, 200, "submit {id}: {}", doc.encode());
}

fn lifecycle(addr: SocketAddr, id: &str, verb: &str) {
    let (status, doc) = call(addr, "POST", &format!("/v1/sessions/{id}/{verb}"), "");
    assert_eq!(status, 200, "{verb} {id}: {}", doc.encode());
}

fn session_status(addr: SocketAddr, id: &str) -> Json {
    let (status, doc) = call(addr, "GET", &format!("/v1/sessions/{id}"), "");
    assert_eq!(status, 200, "status {id}: {}", doc.encode());
    doc
}

/// Drives `a` and `b` to completion in lockstep, asserting every batch
/// matches, then asserts their final reported statuses are identical.
fn finish_lockstep(addr: SocketAddr, kg: &kgae_graph::CompactKg, a: &str, b: &str) {
    loop {
        let ra = next(addr, a);
        let rb = next(addr, b);
        assert_eq!(
            triple_ids(&ra),
            triple_ids(&rb),
            "{a} and {b} diverged mid-campaign"
        );
        if is_done(&ra) {
            assert!(is_done(&rb), "{b} kept going after {a} stopped");
            break;
        }
        let labels = labels_for(kg, &ra);
        submit(addr, a, &ra, &labels);
        submit(addr, b, &rb, &labels);
    }
    let sa = session_status(addr, a);
    let sb = session_status(addr, b);
    assert_eq!(
        sa.get("status").map(Json::encode),
        sb.get("status").map(Json::encode),
        "final status of {a} != {b}"
    );
    assert_eq!(
        sa.get("state").and_then(Json::as_str),
        Some("finished"),
        "{a} did not finish: {}",
        sa.encode()
    );
}

/// SIGKILL mid-campaign: work past the last checkpoint dies with the
/// process, and the restarted server replays it bit-identically from
/// the checkpoint — nothing lost below it, nothing double-applied.
#[test]
fn sigkill_mid_campaign_resumes_bit_identically_from_last_checkpoint() {
    let registry = DatasetRegistry::standard();
    let kg = registry.get("nell").unwrap();
    let dir = temp_dir("sigkill");

    let gen1 = spawn_serve(&dir, "sigkill-1", &[]);
    create(gen1.addr, "victim", 21);
    create(gen1.addr, "twin", 21);
    // Batch 1, identically into both sessions, then checkpoint both
    // (suspend persists, resume continues serving).
    let r1 = next(gen1.addr, "victim");
    let t1 = next(gen1.addr, "twin");
    assert_eq!(triple_ids(&r1), triple_ids(&t1));
    let labels = labels_for(kg, &r1);
    submit(gen1.addr, "victim", &r1, &labels);
    submit(gen1.addr, "twin", &t1, &labels);
    lifecycle(gen1.addr, "victim", "suspend");
    lifecycle(gen1.addr, "victim", "resume");
    lifecycle(gen1.addr, "twin", "suspend");
    // Past the checkpoint: victim alone takes batch 2 and polls
    // batch 3 — all of it in memory only when the SIGKILL lands.
    let r2 = next(gen1.addr, "victim");
    submit(gen1.addr, "victim", &r2, &labels_for(kg, &r2));
    let _r3_outstanding = next(gen1.addr, "victim");
    drop(gen1); // SIGKILL

    let gen2 = spawn_serve(&dir, "sigkill-2", &[]);
    // The restarted server serves batch 2 again, bit-identically: the
    // checkpoint rewound the unpersisted work instead of losing or
    // duplicating it.
    let replay = next(gen2.addr, "victim");
    assert_eq!(
        triple_ids(&replay),
        triple_ids(&r2),
        "restart did not rewind to the durable checkpoint"
    );
    let labels = labels_for(kg, &replay);
    submit(gen2.addr, "victim", &replay, &labels);
    let twin_replay = next(gen2.addr, "twin");
    assert_eq!(triple_ids(&twin_replay), triple_ids(&replay));
    submit(gen2.addr, "twin", &twin_replay, &labels);
    finish_lockstep(gen2.addr, kg, "victim", "twin");
    drop(gen2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM is the graceful twin of the test above: the server drains —
/// withdrawing the outstanding batch exactly and suspending every live
/// session — exits 0, and the restart resumes with zero loss even
/// though the client never checkpointed anything itself.
#[cfg(unix)]
#[test]
fn sigterm_drains_and_restart_resumes_the_outstanding_batch() {
    let registry = DatasetRegistry::standard();
    let kg = registry.get("nell").unwrap();
    let dir = temp_dir("sigterm");

    let mut gen1 = spawn_serve(&dir, "sigterm-1", &[]);
    create(gen1.addr, "mid", 33);
    create(gen1.addr, "twin", 33);
    let r1 = next(gen1.addr, "mid");
    let labels = labels_for(kg, &r1);
    submit(gen1.addr, "mid", &r1, &labels);
    let t1 = next(gen1.addr, "twin");
    submit(gen1.addr, "twin", &t1, &labels);
    // Leave a batch outstanding; no suspend — drain must do the work.
    let withdrawn = next(gen1.addr, "mid");

    let pid = gen1.child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    let status = gen1.child.wait().unwrap();
    assert!(status.success(), "drain exit was not clean: {status}");

    let gen2 = spawn_serve(&dir, "sigterm-2", &[]);
    let replay = next(gen2.addr, "mid");
    assert_eq!(
        triple_ids(&replay),
        triple_ids(&withdrawn),
        "drain perturbed the withdrawn batch"
    );
    let labels = labels_for(kg, &replay);
    submit(gen2.addr, "mid", &replay, &labels);
    let twin_replay = next(gen2.addr, "twin");
    assert_eq!(triple_ids(&twin_replay), triple_ids(&replay));
    submit(gen2.addr, "twin", &twin_replay, &labels);
    finish_lockstep(gen2.addr, kg, "mid", "twin");
    drop(gen2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The hardest crash point: SIGKILL (via the `store.snap.write` torn
/// failpoint) in the middle of writing a checkpoint snapshot. The torn
/// `.tmp` must be discarded by the recovery sweep — never promoted,
/// never quarantining the good committed record underneath — and the
/// campaign resumes from the previous checkpoint bit-identically.
#[cfg(feature = "fault-injection")]
#[test]
fn sigkill_mid_snapshot_write_discards_the_torn_tmp_and_resumes() {
    let registry = DatasetRegistry::standard();
    let kg = registry.get("nell").unwrap();
    let dir = temp_dir("torn");

    // Generation 1 (no faults): both sessions checkpoint after batch 1.
    let gen1 = spawn_serve(&dir, "torn-1", &[]);
    create(gen1.addr, "victim", 55);
    create(gen1.addr, "twin", 55);
    let r1 = next(gen1.addr, "victim");
    let t1 = next(gen1.addr, "twin");
    let labels = labels_for(kg, &r1);
    submit(gen1.addr, "victim", &r1, &labels);
    submit(gen1.addr, "twin", &t1, &labels);
    lifecycle(gen1.addr, "victim", "suspend");
    lifecycle(gen1.addr, "twin", "suspend");
    drop(gen1);

    // Generation 2: the first snapshot write of this process dies after
    // 64 torn bytes. Batch 2 lands in memory, then the checkpoint
    // attempt kills the server mid-write.
    let mut gen2 = spawn_serve(&dir, "torn-2", &["--fault", "store.snap.write=torn:64"]);
    let r2 = next(gen2.addr, "victim");
    submit(gen2.addr, "victim", &r2, &labels_for(kg, &r2));
    let err = try_call(gen2.addr, "POST", "/v1/sessions/victim/suspend", "");
    assert!(err.is_err(), "suspend survived a torn snapshot write");
    let status = gen2.child.wait().unwrap();
    assert!(!status.success(), "torn write should abort the process");
    assert!(
        dir.join("victim.snap.tmp").exists(),
        "expected a torn temp file on disk"
    );

    // Generation 3: the sweep discards the torn temp file and the
    // campaign resumes from the batch-1 checkpoint.
    let gen3 = spawn_serve(&dir, "torn-3", &[]);
    assert!(
        !dir.join("victim.snap.tmp").exists(),
        "recovery left the torn temp file behind"
    );
    assert!(
        std::fs::read_to_string(dir.with_extension("stderr"))
            .unwrap_or_default()
            .contains("discarded incomplete temp file"),
        "recovery did not report the discarded temp file"
    );
    let replay = next(gen3.addr, "victim");
    assert_eq!(
        triple_ids(&replay),
        triple_ids(&r2),
        "torn checkpoint moved the resume point"
    );
    let labels = labels_for(kg, &replay);
    submit(gen3.addr, "victim", &replay, &labels);
    let twin_replay = next(gen3.addr, "twin");
    assert_eq!(triple_ids(&twin_replay), triple_ids(&replay));
    submit(gen3.addr, "twin", &twin_replay, &labels);
    finish_lockstep(gen3.addr, kg, "victim", "twin");
    drop(gen3);
    let _ = std::fs::remove_dir_all(&dir);
}
