//! Live-socket behavior of the readiness reactor: event-driven
//! shutdown latency (no polling tick), timer-wheel keep-alive reaping
//! that spares active mid-body uploads, and pipelined requests over
//! one connection.

use kgae_service::manager::DatasetRegistry;
use kgae_service::server::READ_TICK;
use kgae_service::{Server, ServerHandle, SessionManager, SnapshotStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_store(tag: &str) -> SnapshotStore {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("kgae-reactor-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotStore::open(dir).unwrap()
}

/// Shuts the server down when dropped, so a panicking test body cannot
/// leave `std::thread::scope` joining a server that never exits.
struct ShutdownGuard(ServerHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Boots a server (optionally with a short idle timeout) and runs `f`;
/// returns how long the shutdown-to-drained interval took.
fn with_server(tag: &str, idle_timeout: Option<Duration>, f: impl FnOnce(SocketAddr)) -> Duration {
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store(tag), 4);
    let mut server = Server::bind("127.0.0.1:0", 2).unwrap();
    if let Some(timeout) = idle_timeout {
        server = server.with_idle_timeout(timeout);
    }
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let shutdown_latency = std::thread::scope(|scope| {
        let guard = ShutdownGuard(handle);
        let server_thread = scope.spawn(|| server.run(&manager));
        f(addr);
        let begin = Instant::now();
        drop(guard);
        server_thread.join().unwrap();
        begin.elapsed()
    });
    let _ = std::fs::remove_dir_all(manager.store().dir());
    shutdown_latency
}

/// A client-side HTTP/1.1 response reader with a carry buffer, so
/// pipelined responses arriving in one TCP segment are split correctly
/// instead of the over-read bytes being discarded.
struct RespReader {
    conn: TcpStream,
    buf: Vec<u8>,
}

impl RespReader {
    fn new(conn: TcpStream) -> Self {
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Self {
            conn,
            buf: Vec::new(),
        }
    }

    /// Reads one complete response (headers + Content-Length body);
    /// `None` on a clean server-side close between responses.
    fn next_response(&mut self) -> Option<Vec<u8>> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let headers = String::from_utf8_lossy(&self.buf[..header_end]).to_ascii_lowercase();
                let content_length: usize = headers
                    .lines()
                    .find_map(|l| l.strip_prefix("content-length:"))
                    .map_or(0, |v| v.trim().parse().unwrap());
                let total = header_end + 4 + content_length;
                while self.buf.len() < total {
                    let n = self.conn.read(&mut chunk).unwrap();
                    assert!(n > 0, "connection died mid-response");
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                let rest = self.buf.split_off(total);
                return Some(std::mem::replace(&mut self.buf, rest));
            }
            let n = self.conn.read(&mut chunk).unwrap();
            if n == 0 {
                assert!(self.buf.is_empty(), "connection died mid-response");
                return None;
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Blocks until the server closes the connection; panics if bytes
    /// arrive instead.
    fn expect_close(&mut self) {
        assert!(self.buf.is_empty(), "unconsumed response bytes");
        let mut sink = [0u8; 64];
        let n = self.conn.read(&mut sink).unwrap();
        assert_eq!(n, 0, "expected a server-side close, got bytes");
    }
}

fn health_check(addr: SocketAddr) -> RespReader {
    let conn = TcpStream::connect(addr).unwrap();
    let mut reader = RespReader::new(conn);
    reader
        .conn
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    reader
        .next_response()
        .unwrap_or_else(|| panic!("no health response"));
    reader
}

#[test]
fn no_session_drain_completes_well_under_read_tick() {
    // Several idle keep-alive connections are held open at shutdown
    // time: the old blocking front needed up to READ_TICK (1 s) per
    // worker to notice the flag; the reactor's waker byte makes the
    // whole drain — flag observed, idle connections closed, workers
    // joined, store swept — effectively instant.
    let latency = with_server("shutdown-latency", None, |addr| {
        drop(health_check(addr));
    });
    assert!(
        latency < READ_TICK / 2,
        "no-session drain took {latency:?}; the reactor must react to the \
         waker instantly, not poll at READ_TICK ({READ_TICK:?})"
    );
}

#[test]
fn held_open_connections_do_not_delay_shutdown() {
    // Keep idle connections alive *across* the shutdown call: the
    // reactor must close them server-side rather than wait for them.
    let registry = DatasetRegistry::standard();
    let manager = SessionManager::new(&registry, temp_store("shutdown-held"), 4);
    let server = Server::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    std::thread::scope(|scope| {
        let guard = ShutdownGuard(handle);
        let server_thread = scope.spawn(|| server.run(&manager));
        let mut held: Vec<RespReader> = (0..4).map(|_| health_check(addr)).collect();
        let begin = Instant::now();
        drop(guard);
        server_thread.join().unwrap();
        let latency = begin.elapsed();
        assert!(
            latency < READ_TICK / 2,
            "drain with held connections took {latency:?}"
        );
        // And the clients observe the close.
        for conn in &mut held {
            conn.expect_close();
        }
    });
    let _ = std::fs::remove_dir_all(manager.store().dir());
}

#[test]
fn idle_connection_is_reaped_but_active_upload_is_not() {
    let idle_timeout = Duration::from_millis(300);
    with_server("reaper", Some(idle_timeout), |addr| {
        // An idle keep-alive connection: the timer wheel must close it
        // server-side once it sits past the deadline.
        let mut idle = health_check(addr);
        let begin = Instant::now();
        idle.expect_close();
        let reaped_after = begin.elapsed();
        assert!(
            reaped_after >= idle_timeout - Duration::from_millis(60),
            "reaped too early: {reaped_after:?} (timeout {idle_timeout:?})"
        );
        assert!(
            reaped_after < Duration::from_secs(3),
            "reaping took {reaped_after:?}; the timer wheel is not firing"
        );

        // An *active* mid-body upload trickling bytes slower than the
        // request needs but faster than the deadline: every byte
        // refreshes the activity clock, so the connection survives
        // several multiples of the idle timeout and gets its response.
        let body = b"trickled-upload-payload!";
        let mut active = RespReader::new(TcpStream::connect(addr).unwrap());
        active
            .conn
            .write_all(
                format!(
                    "GET /healthz HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let begin = Instant::now();
        for piece in body.chunks(2) {
            std::thread::sleep(Duration::from_millis(100));
            active.conn.write_all(piece).unwrap();
        }
        let streamed_for = begin.elapsed();
        assert!(
            streamed_for >= idle_timeout * 3,
            "upload finished too fast ({streamed_for:?}) to prove anything"
        );
        let response = active
            .next_response()
            .unwrap_or_else(|| panic!("active upload was reaped after {streamed_for:?}"));
        assert!(
            response.starts_with(b"HTTP/1.1 200"),
            "unexpected response: {}",
            String::from_utf8_lossy(&response[..40.min(response.len())])
        );
    });
}

#[test]
fn pipelined_requests_get_all_responses_in_order() {
    with_server("pipeline", None, |addr| {
        let mut reader = RespReader::new(TcpStream::connect(addr).unwrap());
        // Three back-to-back requests in one write, the last one
        // closing: the reactor must answer all three, in order, on the
        // one connection.
        reader
            .conn
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\n\
                  GET /v1/datasets HTTP/1.1\r\n\r\n\
                  GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let first = reader.next_response().expect("first response");
        assert!(first.starts_with(b"HTTP/1.1 200"));
        assert!(first.windows(9).any(|w| w == b"\"ok\":true"));
        let second = reader.next_response().expect("second response");
        assert!(second.windows(10).any(|w| w == b"\"datasets\""));
        let third = reader.next_response().expect("third response");
        assert!(third.starts_with(b"HTTP/1.1 200"));
        // And after the Connection: close response, the server closes.
        reader.expect_close();
    });
}
