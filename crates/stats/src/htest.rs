//! Two-sample hypothesis tests.
//!
//! The paper marks table cells with † / ‡ when "standard independent
//! t-tests" find the aHPD vs. Wald / Wilson difference significant at
//! `p < 0.01` (§6.3). Both the classic pooled-variance test and Welch's
//! unequal-variance variant are provided; the experiment harness uses the
//! pooled one to match the paper's wording.

use crate::descriptive::{mean, sample_variance};
use crate::dist::StudentT;
use crate::special::gammainc_upper;
use crate::{Result, StatsError};

/// Outcome of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (`k - 1`).
    pub df: f64,
    /// Upper-tail p-value.
    pub p_value: f64,
}

/// Pearson chi-square goodness-of-fit test of observed counts against
/// expected probabilities. Used to validate the synthetic dataset
/// generators (cluster-size models, alias sampling) against their target
/// distributions.
pub fn chi_square_gof(observed: &[u64], expected_probs: &[f64]) -> Result<ChiSquareResult> {
    if observed.len() != expected_probs.len() {
        return Err(StatsError::InsufficientData {
            needed: observed.len(),
            got: expected_probs.len(),
        });
    }
    if observed.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: observed.len(),
        });
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let mut stat = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        if !(p.is_finite() && p > 0.0) {
            return Err(StatsError::InvalidProbability(p));
        }
        let e = total as f64 * p;
        stat += (o as f64 - e) * (o as f64 - e) / e;
    }
    let df = (observed.len() - 1) as f64;
    // P(χ²_df >= stat) = Q(df/2, stat/2).
    let p_value = gammainc_upper(df / 2.0, stat / 2.0)?;
    Ok(ChiSquareResult {
        statistic: stat,
        df,
        p_value,
    })
}

/// Outcome of a two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (fractional for Welch).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// True when the two-sided p-value is below `alpha`.
    #[must_use]
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Standard (pooled-variance) independent two-sample t-test.
pub fn pooled_t_test(xs: &[f64], ys: &[f64]) -> Result<TTestResult> {
    check_sizes(xs, ys)?;
    pooled_t_test_from_summary(
        mean(xs),
        sample_variance(xs),
        xs.len() as f64,
        mean(ys),
        sample_variance(ys),
        ys.len() as f64,
    )
}

/// Pooled t-test from sufficient statistics (mean, sample variance, n).
pub fn pooled_t_test_from_summary(
    m1: f64,
    v1: f64,
    n1: f64,
    m2: f64,
    v2: f64,
    n2: f64,
) -> Result<TTestResult> {
    let df = n1 + n2 - 2.0;
    if df < 1.0 {
        return Err(StatsError::InsufficientData {
            needed: 3,
            got: (n1 + n2) as usize,
        });
    }
    let pooled = ((n1 - 1.0) * v1 + (n2 - 1.0) * v2) / df;
    let se = (pooled * (1.0 / n1 + 1.0 / n2)).sqrt();
    finish(m1 - m2, se, df)
}

/// Welch's unequal-variance t-test with Satterthwaite degrees of freedom.
pub fn welch_t_test(xs: &[f64], ys: &[f64]) -> Result<TTestResult> {
    check_sizes(xs, ys)?;
    let (m1, v1, n1) = (mean(xs), sample_variance(xs), xs.len() as f64);
    let (m2, v2, n2) = (mean(ys), sample_variance(ys), ys.len() as f64);
    let se2 = v1 / n1 + v2 / n2;
    let df = se2 * se2 / ((v1 / n1) * (v1 / n1) / (n1 - 1.0) + (v2 / n2) * (v2 / n2) / (n2 - 1.0));
    finish(m1 - m2, se2.sqrt(), df)
}

fn check_sizes(xs: &[f64], ys: &[f64]) -> Result<()> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: xs.len().min(ys.len()),
        });
    }
    Ok(())
}

fn finish(diff: f64, se: f64, df: f64) -> Result<TTestResult> {
    if se == 0.0 {
        // Both samples are constants: identical means ⇒ p = 1, otherwise
        // the difference is exact ⇒ p = 0.
        return Ok(TTestResult {
            t: if diff == 0.0 { 0.0 } else { f64::INFINITY },
            df,
            p_value: if diff == 0.0 { 1.0 } else { 0.0 },
        });
    }
    let t = diff / se;
    let dist = StudentT::new(df)?;
    Ok(TTestResult {
        t,
        df,
        p_value: dist.two_sided_p(t),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = pooled_t_test(&xs, &xs).unwrap();
        assert!(r.t.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant_at(0.01));
    }

    #[test]
    fn textbook_pooled_example() {
        // Two small samples with a clear mean shift.
        let a = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
        let b = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];
        let r = pooled_t_test(&a, &b).unwrap();
        // Known worked example: t ≈ 1.959, df = 10.
        assert!((r.t - 1.959).abs() < 5e-3, "t = {}", r.t);
        assert_eq!(r.df, 10.0);
        assert!(r.p_value > 0.05 && r.p_value < 0.10, "p = {}", r.p_value);
    }

    #[test]
    fn welch_textbook_example() {
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5,
            24.3,
        ];
        let r = welch_t_test(&a, &b).unwrap();
        // Reference values computed independently from the Welch formulas:
        // t = -2.84720..., df = 27.8847... .
        assert!((r.t + 2.8472044565771).abs() < 1e-10, "t = {}", r.t);
        assert!((r.df - 27.884749467103).abs() < 1e-9, "df = {}", r.df);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn large_shift_is_significant_at_one_percent() {
        let xs: Vec<f64> = (0..100).map(|i| 10.0 + (i % 7) as f64 * 0.1).collect();
        let ys: Vec<f64> = (0..100).map(|i| 11.0 + (i % 7) as f64 * 0.1).collect();
        let r = pooled_t_test(&xs, &ys).unwrap();
        assert!(r.significant_at(0.01));
        assert!(r.t < 0.0);
    }

    #[test]
    fn summary_interface_matches_sample_interface() {
        let xs = [5.0, 6.0, 7.5, 4.5, 6.5, 5.5];
        let ys = [6.2, 7.0, 8.1, 6.9, 7.4];
        let from_samples = pooled_t_test(&xs, &ys).unwrap();
        let from_summary = pooled_t_test_from_summary(
            mean(&xs),
            sample_variance(&xs),
            xs.len() as f64,
            mean(&ys),
            sample_variance(&ys),
            ys.len() as f64,
        )
        .unwrap();
        assert!((from_samples.t - from_summary.t).abs() < 1e-12);
        assert!((from_samples.p_value - from_summary.p_value).abs() < 1e-12);
    }

    #[test]
    fn degenerate_zero_variance() {
        let xs = [2.0, 2.0, 2.0];
        let ys = [3.0, 3.0, 3.0];
        let r = pooled_t_test(&xs, &ys).unwrap();
        assert_eq!(r.p_value, 0.0);
        let r = pooled_t_test(&xs, &xs).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn insufficient_data_is_an_error() {
        assert!(pooled_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn chi_square_detects_fair_and_loaded_dice() {
        // Near-uniform counts: should not reject.
        let fair = [166u64, 170, 168, 165, 167, 164];
        let probs = [1.0 / 6.0; 6];
        let r = chi_square_gof(&fair, &probs).unwrap();
        assert_eq!(r.df, 5.0);
        assert!(r.p_value > 0.5, "fair die p = {}", r.p_value);

        // Heavily loaded: must reject.
        let loaded = [400u64, 100, 100, 100, 100, 200];
        let r = chi_square_gof(&loaded, &probs).unwrap();
        assert!(r.p_value < 1e-6, "loaded die p = {}", r.p_value);
    }

    #[test]
    fn chi_square_textbook_value() {
        // Classic 2-cell example: observed [60, 40] vs p = [0.5, 0.5]
        // gives χ² = (10² + 10²)/50 = 4, df = 1, p ≈ 0.0455.
        let r = chi_square_gof(&[60, 40], &[0.5, 0.5]).unwrap();
        assert!((r.statistic - 4.0).abs() < 1e-12);
        assert!((r.p_value - 0.04550026).abs() < 1e-6);
    }

    #[test]
    fn chi_square_input_validation() {
        assert!(chi_square_gof(&[1, 2], &[0.5]).is_err());
        assert!(chi_square_gof(&[5], &[1.0]).is_err());
        assert!(chi_square_gof(&[0, 0], &[0.5, 0.5]).is_err());
        assert!(chi_square_gof(&[1, 2], &[0.0, 1.0]).is_err());
    }
}
