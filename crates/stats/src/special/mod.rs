//! Scalar special functions.
//!
//! These are the numerical kernels every interval method in the paper rests
//! on: beta quantiles drive ET credible intervals and the HPD initial guess
//! (paper Eq. 9–11), the error function drives normal critical values for
//! Wald/Wilson (Eq. 5, 7), and log-gamma underpins all beta/binomial
//! densities. Accuracy targets are ~1e-13 relative error in the regions the
//! framework exercises (`a, b` in `[1/3, 1e7]`, probabilities in
//! `[1e-12, 1 - 1e-12]`), verified in the test suites of this module.

mod beta_fn;
mod erf;
mod gamma;
mod gamma_inc;

pub use beta_fn::{betainc, betainc_inv, betainc_inv_pre, betainc_pre, ln_beta};
pub use erf::{erf, erfc, erfc_inv};
pub use gamma::{digamma, ln_choose, ln_gamma};
pub use gamma_inc::{gammainc_lower, gammainc_upper};

/// Machine-level relative tolerance used by the iterative kernels.
pub(crate) const EPS: f64 = 3.0e-16;

/// Smallest representable magnitude guard used by continued fractions
/// (modified Lentz algorithm) to avoid division by zero.
pub(crate) const FPMIN: f64 = 1.0e-300;
