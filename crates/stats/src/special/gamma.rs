//! Log-gamma, digamma and log-binomial-coefficient.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's table).
///
/// Yields ~15 significant digits for real arguments, which is the same
/// approximation family used by Numerical Recipes and Boost.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_TWO_PI: f64 = 0.918_938_533_204_672_7;
const PI: f64 = std::f64::consts::PI;

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
/// Accuracy is ~1e-14 relative over the positive reals.
///
/// # Panics
///
/// Panics in debug builds if `x` is not finite and positive; in release
/// builds non-positive input returns `f64::INFINITY` (the limit at the
/// poles), matching the conventions of C `lgamma`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x.is_finite(), "ln_gamma: non-finite input {x}");
    if x <= 0.0 {
        // Poles at 0, -1, -2, ...; the paper's domain never goes here, but
        // return the mathematically consistent limit rather than panicking.
        if x == x.floor() {
            return f64::INFINITY;
        }
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        return (PI / (PI * x).sin().abs()).ln() - ln_gamma(1.0 - x);
    }
    if x < 0.5 {
        // Reflection keeps the Lanczos series in its sweet spot.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    LN_SQRT_TWO_PI + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence `ψ(x) = ψ(x+1) - 1/x` to push the argument above 6,
/// then the asymptotic series. Accuracy ~1e-12.
#[must_use]
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0, "digamma: invalid input {x}");
    let mut x = x;
    let mut result = 0.0;
    // Shift into the asymptotic regime.
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion with Bernoulli-number coefficients.
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
    result
}

/// Natural logarithm of the binomial coefficient `ln C(n, k)`.
///
/// Defined for `0 <= k <= n`. Exact integer arithmetic is not required:
/// the log-gamma route is stable well beyond `n = 10^15`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k = {k} exceeds n = {n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from Python `math.lgamma` (IEEE double).
    #[allow(clippy::approx_constant)] // these are test references, ln 2 included
    const LGAMMA_REFS: &[(f64, f64)] = &[
        (0.5, 0.5723649429247001), // ln √π
        (1.0, 0.0),
        (1.5, -0.12078223763524522),
        (2.0, 0.0),
        (3.0, 0.6931471805599453), // ln 2
        (5.0, 3.1780538303479458), // ln 24
        (10.5, 13.940625219403763),
        (100.0, 359.1342053695754),
        (1e6, 12815504.569147902),
        (1.0 / 3.0, 0.9854206469277089),
    ];

    #[test]
    fn ln_gamma_matches_references() {
        for &(x, want) in LGAMMA_REFS {
            let got = ln_gamma(x);
            let tol = 1e-12 * want.abs().max(1.0);
            assert!(
                (got - want).abs() < tol,
                "ln_gamma({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // Γ(x+1) = x Γ(x)  ⇔  lnΓ(x+1) = ln x + lnΓ(x)
        for i in 1..200 {
            let x = 0.07 * i as f64;
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!(
                (lhs - rhs).abs() < 1e-11 * lhs.abs().max(1.0),
                "recurrence failed at x = {x}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn ln_gamma_poles_return_infinity() {
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-3.0).is_infinite());
    }

    #[test]
    fn ln_gamma_reflection_negative_arguments() {
        // Γ(-0.5) = -2√π, so lnΓ(-0.5) = ln(2√π).
        let want = (2.0 * std::f64::consts::PI.sqrt()).ln();
        assert!((ln_gamma(-0.5) - want).abs() < 1e-12);
    }

    #[test]
    fn digamma_known_values() {
        const EULER_MASCHERONI: f64 = 0.5772156649015329;
        assert!((digamma(1.0) + EULER_MASCHERONI).abs() < 1e-11);
        // ψ(1/2) = -γ - 2 ln 2
        let want = -EULER_MASCHERONI - 2.0 * std::f64::consts::LN_2;
        assert!((digamma(0.5) - want).abs() < 1e-11);
        // ψ(2) = 1 - γ
        assert!((digamma(2.0) - (1.0 - EULER_MASCHERONI)).abs() < 1e-11);
    }

    #[test]
    fn digamma_recurrence_holds() {
        for i in 1..100 {
            let x = 0.13 * i as f64;
            let lhs = digamma(x + 1.0);
            let rhs = digamma(x) + 1.0 / x;
            assert!((lhs - rhs).abs() < 1e-10, "digamma recurrence at {x}");
        }
    }

    #[test]
    fn ln_choose_small_cases_exact() {
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-12);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn ln_choose_rejects_k_above_n() {
        let _ = ln_choose(3, 4);
    }

    #[test]
    fn ln_choose_symmetry() {
        for n in [10u64, 37, 100, 1000] {
            for k in 0..=n.min(40) {
                let a = ln_choose(n, k);
                let b = ln_choose(n, n - k);
                assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
            }
        }
    }
}
