//! Error function family.
//!
//! `erfc` is computed from the regularized upper incomplete gamma
//! (`erfc(x) = Q(1/2, x²)` for `x >= 0`), which keeps full relative
//! precision deep into the tail — exactly what normal critical values
//! (`z_{α/2}` in the Wald and Wilson intervals, paper Eq. 5/7) require.

use super::gamma_inc::{gammainc_lower, gammainc_upper};

/// Error function `erf(x) = 2/√π ∫₀ˣ e^{-t²} dt`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gammainc_lower(0.5, x * x).expect("gammainc_lower is defined for a = 1/2, x² >= 0");
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Relative precision is preserved for large positive `x` (down to
/// `erfc(26) ≈ 1e-295`), unlike the naive `1 - erf(x)` evaluation.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    let q = gammainc_upper(0.5, x * x).expect("gammainc_upper is defined for a = 1/2, x² >= 0");
    if x > 0.0 {
        q
    } else {
        2.0 - q
    }
}

/// Inverse complementary error function: solves `erfc(y) = p` for `y`.
///
/// `p` must lie in `(0, 2)`. Uses a rational initial approximation followed
/// by two Halley refinement steps, giving ~1e-15 relative accuracy.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 2)`.
#[must_use]
pub fn erfc_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 2.0, "erfc_inv: p = {p} outside (0, 2)");
    if (p - 1.0).abs() < 1e-300 {
        return 0.0;
    }
    // Exploit antisymmetry: erfc_inv(2 - p) = -erfc_inv(p).
    let (pp, sign) = if p < 1.0 { (p, 1.0) } else { (2.0 - p, -1.0) };

    // Initial guess (Numerical Recipes §6.2.2 rational approximation).
    let t = (-2.0 * (pp / 2.0).ln()).sqrt();
    let mut x = -std::f64::consts::FRAC_1_SQRT_2
        * ((2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t);

    // Halley refinement: f(x) = erfc(x) - pp, f'(x) = -2/√π e^{-x²}.
    const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
    for _ in 0..3 {
        let err = erfc(x) - pp;
        let deriv = -TWO_OVER_SQRT_PI * (-x * x).exp();
        if deriv == 0.0 {
            break;
        }
        let newton = err / deriv;
        // Halley correction uses f''/f' = -2x.
        x -= newton / (1.0 + newton * x);
    }
    sign * x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from Python `math.erf` / `math.erfc`.
    const ERF_REFS: &[(f64, f64)] = &[
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.2, 0.9103139782296353),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
    ];

    const ERFC_REFS: &[(f64, f64)] = &[
        (0.5, 0.4795001221869535),
        (1.0, 0.15729920705028513),
        (2.5, 0.0004069520174449589),
        (4.0, 1.541725790028002e-08),
        (6.0, 2.1519736712498913e-17),
    ];

    #[test]
    fn erf_matches_references() {
        for &(x, want) in ERF_REFS {
            let got = erf(x);
            assert!((got - want).abs() < 1e-13, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-13, "erf odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_matches_references_with_relative_precision() {
        for &(x, want) in ERFC_REFS {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-11,
                "erfc({x}) = {got:e}, want {want:e}"
            );
        }
    }

    #[test]
    fn erfc_complementarity() {
        for i in -30..=30 {
            let x = 0.1 * i as f64;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "at x = {x}");
        }
    }

    #[test]
    fn erfc_inv_roundtrip() {
        for &p in &[1e-10, 1e-6, 0.001, 0.05, 0.5, 1.0, 1.5, 1.999, 1.9999999] {
            let x = erfc_inv(p);
            let back = erfc(x);
            assert!(
                ((back - p) / p).abs() < 1e-12,
                "erfc(erfc_inv({p})) = {back}"
            );
        }
    }

    #[test]
    fn erfc_inv_center() {
        assert_eq!(erfc_inv(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 2)")]
    fn erfc_inv_rejects_out_of_range() {
        let _ = erfc_inv(2.5);
    }
}
