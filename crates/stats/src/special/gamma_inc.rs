//! Regularized incomplete gamma functions.
//!
//! `P(a, x)` (lower) and `Q(a, x) = 1 - P(a, x)` (upper). Used by the error
//! function (`erfc(x) = Q(1/2, x²)`) and exposed publicly because
//! chi-square-style goodness-of-fit checks in the dataset simulators rely
//! on them.

use super::gamma::ln_gamma;
use super::{EPS, FPMIN};
use crate::{Result, StatsError};

/// Maximum iterations for the series / continued-fraction evaluations.
const MAX_ITER: usize = 500;

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `a > 0`, `x >= 0`. Uses the power series for `x < a + 1` and the
/// continued fraction complement otherwise (Numerical Recipes §6.2 scheme).
pub fn gammainc_lower(a: f64, x: f64) -> Result<f64> {
    check_args(a, x)?;
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        Ok(1.0 - gamma_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// Computed directly from the continued fraction when `x >= a + 1` so the
/// far tail keeps full relative precision (important for `erfc`).
pub fn gammainc_upper(a: f64, x: f64) -> Result<f64> {
    check_args(a, x)?;
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series(a, x)?)
    } else {
        gamma_cf(a, x)
    }
}

fn check_args(a: f64, x: f64) -> Result<()> {
    if !(a.is_finite() && a > 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            constraint: "must be finite and > 0",
        });
    }
    if !(x.is_finite() && x >= 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            constraint: "must be finite and >= 0",
        });
    }
    Ok(())
}

/// Series representation of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> Result<f64> {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            return Ok((sum.ln() + ln_pre).exp().clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence {
        algorithm: "gamma_series",
        iterations: MAX_ITER,
    })
}

/// Continued-fraction representation of `Q(a, x)` via modified Lentz.
fn gamma_cf(a: f64, x: f64) -> Result<f64> {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            return Ok((h.ln() + ln_pre).exp().clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence {
        algorithm: "gamma_cf",
        iterations: MAX_ITER,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complementarity() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 10.0, 123.4] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 150.0] {
                let p = gammainc_lower(a, x).unwrap();
                let q = gammainc_upper(a, x).unwrap();
                assert!((p + q - 1.0).abs() < 1e-12, "P+Q != 1 at a={a}, x={x}");
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let want = 1.0 - (-x).exp();
            let got = gammainc_lower(1.0, x).unwrap();
            assert!((got - want).abs() < 1e-13, "P(1,{x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erlang_special_case() {
        // P(2, x) = 1 - e^{-x}(1 + x)
        for &x in &[0.1f64, 1.0, 3.0, 7.0] {
            let want = 1.0 - (-x).exp() * (1.0 + x);
            let got = gammainc_lower(2.0, x).unwrap();
            assert!((got - want).abs() < 1e-13);
        }
    }

    #[test]
    fn chi_square_median_is_close_to_dof() {
        // For k degrees of freedom the median of chi² is ≈ k(1 - 2/(9k))³.
        for &k in &[1.0f64, 2.0, 5.0, 10.0, 50.0] {
            let median_approx = k * (1.0 - 2.0 / (9.0 * k)).powi(3);
            let p = gammainc_lower(k / 2.0, median_approx / 2.0).unwrap();
            assert!((p - 0.5).abs() < 0.01, "k={k}: P(median) = {p}");
        }
    }

    #[test]
    fn boundary_values() {
        assert_eq!(gammainc_lower(2.0, 0.0).unwrap(), 0.0);
        assert_eq!(gammainc_upper(2.0, 0.0).unwrap(), 1.0);
        assert!(gammainc_lower(3.0, 1e4).unwrap() > 1.0 - 1e-12);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(gammainc_lower(-1.0, 1.0).is_err());
        assert!(gammainc_lower(1.0, -1.0).is_err());
        assert!(gammainc_upper(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn monotone_in_x() {
        let a = 3.7;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = 0.1 * i as f64;
            let p = gammainc_lower(a, x).unwrap();
            assert!(p >= prev - 1e-15, "not monotone at x={x}");
            prev = p;
        }
    }
}
