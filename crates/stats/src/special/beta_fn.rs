//! Regularized incomplete beta function and its inverse.
//!
//! `betainc(a, b, x) = I_x(a, b)` is the CDF of a `Beta(a, b)` random
//! variable; `betainc_inv` is its quantile. These two routines carry the
//! whole Bayesian side of the paper: ET intervals are two quantile
//! evaluations (Eq. 9), the HPD limiting cases are one (Eq. 10/11), and the
//! SLSQP constraint function evaluates the CDF at every iterate.
//!
//! Implementation follows the classic continued-fraction scheme (modified
//! Lentz) with a Gauss–Legendre quadrature path for very large parameters,
//! and a Halley-refined Newton inversion with bisection fallback.

use super::gamma::ln_gamma;
use super::{EPS, FPMIN};
use crate::{Result, StatsError};

/// Iteration cap for the continued fraction.
const MAX_ITER: usize = 400;

/// Parameter size above which the quadrature path is used (Numerical
/// Recipes switches at 3000; the continued fraction slows down there).
const QUAD_THRESHOLD: f64 = 3000.0;

/// Natural logarithm of the complete beta function `ln B(a, b)`.
#[must_use]
pub fn ln_beta(a: f64, b: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "ln_beta: non-positive argument");
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

fn check_shape(name: &'static str, v: f64) -> Result<()> {
    if !(v.is_finite() && v > 0.0) {
        return Err(StatsError::InvalidParameter {
            name,
            value: v,
            constraint: "must be finite and > 0",
        });
    }
    Ok(())
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `a, b > 0`, `x ∈ [0, 1]`. Relative accuracy is ~1e-13 except within a
/// few ulps of the transition point for extremely large parameters.
pub fn betainc(a: f64, b: f64, x: f64) -> Result<f64> {
    check_shape("a", a)?;
    check_shape("b", b)?;
    betainc_checked_pre(a, b, x, None)
}

/// [`betainc`] with the normalization constant `ln B(a, b)` supplied by
/// the caller.
///
/// The continued-fraction prefactor needs `ln B(a, b)` — three `ln_gamma`
/// evaluations — on every call. Posterior objects cache that constant
/// once at construction (and advance it incrementally across conjugate
/// updates), so the per-`cdf` cost drops to the continued fraction alone.
/// Passing a wrong constant silently yields a wrong result; callers are
/// expected to own the invariant.
pub fn betainc_pre(a: f64, b: f64, x: f64, ln_beta_ab: f64) -> Result<f64> {
    check_shape("a", a)?;
    check_shape("b", b)?;
    betainc_checked_pre(a, b, x, Some(ln_beta_ab))
}

/// Shared body of [`betainc`] / [`betainc_pre`] after shape validation.
fn betainc_checked_pre(a: f64, b: f64, x: f64, ln_beta_ab: Option<f64>) -> Result<f64> {
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            constraint: "must lie in [0, 1]",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    if a > QUAD_THRESHOLD && b > QUAD_THRESHOLD {
        // The quadrature path normalizes through ln_gamma directly and
        // has no use for the cached constant.
        return Ok(betai_quadrature(a, b, x));
    }
    // Prefactor x^a (1-x)^b / (a B(a, b)) shared by both CF branches.
    let ln_bt = a * x.ln() + b * (1.0 - x).ln() - ln_beta_ab.unwrap_or_else(|| ln_beta(a, b));
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((ln_bt.exp() * betacf(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - ln_bt.exp() * betacf(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

/// Continued fraction for the incomplete beta (modified Lentz algorithm).
fn betacf(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() <= EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence {
        algorithm: "betacf",
        iterations: MAX_ITER,
    })
}

/// 18-point Gauss–Legendre abscissas/weights on (0, 1) used by the
/// large-parameter quadrature (Numerical Recipes `betaiapprox`).
const GL_Y: [f64; 18] = [
    0.0021695375159141994,
    0.011413521097787704,
    0.027972308950302116,
    0.051_727_015_600_492_42,
    0.082_502_225_484_340_94,
    0.12007019910960293,
    0.164_152_833_007_524_7,
    0.21442376986779355,
    0.27051082840644336,
    0.33199876341447887,
    0.39843234186401943,
    0.46931971407375483,
    0.544_136_055_566_579_7,
    0.622_327_452_880_310_8,
    0.703_315_004_655_971_7,
    0.786_499_107_683_134_5,
    0.871_263_896_190_615_2,
    0.956_981_801_526_291_4,
];
const GL_W: [f64; 18] = [
    0.005_565_719_664_244_557,
    0.012_915_947_284_065_42,
    0.020181515297735382,
    0.027298621498568734,
    0.034_213_810_770_299_54,
    0.040_875_750_923_643_26,
    0.047_235_083_490_265_58,
    0.053_244_713_977_759_69,
    0.058_860_144_245_324_8,
    0.064_039_797_355_015_48,
    0.068_745_323_835_736_41,
    0.072_941_885_005_653_09,
    0.076_598_410_645_870_64,
    0.079_687_828_912_071_67,
    0.082_187_266_704_339_7,
    0.084_078_218_979_661_95,
    0.085_346_685_739_338_72,
    0.085_983_275_670_394_82,
];

/// Incomplete beta by Gauss–Legendre quadrature, valid for large `a, b`.
///
/// Integrates the density over `[x, xu]` where `xu` is ~10 standard
/// deviations past the mean, exploiting the near-normal concentration of
/// the distribution at large parameters.
fn betai_quadrature(a: f64, b: f64, x: f64) -> f64 {
    let mu = a / (a + b);
    let lnmu = mu.ln();
    let lnmuc = (1.0 - mu).ln();
    let t = (a * b / ((a + b) * (a + b) * (a + b + 1.0))).sqrt();
    let xu = if x > mu {
        if x >= 1.0 {
            return 1.0;
        }
        (mu + 10.0 * t).max(x + 5.0 * t).min(1.0)
    } else {
        if x <= 0.0 {
            return 0.0;
        }
        (mu - 10.0 * t).min(x - 5.0 * t).max(0.0)
    };
    let mut sum = 0.0;
    for j in 0..18 {
        let xt = x + (xu - x) * GL_Y[j];
        sum +=
            GL_W[j] * ((a - 1.0) * (xt.ln() - lnmu) + (b - 1.0) * ((1.0 - xt).ln() - lnmuc)).exp();
    }
    let ans = sum
        * (xu - x)
        * ((a - 1.0) * lnmu - ln_gamma(a) + (b - 1.0) * lnmuc - ln_gamma(b) + ln_gamma(a + b))
            .exp();
    // `ans` carries the integration direction in its sign ((xu - x) is
    // positive above the mean, negative below); branch on the side of the
    // mean rather than on the sign so a tail that underflows to 0.0 still
    // resolves to the correct endpoint.
    if x > mu {
        (1.0 - ans).clamp(0.0, 1.0)
    } else {
        (-ans).clamp(0.0, 1.0)
    }
}

/// Inverse of the regularized incomplete beta: solves `I_x(a, b) = p`.
///
/// This is the `qBeta` routine of the paper (Eq. 9–11). Strategy:
/// a closed-form initial guess (normal approximation for `a, b >= 1`,
/// power-law tails otherwise), up to 12 Halley-accelerated Newton steps,
/// and a guaranteed-convergence bisection fallback if the residual is
/// still above tolerance.
pub fn betainc_inv(a: f64, b: f64, p: f64) -> Result<f64> {
    check_shape("a", a)?;
    check_shape("b", b)?;
    betainc_inv_checked_pre(a, b, p, None)
}

/// [`betainc_inv`] with the normalization constant `ln B(a, b)` supplied
/// by the caller — same contract as [`betainc_pre`]: the Newton/Halley
/// refinement evaluates the CDF and density at every iterate, so a
/// cached constant removes all `ln_gamma` work from the inversion.
pub fn betainc_inv_pre(a: f64, b: f64, p: f64, ln_beta_ab: f64) -> Result<f64> {
    check_shape("a", a)?;
    check_shape("b", b)?;
    betainc_inv_checked_pre(a, b, p, Some(ln_beta_ab))
}

/// Shared body of [`betainc_inv`] / [`betainc_inv_pre`].
fn betainc_inv_checked_pre(a: f64, b: f64, p: f64, ln_beta_ab: Option<f64>) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability(p));
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }

    let lnb = ln_beta_ab.unwrap_or_else(|| ln_beta(a, b));
    let mut x = initial_guess(a, b, p);
    let afac = -lnb;
    let a1 = a - 1.0;
    let b1 = b - 1.0;

    let mut converged = false;
    for j in 0..12 {
        if x <= 0.0 || x >= 1.0 {
            break; // fall through to bisection
        }
        let err = betainc_checked_pre(a, b, x, Some(lnb))? - p;
        let ln_pdf = a1 * x.ln() + b1 * (1.0 - x).ln() + afac;
        let t = ln_pdf.exp();
        if t == 0.0 {
            break;
        }
        let u = err / t;
        // Halley correction using f''/f' = (a-1)/x - (b-1)/(1-x).
        let step = u / (1.0 - 0.5 * (u * (a1 / x - b1 / (1.0 - x))).clamp(-1.0, 1.0));
        x -= step;
        if x <= 0.0 {
            x = 0.5 * (x + step); // halve back toward the previous iterate
        }
        if x >= 1.0 {
            x = 0.5 * (x + step + 1.0);
        }
        if step.abs() < 1e-14 * x && j > 0 {
            converged = true;
            break;
        }
    }

    if converged || betainc_checked_pre(a, b, x, Some(lnb)).map(|v| (v - p).abs() < 1e-11)? {
        return Ok(x.clamp(0.0, 1.0));
    }
    bisect_quantile(a, b, p, lnb)
}

/// Closed-form starting point for the quantile Newton iteration.
fn initial_guess(a: f64, b: f64, p: f64) -> f64 {
    if a >= 1.0 && b >= 1.0 {
        // Normal-score based guess (Abramowitz & Stegun 26.5.22).
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut w = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            w = -w;
        }
        let al = (w * w - 3.0) / 6.0;
        let h = 2.0 / (1.0 / (2.0 * a - 1.0) + 1.0 / (2.0 * b - 1.0));
        let ww = w * (al + h).sqrt() / h
            - (1.0 / (2.0 * b - 1.0) - 1.0 / (2.0 * a - 1.0)) * (al + 5.0 / 6.0 - 2.0 / (3.0 * h));
        a / (a + b * (2.0 * ww).exp())
    } else {
        // Power-law tails dominate for shape parameters below one.
        let lna = (a / (a + b)).ln();
        let lnb = (b / (a + b)).ln();
        let t = (a * lna).exp() / a;
        let u = (b * lnb).exp() / b;
        let w = t + u;
        if p < t / w {
            (a * w * p).powf(1.0 / a)
        } else {
            1.0 - (b * w * (1.0 - p)).powf(1.0 / b)
        }
    }
    .clamp(1e-300, 1.0 - 1e-16)
}

/// Bisection fallback: ~55 iterations guarantee full double precision on
/// the unit interval, at the price of one `betainc` call each.
fn bisect_quantile(a: f64, b: f64, p: f64, lnb: f64) -> Result<f64> {
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            return Ok(mid); // interval exhausted at double precision
        }
        if betainc_checked_pre(a, b, mid, Some(lnb))? < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64, msg: &str) {
        assert!(
            (got - want).abs() < tol,
            "{msg}: got {got}, want {want} (|diff| = {:e})",
            (got - want).abs()
        );
    }

    #[test]
    fn ln_beta_known_values() {
        // B(1,1) = 1, B(2,2) = 1/6, B(0.5,0.5) = π.
        assert_close(ln_beta(1.0, 1.0), 0.0, 1e-14, "B(1,1)");
        assert_close(ln_beta(2.0, 2.0), (1.0f64 / 6.0).ln(), 1e-13, "B(2,2)");
        assert_close(
            ln_beta(0.5, 0.5),
            std::f64::consts::PI.ln(),
            1e-13,
            "B(.5,.5)",
        );
    }

    #[test]
    fn uniform_case_is_identity() {
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            assert_close(betainc(1.0, 1.0, x).unwrap(), x, 1e-13, "I_x(1,1)");
        }
    }

    #[test]
    fn power_law_closed_forms() {
        for &x in &[0.01, 0.2, 0.5, 0.77, 0.99] {
            // I_x(a, 1) = x^a
            for &a in &[0.5, 1.0, 2.0, 7.0] {
                assert_close(betainc(a, 1.0, x).unwrap(), x.powf(a), 1e-12, "I_x(a,1)");
            }
            // I_x(1, b) = 1 - (1-x)^b
            for &b in &[0.5, 3.0, 10.0] {
                assert_close(
                    betainc(1.0, b, x).unwrap(),
                    1.0 - (1.0 - x).powf(b),
                    1e-12,
                    "I_x(1,b)",
                );
            }
        }
    }

    #[test]
    fn arcsine_distribution_closed_form() {
        // I_x(1/2, 1/2) = (2/π) asin(√x)
        for &x in &[0.001f64, 0.1, 0.4, 0.5, 0.9, 0.999] {
            let want = 2.0 / std::f64::consts::PI * x.sqrt().asin();
            assert_close(betainc(0.5, 0.5, x).unwrap(), want, 1e-12, "arcsine");
        }
    }

    #[test]
    fn cubic_smoothstep_closed_form() {
        // I_x(2, 2) = 3x² - 2x³
        for &x in &[0.1, 0.25, 0.5, 0.8] {
            let want = 3.0 * x * x - 2.0 * x * x * x;
            assert_close(betainc(2.0, 2.0, x).unwrap(), want, 1e-13, "I_x(2,2)");
        }
    }

    #[test]
    fn binomial_sum_identity_for_integer_parameters() {
        // I_x(a, b) = Σ_{j=a}^{n} C(n, j) x^j (1-x)^{n-j}, n = a + b - 1.
        let cases = [
            (3u64, 5u64, 0.3f64),
            (7, 2, 0.8),
            (10, 10, 0.5),
            (1, 9, 0.05),
        ];
        for &(a, b, x) in &cases {
            let n = a + b - 1;
            let mut sum = 0.0;
            for j in a..=n {
                sum += (crate::special::ln_choose(n, j)
                    + j as f64 * x.ln()
                    + (n - j) as f64 * (1.0 - x).ln())
                .exp();
            }
            assert_close(
                betainc(a as f64, b as f64, x).unwrap(),
                sum,
                1e-12,
                "binomial identity",
            );
        }
    }

    #[test]
    fn symmetry_relation() {
        for &(a, b) in &[(0.5, 2.0), (3.0, 3.0), (10.0, 0.4), (123.0, 45.0)] {
            for &x in &[0.05, 0.3, 0.5, 0.72, 0.95] {
                let lhs = betainc(a, b, x).unwrap();
                let rhs = 1.0 - betainc(b, a, 1.0 - x).unwrap();
                assert_close(lhs, rhs, 1e-12, "I_x(a,b) = 1 - I_{1-x}(b,a)");
            }
        }
    }

    #[test]
    fn quadrature_path_agrees_with_continued_fraction_near_threshold() {
        // Straddle the threshold: CF at (2999, 2999) vs quadrature at
        // (3001, 3001) should be nearly identical at matching quantiles.
        let cf = betainc(2999.0, 2999.0, 0.5).unwrap();
        let quad = betainc(3001.0, 3001.0, 0.5).unwrap();
        assert_close(cf, 0.5, 1e-10, "symmetric CF median");
        assert_close(quad, 0.5, 1e-8, "symmetric quadrature median");

        // Off-center agreement within the normal-approximation accuracy.
        let x = 0.51;
        let cf = betainc(2999.0, 2999.0, x).unwrap();
        let quad = betainc(3001.0, 3001.0, x).unwrap();
        assert!((cf - quad).abs() < 5e-3, "cf={cf}, quad={quad}");
    }

    #[test]
    fn quantile_roundtrip_broad_grid() {
        let shapes = [
            (1.0 / 3.0, 1.0 / 3.0),
            (0.5, 0.5),
            (1.0, 1.0),
            (0.5, 30.5),
            (30.5, 0.5),
            (2.0, 5.0),
            (180.0, 20.5),
            (1000.0, 3.0),
            (5000.0, 5000.0),
        ];
        let ps = [1e-8, 1e-4, 0.01, 0.025, 0.5, 0.975, 0.99, 1.0 - 1e-6];
        for &(a, b) in &shapes {
            for &p in &ps {
                let x = betainc_inv(a, b, p).unwrap();
                if x <= f64::MIN_POSITIVE || x >= 1.0 - 1e-15 {
                    // The true quantile sits within one ulp of the boundary
                    // (e.g. Beta(1/3,1/3) at p = 1 - 1e-6 has
                    // 1 - x ≈ 5e-18): representability, not accuracy,
                    // limits the roundtrip. Check the bracket instead.
                    let inner = if x >= 0.5 { 1.0 - 1e-15 } else { 1e-300 };
                    let inner_cdf = betainc(a, b, inner).unwrap();
                    assert!(
                        (p - inner_cdf) * (p - if x >= 0.5 { 1.0 } else { 0.0 }) <= 0.0,
                        "boundary quantile not bracketed: a={a}, b={b}, p={p}"
                    );
                    continue;
                }
                let back = betainc(a, b, x).unwrap();
                assert!(
                    (back - p).abs() < 1e-9,
                    "roundtrip a={a}, b={b}, p={p}: x={x}, back={back}"
                );
            }
        }
    }

    #[test]
    fn quantile_boundary_probabilities() {
        assert_eq!(betainc_inv(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(betainc_inv(2.0, 3.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn quantile_uniform_is_identity() {
        for i in 1..20 {
            let p = i as f64 / 20.0;
            assert_close(betainc_inv(1.0, 1.0, p).unwrap(), p, 1e-10, "uniform");
        }
    }

    #[test]
    fn quantile_monotone_in_p() {
        let (a, b) = (3.5, 1.2);
        let mut prev = 0.0;
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = betainc_inv(a, b, p).unwrap();
            assert!(x >= prev, "quantile not monotone at p={p}");
            prev = x;
        }
    }

    #[test]
    fn rejects_invalid_arguments() {
        assert!(betainc(0.0, 1.0, 0.5).is_err());
        assert!(betainc(1.0, -2.0, 0.5).is_err());
        assert!(betainc(1.0, 1.0, 1.5).is_err());
        assert!(betainc_inv(1.0, 1.0, -0.1).is_err());
        assert!(betainc_inv(f64::NAN, 1.0, 0.5).is_err());
    }

    #[test]
    fn kg_accuracy_regime_spot_checks() {
        // Posterior after 96 correct / 4 incorrect with Jeffreys prior:
        // Beta(96.5, 4.5). Its 2.5% quantile must sit near 0.90 and the
        // CDF must evaluate consistently around the mode.
        let (a, b) = (96.5, 4.5);
        let q025 = betainc_inv(a, b, 0.025).unwrap();
        let q975 = betainc_inv(a, b, 0.975).unwrap();
        assert!(q025 > 0.85 && q025 < 0.93, "q025 = {q025}");
        assert!(q975 > 0.97 && q975 < 1.0, "q975 = {q975}");
        let mass = betainc(a, b, q975).unwrap() - betainc(a, b, q025).unwrap();
        assert_close(mass, 0.95, 1e-9, "central mass");
    }
}
