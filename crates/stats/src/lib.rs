//! # kgae-stats
//!
//! Statistical substrate for knowledge-graph accuracy estimation.
//!
//! The KG accuracy-evaluation methods of Marchesin & Silvello (SIGMOD 2025)
//! need SciPy-grade special functions (regularized incomplete beta and its
//! inverse, error function, log-gamma), probability distributions (Beta,
//! Normal, Binomial, Student-t, Gamma) and two-sample significance tests.
//! The Rust ecosystem offers no single vetted crate covering all of these,
//! so this crate implements them from scratch with extensive unit and
//! property-based tests.
//!
//! ## Layout
//!
//! * [`special`] — scalar special functions (`ln_gamma`, `erf`, `betainc`,
//!   `betainc_inv`, `gammainc`, ...). These are the numerical kernels.
//! * [`dist`] — distribution objects built on top of the kernels, exposing
//!   `pdf` / `cdf` / `quantile` / `sample` in a uniform style.
//! * [`descriptive`] — summary statistics (Welford online moments,
//!   mean ± std summaries used by the experiment tables).
//! * [`htest`] — two-sample t-tests (pooled and Welch) used for the
//!   significance daggers in Tables 2–4 of the paper.
//!
//! ## Example
//!
//! ```
//! use kgae_stats::dist::Beta;
//!
//! // Posterior after observing 9 correct / 1 incorrect triples under a
//! // Jeffreys prior Beta(1/2, 1/2).
//! let post = Beta::new(0.5 + 9.0, 0.5 + 1.0).unwrap();
//! let p = post.cdf(0.95) - post.cdf(0.60);
//! assert!(p > 0.5); // most of the mass sits in (0.60, 0.95)
//! let q = post.quantile(0.975).unwrap();
//! assert!((post.cdf(q) - 0.975).abs() < 1e-10);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod descriptive;
pub mod dist;
mod error;
pub mod htest;
pub mod special;

pub use error::StatsError;

/// Convenience alias for fallible statistical computations.
pub type Result<T> = std::result::Result<T, StatsError>;
